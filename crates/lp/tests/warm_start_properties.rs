//! Warm-start equivalence and degenerate-pivoting regression tests.
//!
//! The contract of [`Problem::solve_with`] is that the workspace only
//! changes *how fast* a solve runs, never *what* it returns: the objective
//! and the feasibility verdict must match a cold solve exactly (up to
//! floating-point tolerance). The property tests below randomize frame-LP
//! shaped instances — the structure the DPSS controllers re-solve every
//! coarse frame — and compare a cold solve against a warm solve primed on
//! a different instance of the same shape.

use dpss_lp::{LpError, LpWorkspace, Problem, Relation, Sense, Variable};
use proptest::prelude::*;

/// A parameterized frame LP: per-slot balance + battery & queue
/// recursions + an end-of-frame service deadline, the exact shape of
/// `dpss-core`'s per-frame planning problem.
#[derive(Debug, Clone)]
struct FrameInstance {
    demands: Vec<f64>,
    arrivals: Vec<f64>,
    prices: Vec<f64>,
    p_lt: f64,
    b0: f64,
    q0: f64,
}

impl FrameInstance {
    fn build(&self) -> Problem {
        let t = self.demands.len();
        let mut p = Problem::new(Sense::Minimize);
        let g = p.add_var("g", 0.0, 2.0, self.p_lt * t as f64).unwrap();
        let mut prev_b: Option<Variable> = None;
        let mut prev_q: Option<Variable> = None;
        for i in 0..t {
            let grt = p
                .add_var(format!("grt{i}"), 0.0, 2.0, self.prices[i])
                .unwrap();
            let sdt = p
                .add_var(format!("sdt{i}"), 0.0, f64::INFINITY, 0.0)
                .unwrap();
            let brc = p.add_var(format!("brc{i}"), 0.0, 0.5, 0.2).unwrap();
            let bdc = p.add_var(format!("bdc{i}"), 0.0, 0.5, 0.2).unwrap();
            let w = p.add_var(format!("w{i}"), 0.0, f64::INFINITY, 1.0).unwrap();
            let b = p.add_var(format!("b{i}"), 0.0, 0.5, 0.0).unwrap();
            let q = p.add_var(format!("q{i}"), 0.0, f64::INFINITY, 0.0).unwrap();
            p.add_constraint(
                &[
                    (g, 1.0),
                    (grt, 1.0),
                    (bdc, 1.0),
                    (brc, -1.0),
                    (sdt, -1.0),
                    (w, -1.0),
                ],
                Relation::Eq,
                self.demands[i],
            )
            .unwrap();
            match prev_b {
                None => p
                    .add_constraint(&[(b, 1.0), (brc, -0.8), (bdc, 1.25)], Relation::Eq, self.b0)
                    .unwrap(),
                Some(pb) => p
                    .add_constraint(
                        &[(b, 1.0), (pb, -1.0), (brc, -0.8), (bdc, 1.25)],
                        Relation::Eq,
                        0.0,
                    )
                    .unwrap(),
            };
            match prev_q {
                None => p
                    .add_constraint(
                        &[(q, 1.0), (sdt, 1.0)],
                        Relation::Eq,
                        self.q0 + self.arrivals[i],
                    )
                    .unwrap(),
                Some(pq) => p
                    .add_constraint(
                        &[(q, 1.0), (pq, -1.0), (sdt, 1.0)],
                        Relation::Eq,
                        self.arrivals[i],
                    )
                    .unwrap(),
            };
            prev_b = Some(b);
            prev_q = Some(q);
        }
        // Serve at least the initial backlog by the frame end.
        if let Some(q) = prev_q {
            let slack: f64 = self.arrivals.iter().sum();
            p.add_constraint(&[(q, 1.0)], Relation::Le, slack.max(0.1))
                .unwrap();
        }
        p
    }
}

fn frame_instance(t: usize) -> impl Strategy<Value = FrameInstance> {
    (
        proptest::collection::vec(0.0..1.8f64, t),
        proptest::collection::vec(0.0..0.5f64, t),
        proptest::collection::vec(1.0..90.0f64, t),
        20.0..60.0f64,
        0.0..0.5f64,
        0.0..0.4f64,
    )
        .prop_map(|(demands, arrivals, prices, p_lt, b0, q0)| FrameInstance {
            demands,
            arrivals,
            prices,
            p_lt,
            b0,
            q0,
        })
}

/// Compares a cold solve against a warm solve of the same problem where
/// the workspace was primed on `primer`. Status must match; on success
/// the objectives must agree to 1e-9 (relative).
fn assert_warm_matches_cold(primer: &FrameInstance, target: &FrameInstance) {
    let mut warm_ws = LpWorkspace::new();
    primer
        .build()
        .solve_with(&mut warm_ws)
        .expect("primer instance is feasible by construction");

    let p = target.build();
    let cold = p.solve();
    let warm = p.solve_with(&mut warm_ws);
    match (&cold, &warm) {
        (Ok(c), Ok(w)) => {
            let tol = 1e-9 * (1.0 + c.objective().abs());
            assert!(
                (c.objective() - w.objective()).abs() <= tol,
                "cold {} vs warm {} (warm path: {})",
                c.objective(),
                w.objective(),
                warm_ws.last_was_warm()
            );
            assert!(
                p.is_feasible(w.values(), 1e-6),
                "warm solution infeasible: {:?}",
                w.values()
            );
        }
        (Err(ce), Err(we)) => {
            assert_eq!(
                std::mem::discriminant(ce),
                std::mem::discriminant(we),
                "cold {ce:?} vs warm {we:?}"
            );
        }
        _ => panic!("status mismatch: cold {cold:?} vs warm {warm:?}"),
    }
}

/// A fleet-flow LP: one variable per directed site pair (energy sent,
/// bounded by the pair cap), per-site donor-budget and recipient-need
/// rows, and a delivered-value objective — the exact shape of
/// `dpss-core`'s per-frame `FleetPlanner` problem.
#[derive(Debug, Clone)]
struct FlowInstance {
    sites: usize,
    /// Pair cap per ordered pair, row-major with unused diagonal.
    caps: Vec<f64>,
    donors: Vec<f64>,
    needs: Vec<f64>,
    prices: Vec<f64>,
}

impl FlowInstance {
    fn build(&self) -> (Problem, Vec<Variable>) {
        let n = self.sites;
        let mut p = Problem::new(Sense::Minimize);
        let mut flows = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let f = p
                    .add_var(
                        format!("f{i}_{j}"),
                        0.0,
                        self.caps[i * n + j],
                        -self.prices[j],
                    )
                    .unwrap();
                flows.push(f);
            }
        }
        let var = |i: usize, j: usize| {
            let k = i * (n - 1) + if j > i { j - 1 } else { j };
            flows[k]
        };
        for i in 0..n {
            let terms: Vec<(Variable, f64)> = (0..n)
                .filter(|&j| j != i)
                .map(|j| (var(i, j), 1.0))
                .collect();
            p.add_constraint(&terms, Relation::Le, self.donors[i])
                .unwrap();
        }
        for j in 0..n {
            let terms: Vec<(Variable, f64)> = (0..n)
                .filter(|&i| i != j)
                .map(|i| (var(i, j), 1.0))
                .collect();
            p.add_constraint(&terms, Relation::Le, self.needs[j])
                .unwrap();
        }
        (p, flows)
    }
}

fn flow_instance(sites: usize) -> impl Strategy<Value = FlowInstance> {
    let pairs = sites * sites;
    (
        proptest::collection::vec(0.0..3.0f64, pairs),
        proptest::collection::vec(0.0..4.0f64, sites),
        proptest::collection::vec(0.0..4.0f64, sites),
        proptest::collection::vec(1.0..90.0f64, sites),
    )
        .prop_map(move |(caps, donors, needs, prices)| FlowInstance {
            sites,
            caps,
            donors,
            needs,
            prices,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The planner's frame-to-frame cap update: after a *single pair-cap
    /// bound edit* on an already-solved flow LP, a warm `solve_with` from
    /// the previous optimal basis must match a cold solve exactly
    /// (objective to 1e-9, status by discriminant). This is the
    /// dual-simplex bound-tightening path: the shape is unchanged, so the
    /// saved basis is reused and feasibility is restored dually.
    #[test]
    fn warm_resolve_after_single_cap_edit_matches_cold(
        inst in flow_instance(3),
        pair in 0usize..6,
        new_cap in 0.0..3.0f64,
    ) {
        let (mut p, flows) = inst.build();
        let mut ws = LpWorkspace::new();
        p.solve_with(&mut ws).expect("flow LPs are always feasible");

        p.set_bounds(flows[pair], 0.0, new_cap).unwrap();
        let warm = p.solve_with(&mut ws);
        let cold = p.solve();
        match (&cold, &warm) {
            (Ok(c), Ok(w)) => {
                let tol = 1e-9 * (1.0 + c.objective().abs());
                prop_assert!(
                    (c.objective() - w.objective()).abs() <= tol,
                    "cold {} vs warm {} after cap edit (warm path: {})",
                    c.objective(),
                    w.objective(),
                    ws.last_was_warm()
                );
                prop_assert!(p.is_feasible(w.values(), 1e-6));
            }
            (Err(ce), Err(we)) => prop_assert_eq!(
                std::mem::discriminant(ce), std::mem::discriminant(we)),
            _ => prop_assert!(false, "status mismatch: {:?} vs {:?}", cold, warm),
        }
    }

    /// Warm-started solves of randomized frame LPs return the same
    /// objective (within 1e-9) and feasibility status as cold solves.
    #[test]
    fn warm_equals_cold_on_random_frame_lps(
        primer in frame_instance(4),
        target in frame_instance(4),
    ) {
        assert_warm_matches_cold(&primer, &target);
    }

    /// Same property on a longer frame (more rows, more degeneracy).
    #[test]
    fn warm_equals_cold_on_longer_frames(
        primer in frame_instance(8),
        target in frame_instance(8),
    ) {
        assert_warm_matches_cold(&primer, &target);
    }

    /// A whole sweep through one workspace: every solve in a chain of
    /// instances must match its own cold solve.
    #[test]
    fn workspace_chain_never_drifts(
        chain in proptest::collection::vec(frame_instance(3), 2..5),
    ) {
        let mut ws = LpWorkspace::new();
        for inst in &chain {
            let p = inst.build();
            let via_chain = p.solve_with(&mut ws);
            let cold = p.solve();
            match (&cold, &via_chain) {
                (Ok(c), Ok(w)) => {
                    let tol = 1e-9 * (1.0 + c.objective().abs());
                    prop_assert!((c.objective() - w.objective()).abs() <= tol);
                }
                (Err(ce), Err(we)) => prop_assert_eq!(
                    std::mem::discriminant(ce), std::mem::discriminant(we)),
                _ => prop_assert!(false, "status mismatch: {:?} vs {:?}", cold, via_chain),
            }
        }
    }
}

#[test]
fn warm_path_engages_on_consecutive_frames() {
    // Deterministic sanity check that the property tests above actually
    // exercise the warm path: same-shaped consecutive frames must reuse
    // the saved basis, not silently fall back cold every time.
    let mut ws = LpWorkspace::new();
    for k in 0..6 {
        let inst = FrameInstance {
            demands: vec![0.9 + 0.1 * k as f64, 1.1, 0.7, 1.3],
            arrivals: vec![0.2, 0.3, 0.1, 0.25],
            prices: vec![40.0 + k as f64, 55.0, 35.0, 60.0],
            p_lt: 36.0,
            b0: 0.2,
            q0: 0.3,
        };
        inst.build().solve_with(&mut ws).unwrap();
    }
    assert_eq!(ws.cold_solves() + ws.warm_solves(), 6);
    // A changed right-hand side can make the saved basis primal-infeasible
    // (a genuine cold fallback), so not every solve is warm — but the warm
    // path must engage repeatedly on this mild perturbation sequence.
    assert!(
        ws.warm_solves() >= 2,
        "warm path must engage on repeated frame shapes: {} warm / {} cold",
        ws.warm_solves(),
        ws.cold_solves()
    );
}

#[test]
fn warm_path_engages_after_bound_edits() {
    // The re-solve edits keep the standard-form shape, so the saved basis
    // must actually be reused — not silently rejected — on a chain of
    // tightening/relaxing cap updates.
    let inst = FlowInstance {
        sites: 3,
        caps: vec![0.0, 2.0, 1.5, 1.0, 0.0, 2.0, 0.5, 1.0, 0.0],
        donors: vec![2.0, 1.0, 3.0],
        needs: vec![1.5, 2.5, 0.5],
        prices: vec![45.0, 60.0, 30.0],
    };
    let (mut p, flows) = inst.build();
    let mut ws = LpWorkspace::new();
    p.solve_with(&mut ws).unwrap();
    for (k, cap) in [(0usize, 0.5), (3, 2.0), (5, 0.0), (0, 2.0)] {
        p.set_bounds(flows[k], 0.0, cap).unwrap();
        let warm = p.solve_with(&mut ws).unwrap();
        let cold = p.solve().unwrap();
        assert!(
            (warm.objective() - cold.objective()).abs() <= 1e-9 * (1.0 + cold.objective().abs()),
            "cap edit {k}->{cap}: warm {} vs cold {}",
            warm.objective(),
            cold.objective()
        );
    }
    assert!(
        ws.warm_solves() >= 2,
        "bound edits must keep the warm path eligible: {} warm / {} cold / {} rejects",
        ws.warm_solves(),
        ws.cold_solves(),
        ws.warm_rejects()
    );
}

#[test]
fn infeasible_instances_report_infeasible_on_both_paths() {
    // Demand far beyond every supply bound → infeasible regardless of
    // workspace history.
    let feasible = FrameInstance {
        demands: vec![1.0, 1.2, 0.8],
        arrivals: vec![0.2, 0.1, 0.3],
        prices: vec![45.0, 50.0, 40.0],
        p_lt: 36.0,
        b0: 0.25,
        q0: 0.2,
    };
    let mut infeasible = feasible.clone();
    infeasible.demands = vec![9.0, 9.0, 9.0]; // caps allow at most 4 + battery

    let mut ws = LpWorkspace::new();
    feasible.build().solve_with(&mut ws).unwrap();
    let warm = infeasible.build().solve_with(&mut ws);
    let cold = infeasible.build().solve();
    assert!(matches!(warm, Err(LpError::Infeasible)), "warm: {warm:?}");
    assert!(matches!(cold, Err(LpError::Infeasible)), "cold: {cold:?}");
}

// ---- Degenerate-pivoting regressions (Bland's-rule fallback) -----------

/// Kuhn's classic cycling LP: under naive Dantzig pricing with
/// first-index tie-breaking the simplex method cycles forever at the
/// origin. The solver's degenerate-streak fallback to Bland's rule must
/// terminate and certify unboundedness-free optimality.
#[test]
fn kuhn_cycling_lp_terminates_at_optimum() {
    let mut p = Problem::new(Sense::Minimize);
    let x1 = p.add_var("x1", 0.0, f64::INFINITY, -2.0).unwrap();
    let x2 = p.add_var("x2", 0.0, f64::INFINITY, -3.0).unwrap();
    let x3 = p.add_var("x3", 0.0, f64::INFINITY, 1.0).unwrap();
    let x4 = p.add_var("x4", 0.0, f64::INFINITY, 12.0).unwrap();
    p.add_constraint(
        &[(x1, -2.0), (x2, -9.0), (x3, 1.0), (x4, 9.0)],
        Relation::Le,
        0.0,
    )
    .unwrap();
    p.add_constraint(
        &[(x1, 1.0 / 3.0), (x2, 1.0), (x3, -1.0 / 3.0), (x4, -2.0)],
        Relation::Le,
        0.0,
    )
    .unwrap();
    p.add_constraint(
        &[(x1, 1.0), (x2, 1.0), (x3, 1.0), (x4, 1.0)],
        Relation::Le,
        1.0,
    )
    .unwrap();
    let sol = p.solve().expect("degenerate LP must terminate");
    assert!(p.is_feasible(sol.values(), 1e-7));
    // Optimum: x1 = x3 = 1/2 binding both degenerate rows, objective −1/2.
    assert!(
        (sol.objective() - (-0.5)).abs() < 1e-7,
        "objective {}",
        sol.objective()
    );
}

/// A maximally degenerate vertex: many redundant active constraints at
/// the optimum. Every pivot is degenerate until the objective can move;
/// the fallback must still find the optimum within the pivot budget.
#[test]
fn massively_degenerate_vertex_terminates() {
    let mut p = Problem::new(Sense::Minimize);
    let n = 6;
    let vars: Vec<_> = (0..n)
        .map(|i| {
            p.add_var(format!("x{i}"), 0.0, 10.0, 1.0 + i as f64 * 0.1)
                .unwrap()
        })
        .collect();
    // The same covering row stated many times (all active at the optimum)…
    for _ in 0..8 {
        let terms: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        p.add_constraint(&terms, Relation::Ge, 1.0).unwrap();
    }
    // …plus ordering rows that are all tight at the symmetric corner.
    for w in vars.windows(2) {
        p.add_constraint(&[(w[0], 1.0), (w[1], -1.0)], Relation::Ge, 0.0)
            .unwrap();
    }
    let sol = p.solve().expect("must terminate despite degeneracy");
    assert!(p.is_feasible(sol.values(), 1e-7));
    // Cheapest cover puts everything on x0 (lowest cost): objective 1.0.
    assert!(
        (sol.objective() - 1.0).abs() < 1e-7,
        "objective {}",
        sol.objective()
    );
}

/// Warm-starting *from* a degenerate optimal basis must not confuse the
/// rebuild: resolve Kuhn's LP repeatedly through one workspace.
#[test]
fn warm_restart_from_degenerate_basis_is_stable() {
    let build = |rhs: f64| {
        let mut p = Problem::new(Sense::Minimize);
        let x1 = p.add_var("x1", 0.0, f64::INFINITY, -2.0).unwrap();
        let x2 = p.add_var("x2", 0.0, f64::INFINITY, -3.0).unwrap();
        let x3 = p.add_var("x3", 0.0, f64::INFINITY, 1.0).unwrap();
        let x4 = p.add_var("x4", 0.0, f64::INFINITY, 12.0).unwrap();
        p.add_constraint(
            &[(x1, -2.0), (x2, -9.0), (x3, 1.0), (x4, 9.0)],
            Relation::Le,
            0.0,
        )
        .unwrap();
        p.add_constraint(
            &[(x1, 1.0 / 3.0), (x2, 1.0), (x3, -1.0 / 3.0), (x4, -2.0)],
            Relation::Le,
            0.0,
        )
        .unwrap();
        p.add_constraint(
            &[(x1, 1.0), (x2, 1.0), (x3, 1.0), (x4, 1.0)],
            Relation::Le,
            rhs,
        )
        .unwrap();
        p
    };
    let mut ws = LpWorkspace::new();
    for rhs in [1.0, 2.0, 0.5, 1.0, 3.0] {
        let p = build(rhs);
        let warm = p.solve_with(&mut ws).unwrap();
        let cold = p.solve().unwrap();
        assert!(
            (warm.objective() - cold.objective()).abs() < 1e-9,
            "rhs {rhs}: warm {} vs cold {}",
            warm.objective(),
            cold.objective()
        );
    }
}
