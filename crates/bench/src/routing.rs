//! Workload-routing sweeps: the off vs co-optimized comparison table for
//! one scenario pack over one topology. The *off* column prices every
//! request at its arrival frame's mean spot ([`serve-on-arrival`]
//! baseline, [`dpss_sim::FleetWorkload::serve_on_arrival`]) on top of the
//! coordinated energy run; the *co-optimized* column runs the same fleet
//! through [`MultiSiteEngine::run_routed`] with a [`RoutingPlanner`],
//! which absorbs deferrable work into residual curtailment, migrates it
//! across open links toward forecast curtailment, and defers the rest to
//! the cheapest frame inside the queue-age bound. The energy settlement
//! is byte-identical between the two columns (the routing layer is
//! lexicographic — it only consumes what the export plan left over), so
//! `saved $` isolates the workload layer's contribution.
//!
//! [`serve-on-arrival`]: dpss_sim::FleetWorkload::serve_on_arrival

// Bench policy (see `figures`): built-in packs generate valid traces and
// valid engines by construction; expects assert those invariants rather
// than surfacing them as experiment outcomes.
// audit:allow-file(panic-unwrap): bench treats misconfiguration of built-in packs as a programming error; every expect states its invariant
// audit:allow-file(slice-index): variant indices are bounded by the pack roster they iterate

use dpss_core::{FleetPlanner, RoutingPlanner, SmartDpss, SmartDpssConfig};
use dpss_sim::{
    Controller, Engine, Interconnect, LoadTotals, MultiSiteEngine, RoutingConfig, SimParams,
};
use dpss_traces::ScenarioPack;
use dpss_units::{Money, Price, SlotClock};

use crate::packs::default_transfer_cap;
use crate::{Axis, ExperimentRunner, FigureTable, SweepSpec};

/// One variant's off vs co-optimized outcome, with the workload ledger
/// behind the co-optimized column — the numeric form the `bench_sweep`
/// perf rows and the acceptance tests consume (the [`routing_sweep_with`]
/// table is a rendering of this).
#[derive(Debug, Clone)]
pub struct RoutingOutcome {
    /// The pack variant's label.
    pub label: String,
    /// Fleet total with routing off: the coordinated energy run plus the
    /// serve-on-arrival workload bill.
    pub off_cost: Money,
    /// Fleet total with routing co-optimized: the identical energy
    /// settlement plus the routed workload bill.
    pub coopt_cost: Money,
    /// The co-optimized run's workload ledger (conservation fields,
    /// absorbed/migrated energy, max queue wait).
    pub load: LoadTotals,
}

impl RoutingOutcome {
    /// `off - coopt`: what co-optimization saved on this variant. The
    /// deferral rule only ever moves work to a strictly cheaper frame
    /// (or absorbs it for free), so this is structurally non-negative.
    #[must_use]
    pub fn saving(&self) -> Money {
        self.off_cost - self.coopt_cost
    }
}

/// The default topology for a routing sweep: the lossy wheeled ring from
/// [`crate::topology_roster`] — the acceptance topology, because a ring
/// forces migrations through capped, priced, lossy links instead of a
/// frictionless pool.
///
/// # Panics
///
/// Panics if `sites < 2` (a ring needs two sites).
#[must_use]
pub fn routing_interconnect(sites: usize) -> Interconnect {
    Interconnect::ring(sites, default_transfer_cap())
        .expect("valid roster")
        .with_uniform_loss(0.05)
        .expect("valid loss")
        .with_uniform_wheeling(Price::from_dollars_per_mwh(2.0))
        .expect("valid wheeling")
}

/// Runs the off vs co-optimized comparison for every variant of `pack`
/// and returns the per-variant outcomes in variant order. Variants fan
/// out across the runner's workers like coordinated pack sweeps — each
/// cell runs its whole fleet twice (off, then co-optimized) with fresh
/// planners, so the outcome roster is byte-identical for any `--threads`
/// value.
///
/// # Panics
///
/// Panics if `sites == 0`, the pack is empty, the topology spans a
/// different site count, the routing config is invalid, or a built-in
/// model misbehaves (harness contract: programming errors, not
/// experiment outcomes).
#[must_use]
pub fn routing_outcomes(
    runner: &ExperimentRunner,
    seed: u64,
    pack: &ScenarioPack,
    sites: usize,
    interconnect: &Interconnect,
    config: RoutingConfig,
) -> Vec<RoutingOutcome> {
    assert!(sites >= 1, "a routing sweep needs at least one site");
    assert!(
        !pack.is_empty(),
        "a routing sweep needs at least one variant"
    );
    assert_eq!(
        interconnect.sites(),
        sites,
        "the interconnect must span the sweep's site roster"
    );
    let clock = SlotClock::icdcs13_month();
    let params = SimParams::icdcs13();

    let fleets: Vec<MultiSiteEngine> = (0..pack.len())
        .map(|v| {
            let engines: Vec<Engine> = (0..sites)
                .map(|s| {
                    let traces = pack
                        .generate_site(&clock, seed, v, s)
                        .expect("built-in pack generates valid traces");
                    Engine::new(params, traces).expect("valid engine")
                })
                .collect();
            MultiSiteEngine::new(engines)
                .expect("sites share the calendar")
                .with_interconnect(interconnect.clone())
                .expect("topology spans the roster")
        })
        .collect();

    let boxes = |n: usize| -> Vec<Box<dyn Controller>> {
        (0..n)
            .map(|_| {
                Box::new(
                    SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock)
                        .expect("valid configuration"),
                ) as Box<dyn Controller>
            })
            .collect()
    };

    let spec = SweepSpec::new(&format!("routing-{}", pack.name()), seed)
        .with_axis(Axis::new("variant", pack.labels()));
    runner.run_cells(&spec, |cell| {
        let v = cell.coords[0];
        let fleet = &fleets[v];
        let label = pack.variant(v).expect("fleet per variant").0.to_owned();

        // Off: coordinated energy dispatch, every request billed at its
        // arrival frame's mean spot.
        let mut off_dispatcher = FleetPlanner::for_engine(fleet).with_coordination(true);
        let off_report = fleet
            .run_with(&mut boxes(sites), &mut off_dispatcher)
            .expect("fleet run succeeds");
        let off_workload = fleet
            .workload_ledger(config)
            .expect("built-in traces shape a valid ledger")
            .serve_on_arrival();
        let off_cost = off_report.total_cost() + off_workload.cost;

        // Co-optimized: the same coordinated planner wrapped by the
        // routing layer; the energy settlement is byte-identical.
        let mut routed = RoutingPlanner::new(
            FleetPlanner::for_engine(fleet).with_coordination(true),
            config,
        )
        .expect("validated routing config");
        let coopt_report = fleet
            .run_routed(&mut boxes(sites), &mut routed, config)
            .expect("routed fleet run succeeds");

        RoutingOutcome {
            label,
            off_cost,
            coopt_cost: coopt_report.total_cost(),
            load: coopt_report.load,
        }
    })
}

/// The off vs co-optimized comparison table for one scenario pack:
/// one row per variant with both fleet totals, the saving, and the
/// co-optimized ledger's absorbed/migrated energy plus its mean and
/// worst realized queue delays (in coarse frames).
///
/// # Panics
///
/// Same contract as [`routing_outcomes`].
#[must_use]
pub fn routing_sweep_with(
    runner: &ExperimentRunner,
    seed: u64,
    pack: &ScenarioPack,
    sites: usize,
    interconnect: &Interconnect,
    config: RoutingConfig,
) -> FigureTable {
    let outcomes = routing_outcomes(runner, seed, pack, sites, interconnect, config);
    let mut table = FigureTable::new(
        &format!(
            "Pack {}: workload routing off vs co-optimized ({} site{}, {})",
            pack.name(),
            sites,
            if sites == 1 { "" } else { "s" },
            interconnect.describe(),
        ),
        &[
            "variant",
            "off $",
            "coopt $",
            "saved $",
            "absorbed MWh",
            "migrated MWh",
            "mean wait",
            "max wait",
        ],
    );
    for o in &outcomes {
        table.push_owned(vec![
            o.label.clone(),
            format!("{:.3}", o.off_cost.dollars()),
            format!("{:.3}", o.coopt_cost.dollars()),
            format!("{:.3}", o.saving().dollars()),
            format!("{:.2}", o.load.absorbed.mwh()),
            format!("{:.2}", o.load.migrated.mwh()),
            format!("{:.2}", o.load.mean_wait_frames()),
            o.load.max_wait_frames.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAPER_SEED;
    use dpss_units::Energy;

    #[test]
    fn co_optimized_never_costs_more_than_off() {
        let runner = ExperimentRunner::new(1);
        let pack = ScenarioPack::builtin("traffic-wave").expect("builtin pack");
        let sites = 3;
        let outcomes = routing_outcomes(
            &runner,
            PAPER_SEED,
            &pack,
            sites,
            &routing_interconnect(sites),
            RoutingConfig::icdcs13(),
        );
        assert_eq!(outcomes.len(), pack.len());
        for o in &outcomes {
            assert!(
                o.saving().dollars() >= -1e-9,
                "{}: co-optimized ${} must not exceed off ${}",
                o.label,
                o.coopt_cost.dollars(),
                o.off_cost.dollars()
            );
            // Conservation over the whole run.
            let settled =
                o.load.served_spot + o.load.absorbed + o.load.migrated + o.load.final_backlog;
            assert!((o.load.arrived - settled).mwh().abs() < 1e-6, "{}", o.label);
            assert_eq!(o.load.final_backlog, Energy::ZERO, "{}", o.label);
            assert!(
                o.load.max_wait_frames <= RoutingConfig::icdcs13().max_queue_age,
                "{}",
                o.label
            );
        }
        // The flash-crowd variant actually exercises the layer.
        let flash = outcomes
            .iter()
            .find(|o| o.label == "flash-crowd")
            .expect("traffic-wave carries a flash-crowd variant");
        assert!(flash.load.arrived > Energy::ZERO);
        assert!(
            flash.saving().dollars() > 0.0,
            "flash crowd must save money"
        );
    }

    #[test]
    fn table_renders_one_row_per_variant() {
        let runner = ExperimentRunner::new(1);
        let pack = ScenarioPack::builtin("traffic-wave").expect("builtin pack");
        let sites = 2;
        let table = routing_sweep_with(
            &runner,
            PAPER_SEED,
            &pack,
            sites,
            &routing_interconnect(sites),
            RoutingConfig::icdcs13(),
        );
        assert_eq!(table.rows.len(), pack.len());
        assert_eq!(table.columns.len(), 8);
    }
}
