//! One computation function per paper figure (see `DESIGN.md` §5 for the
//! experiment index and EXPERIMENTS.md for paper-vs-measured notes).
//!
//! Every figure is expressed as a [`SweepSpec`] — a named roster of cells
//! (grid points, baselines, ablation variants) — executed by an
//! [`ExperimentRunner`]. Each `figN` entry point has a `figN_with`
//! sibling taking an explicit runner; the short form uses the default
//! runner (all available cores). Results are assembled in cell order, so
//! the tables are byte-identical for every thread count.

// Bench policy: built-in scenarios, engines and LPs are valid by
// construction, so generator/solver failure here is a programming error,
// not an experiment outcome — expects carry the invariant they assert.
// Table rows are built rectangular in the same function that indexes them.
// audit:allow-file(panic-unwrap): bench treats misconfiguration of built-in worlds as a programming error; every expect states its invariant
// audit:allow-file(slice-index): figure tables and sweep grids are built rectangular in the same function that indexes them

use dpss_core::{MarketMode, OfflineConfig, SmartDpssConfig};
use dpss_sim::{Engine, SimParams};
use dpss_traces::{scaling, UniformError};
use dpss_units::SlotClock;

use crate::{
    paper_traces, run_impatient, run_offline, run_smart, setup, traces_on, Axis, ExperimentRunner,
    FigureTable, SweepSpec, PAPER_SEED,
};

/// The `V` grid of Fig. 6(a,b).
pub const FIG6_V_GRID: [f64; 8] = [0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 3.0, 5.0];
/// The `T` grid of Fig. 6(c,d) (the paper sweeps 3 h to 6 days).
pub const FIG6_T_GRID: [usize; 6] = [3, 6, 12, 24, 48, 144];
/// The `ε` grid of Fig. 7.
pub const FIG7_EPS_GRID: [f64; 4] = [0.25, 0.5, 1.0, 2.0];
/// The battery grid (minutes of peak demand) of Fig. 7.
pub const FIG7_BMAX_GRID: [f64; 3] = [0.0, 15.0, 30.0];
/// The renewable-penetration grid of Fig. 8.
pub const FIG8_PENETRATION_GRID: [f64; 6] = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
/// The demand-variation grid of Fig. 8.
pub const FIG8_VARIATION_GRID: [f64; 5] = [0.0, 0.5, 1.0, 1.5, 2.0];
/// The expansion grid of Fig. 10.
pub const FIG10_BETA_GRID: [f64; 4] = [1.0, 2.0, 5.0, 10.0];

/// Fig. 5: the one-month input traces, summarized per day (the paper plots
/// the raw series; the regenerator binary also exports the full CSV).
#[must_use]
pub fn fig5(seed: u64) -> (FigureTable, String) {
    fig5_with(&ExperimentRunner::default(), seed)
}

/// [`fig5`] on an explicit runner (one cell per day).
#[must_use]
pub fn fig5_with(runner: &ExperimentRunner, seed: u64) -> (FigureTable, String) {
    let traces = paper_traces(seed);
    let t = traces.clock.slots_per_frame();
    let days: Vec<String> = (0..traces.clock.frames()).map(|d| d.to_string()).collect();
    let spec = SweepSpec::new("fig5-traces", seed).with_axis(Axis::new("day", days));
    let table = runner.run_table(
        &spec,
        "Fig. 5: one-month traces (per-day summary)",
        &[
            "day",
            "demand MWh",
            "ds MWh",
            "dt MWh",
            "solar MWh",
            "lt $/MWh",
            "rt mean $/MWh",
            "rt max $/MWh",
        ],
        |cell| {
            let day = cell.index;
            let range = day * t..(day + 1) * t;
            let ds: f64 = traces.demand_ds[range.clone()]
                .iter()
                .map(|e| e.mwh())
                .sum();
            let dt: f64 = traces.demand_dt[range.clone()]
                .iter()
                .map(|e| e.mwh())
                .sum();
            let solar: f64 = traces.renewable[range.clone()]
                .iter()
                .map(|e| e.mwh())
                .sum();
            let rt: Vec<f64> = traces.price_rt[range]
                .iter()
                .map(|p| p.dollars_per_mwh())
                .collect();
            let rt_mean = rt.iter().sum::<f64>() / rt.len() as f64;
            let rt_max = rt.iter().fold(0.0f64, |a, &b| a.max(b));
            vec![vec![
                format!("{day}"),
                format!("{:.2}", ds + dt),
                format!("{ds:.2}"),
                format!("{dt:.2}"),
                format!("{solar:.2}"),
                format!("{:.2}", traces.price_lt[day].dollars_per_mwh()),
                format!("{rt_mean:.2}"),
                format!("{rt_max:.2}"),
            ]]
        },
    );
    (table, traces.to_csv())
}

/// Fig. 6(a,b): time-average cost and average delay vs `V`, SmartDPSS vs
/// the offline benchmark vs Impatient (`T = 24`, `ε = 0.5`, 15-min UPS).
#[must_use]
pub fn fig6_v(seed: u64, vs: &[f64], include_offline: bool) -> FigureTable {
    fig6_v_with(&ExperimentRunner::default(), seed, vs, include_offline)
}

/// [`fig6_v`] on an explicit runner. The baselines (offline, Impatient)
/// are cells of the same sweep as the `V` grid, so they run concurrently
/// with the SmartDPSS cells instead of serializing in front of them.
#[must_use]
pub fn fig6_v_with(
    runner: &ExperimentRunner,
    seed: u64,
    vs: &[f64],
    include_offline: bool,
) -> FigureTable {
    let (engine, params) = setup(seed);
    let mut roster: Vec<String> = Vec::with_capacity(vs.len() + 2);
    if include_offline {
        roster.push("offline".into());
    }
    roster.push("impatient".into());
    roster.extend(vs.iter().map(|v| format!("V={v}")));
    let spec = SweepSpec::new("fig6-v", seed).with_axis(Axis::new("run", roster));

    let n_base = usize::from(include_offline) + 1;
    let results = runner.run_cells(&spec, |cell| {
        if include_offline && cell.index == 0 {
            let r = run_offline(&engine, params);
            (r.time_average_cost().dollars(), r.average_delay_slots)
        } else if cell.index == n_base - 1 {
            let r = run_impatient(&engine);
            (r.time_average_cost().dollars(), r.average_delay_slots)
        } else {
            let v = vs[cell.index - n_base];
            let r = run_smart(&engine, params, SmartDpssConfig::icdcs13().with_v(v));
            (r.time_average_cost().dollars(), r.average_delay_slots)
        }
    });

    let off = if include_offline {
        Some(results[0])
    } else {
        None
    };
    let imp = results[n_base - 1];
    let mut table = FigureTable::new(
        "Fig. 6(a,b): cost and delay vs V (SmartDPSS / offline / impatient)",
        &[
            "V",
            "smart $/slot",
            "smart delay",
            "offline $/slot",
            "offline delay",
            "impatient $/slot",
            "impatient delay",
        ],
    );
    for (v, &(cost, delay)) in vs.iter().zip(&results[n_base..]) {
        let (oc, od) = off.map_or((f64::NAN, f64::NAN), |x| x);
        table.push_owned(vec![
            format!("{v}"),
            format!("{cost:.3}"),
            format!("{delay:.2}"),
            format!("{oc:.3}"),
            format!("{od:.2}"),
            format!("{:.3}", imp.0),
            format!("{:.2}", imp.1),
        ]);
    }
    table
}

/// Fig. 6(c,d): cost and delay vs the coarse-frame length `T` (`V = 1`,
/// `ε = 0.5`). The horizon is held at ~744 hourly slots; frames are
/// re-chunked and traces regenerated per calendar. The offline benchmark
/// is included up to `offline_max_t` (its frame LP grows with `T²`).
#[must_use]
pub fn fig6_t(seed: u64, ts: &[usize], offline_max_t: usize) -> FigureTable {
    fig6_t_with(&ExperimentRunner::default(), seed, ts, offline_max_t)
}

/// [`fig6_t`] on an explicit runner (one cell per `T`; each cell builds
/// its own calendar, trace set and engine). Offline cells solve cold for
/// bit-reproducibility of the published table.
#[must_use]
pub fn fig6_t_with(
    runner: &ExperimentRunner,
    seed: u64,
    ts: &[usize],
    offline_max_t: usize,
) -> FigureTable {
    fig6_t_offline_with(runner, seed, ts, offline_max_t, OfflineConfig::default())
}

/// [`fig6_t_with`] with an explicit [`OfflineConfig`] for the offline
/// cells. This is how the `T = 144` column gets populated at all:
/// `warm_start: true` lets frames 2…K reuse the previous optimal basis of
/// the ~1k-row frame LP, and a revised `frame_pivot_budget` bounds the
/// worst case (`bench_sweep` measures and records the wall time in
/// `BENCH_sweep.json`).
#[must_use]
pub fn fig6_t_offline_with(
    runner: &ExperimentRunner,
    seed: u64,
    ts: &[usize],
    offline_max_t: usize,
    offline: OfflineConfig,
) -> FigureTable {
    let params = SimParams::icdcs13();
    let labels: Vec<String> = ts.iter().map(|t| t.to_string()).collect();
    let spec = SweepSpec::new("fig6-t", seed).with_axis(Axis::new("T", labels));
    runner.run_table(
        &spec,
        "Fig. 6(c,d): cost and delay vs T (SmartDPSS; offline where tractable)",
        &[
            "T",
            "frames",
            "smart $/slot",
            "smart delay",
            "offline $/slot",
            "offline delay",
        ],
        |cell| {
            let t = ts[cell.index];
            let frames = (744 / t).max(1);
            let clock = SlotClock::new(frames, t, 1.0).expect("valid clock");
            let engine = Engine::new(params, traces_on(&clock, seed)).expect("valid engine");
            let r = run_smart(&engine, params, SmartDpssConfig::icdcs13());
            let (oc, od) = if t <= offline_max_t {
                let o = crate::run_offline_with(&engine, params, offline);
                (
                    format!("{:.3}", o.time_average_cost().dollars()),
                    format!("{:.2}", o.average_delay_slots),
                )
            } else {
                ("-".into(), "-".into())
            };
            vec![vec![
                format!("{t}"),
                format!("{frames}"),
                format!("{:.3}", r.time_average_cost().dollars()),
                format!("{:.2}", r.average_delay_slots),
                oc,
                od,
            ]]
        },
    )
}

/// Fig. 7, part 1: time-average cost vs the delay-control parameter `ε`.
#[must_use]
pub fn fig7_epsilon(seed: u64, eps: &[f64]) -> FigureTable {
    fig7_epsilon_with(&ExperimentRunner::default(), seed, eps)
}

/// [`fig7_epsilon`] on an explicit runner.
#[must_use]
pub fn fig7_epsilon_with(runner: &ExperimentRunner, seed: u64, eps: &[f64]) -> FigureTable {
    let (engine, params) = setup(seed);
    let spec = SweepSpec::new("fig7-eps", seed).with_axis(Axis::from_f64s("eps", eps));
    runner.run_table(
        &spec,
        "Fig. 7 (ε): cost and delay vs ε (V=1, T=24, Bmax=15 min, two markets)",
        &["eps", "$/slot", "delay"],
        |cell| {
            let e = eps[cell.index];
            let r = run_smart(&engine, params, SmartDpssConfig::icdcs13().with_epsilon(e));
            vec![vec![
                format!("{e}"),
                format!("{:.3}", r.time_average_cost().dollars()),
                format!("{:.2}", r.average_delay_slots),
            ]]
        },
    )
}

/// Fig. 7, part 2: two-timescale markets vs real-time-only.
#[must_use]
pub fn fig7_markets(seed: u64) -> FigureTable {
    fig7_markets_with(&ExperimentRunner::default(), seed)
}

/// [`fig7_markets`] on an explicit runner.
#[must_use]
pub fn fig7_markets_with(runner: &ExperimentRunner, seed: u64) -> FigureTable {
    const CASES: [(&str, MarketMode); 2] = [
        ("TM", MarketMode::TwoMarkets),
        ("RTM", MarketMode::RealTimeOnly),
    ];
    let (engine, params) = setup(seed);
    let spec = SweepSpec::new("fig7-markets", seed)
        .with_axis(Axis::new("markets", CASES.iter().map(|(l, _)| *l)));
    runner.run_table(
        &spec,
        "Fig. 7 (markets): two markets (TM) vs real-time only (RTM)",
        &["markets", "$/slot", "lt MWh", "rt MWh"],
        |cell| {
            let (label, market) = CASES[cell.index];
            let r = run_smart(
                &engine,
                params,
                SmartDpssConfig::icdcs13().with_market(market),
            );
            vec![vec![
                label.into(),
                format!("{:.3}", r.time_average_cost().dollars()),
                format!("{:.1}", r.energy_lt.mwh()),
                format!("{:.1}", r.energy_rt.mwh()),
            ]]
        },
    )
}

/// Fig. 7, part 3: cost vs UPS size (`Bmax` in minutes of peak demand;
/// `0` is the paper's "no battery" case).
#[must_use]
pub fn fig7_battery(seed: u64, minutes: &[f64]) -> FigureTable {
    fig7_battery_with(&ExperimentRunner::default(), seed, minutes)
}

/// [`fig7_battery`] on an explicit runner. Each cell derives its engine
/// from one shared trace set via [`Engine::with_params`] instead of
/// regenerating the month per battery size.
#[must_use]
pub fn fig7_battery_with(runner: &ExperimentRunner, seed: u64, minutes: &[f64]) -> FigureTable {
    let (base, _) = setup(seed);
    let spec = SweepSpec::new("fig7-battery", seed).with_axis(Axis::from_f64s("bmax", minutes));
    runner.run_table(
        &spec,
        "Fig. 7 (battery): cost vs Bmax (minutes of peak demand)",
        &["Bmax min", "$/slot", "waste MWh", "battery ops"],
        |cell| {
            let m = minutes[cell.index];
            let params = SimParams::icdcs13_with_battery(m);
            let engine = base.with_params(params).expect("valid params");
            let r = run_smart(&engine, params, SmartDpssConfig::icdcs13());
            vec![vec![
                format!("{m}"),
                format!("{:.3}", r.time_average_cost().dollars()),
                format!("{:.1}", r.energy_wasted.mwh()),
                format!("{}", r.battery_ops),
            ]]
        },
    )
}

/// Fig. 8: cost vs renewable penetration and vs demand variation.
#[must_use]
pub fn fig8(seed: u64, penetrations: &[f64], variations: &[f64]) -> (FigureTable, FigureTable) {
    fig8_with(&ExperimentRunner::default(), seed, penetrations, variations)
}

/// [`fig8`] on an explicit runner (one sweep per sub-figure; cells apply
/// the scaling transform to one shared truth set).
#[must_use]
pub fn fig8_with(
    runner: &ExperimentRunner,
    seed: u64,
    penetrations: &[f64],
    variations: &[f64],
) -> (FigureTable, FigureTable) {
    let params = SimParams::icdcs13();
    let truth = paper_traces(seed);

    let pen_spec = SweepSpec::new("fig8-penetration", seed)
        .with_axis(Axis::from_f64s("penetration", penetrations));
    let pen_table = runner.run_table(
        &pen_spec,
        "Fig. 8 (penetration): cost vs renewable penetration",
        &["penetration", "$/slot", "waste MWh"],
        |cell| {
            let p = penetrations[cell.index];
            let t = scaling::with_renewable_penetration(&truth, p).expect("valid penetration");
            let engine = Engine::new(params, t).expect("valid engine");
            let r = run_smart(&engine, params, SmartDpssConfig::icdcs13());
            vec![vec![
                format!("{:.0}%", p * 100.0),
                format!("{:.3}", r.time_average_cost().dollars()),
                format!("{:.1}", r.energy_wasted.mwh()),
            ]]
        },
    );

    let var_spec =
        SweepSpec::new("fig8-variation", seed).with_axis(Axis::from_f64s("stretch", variations));
    let var_table = runner.run_table(
        &var_spec,
        "Fig. 8 (variation): cost vs demand variation (std-dev stretch)",
        &["stretch", "demand std MWh", "$/slot"],
        |cell| {
            let f = variations[cell.index];
            let t = scaling::with_demand_variation(&truth, f).expect("valid variation");
            let std = t.demand_stats().std;
            let engine = Engine::new(params, t).expect("valid engine");
            let r = run_smart(&engine, params, SmartDpssConfig::icdcs13());
            vec![vec![
                format!("{f}"),
                format!("{std:.3}"),
                format!("{:.3}", r.time_average_cost().dollars()),
            ]]
        },
    );
    (pen_table, var_table)
}

/// Fig. 9: change in cost *reduction* (vs Impatient) when the controller
/// observes uniformly perturbed inputs, across `V`.
#[must_use]
pub fn fig9(seed: u64, error_fraction: f64, vs: &[f64]) -> FigureTable {
    fig9_with(&ExperimentRunner::default(), seed, error_fraction, vs)
}

/// [`fig9`] on an explicit runner. The Impatient baseline is cell 0 of
/// the same sweep; each `V` cell runs the clean and the noisy world.
#[must_use]
pub fn fig9_with(
    runner: &ExperimentRunner,
    seed: u64,
    error_fraction: f64,
    vs: &[f64],
) -> FigureTable {
    let params = SimParams::icdcs13();
    let truth = paper_traces(seed);
    let clean_engine = Engine::new(params, truth.clone()).expect("valid engine");
    let observed = UniformError::new(error_fraction)
        .expect("valid fraction")
        .perturb(&truth, seed ^ 0x9E37)
        .expect("valid observation");
    let noisy_engine = Engine::new(params, truth)
        .expect("valid engine")
        .with_observed(observed)
        .expect("same calendar");

    let mut roster = vec!["impatient-baseline".to_owned()];
    roster.extend(vs.iter().map(|v| format!("V={v}")));
    let spec = SweepSpec::new("fig9-errors", seed).with_axis(Axis::new("run", roster));
    let results = runner.run_cells(&spec, |cell| {
        if cell.index == 0 {
            let b = run_impatient(&clean_engine).total_cost().dollars();
            (b, f64::NAN)
        } else {
            let config = SmartDpssConfig::icdcs13().with_v(vs[cell.index - 1]);
            let clean = run_smart(&clean_engine, params, config)
                .total_cost()
                .dollars();
            let noisy = run_smart(&noisy_engine, params, config)
                .total_cost()
                .dollars();
            (clean, noisy)
        }
    });

    let baseline = results[0].0;
    let mut table = FigureTable::new(
        "Fig. 9: cost-reduction delta under observation errors, vs V",
        &["V", "clean red. %", "noisy red. %", "delta pp"],
    );
    for (v, &(clean, noisy)) in vs.iter().zip(&results[1..]) {
        let red_clean = 100.0 * (baseline - clean) / baseline;
        let red_noisy = 100.0 * (baseline - noisy) / baseline;
        table.push_owned(vec![
            format!("{v}"),
            format!("{red_clean:.2}"),
            format!("{red_noisy:.2}"),
            format!("{:+.2}", red_noisy - red_clean),
        ]);
    }
    table
}

/// Fig. 10: total cost under system expansion `β` (demand and renewables
/// scaled, UPS fixed, interconnect scaled with the build-out).
#[must_use]
pub fn fig10(seed: u64, betas: &[f64]) -> FigureTable {
    fig10_with(&ExperimentRunner::default(), seed, betas)
}

/// [`fig10`] on an explicit runner. The per-unit column normalizes
/// against the first `β`, so cells return raw costs and the table is
/// assembled sequentially afterwards.
#[must_use]
pub fn fig10_with(runner: &ExperimentRunner, seed: u64, betas: &[f64]) -> FigureTable {
    let truth = paper_traces(seed);
    let base = SimParams::icdcs13();
    let spec = SweepSpec::new("fig10-expansion", seed).with_axis(Axis::from_f64s("beta", betas));
    let costs = runner.run_cells(&spec, |cell| {
        let b = betas[cell.index];
        let t = scaling::expand(&truth, b).expect("valid beta");
        let mut params = base;
        params.grid_cap = base.grid_cap * b;
        let engine = Engine::new(params, t).expect("valid engine");
        let r = run_smart(&engine, params, SmartDpssConfig::icdcs13());
        r.time_average_cost().dollars()
    });

    let mut table = FigureTable::new(
        "Fig. 10: time-average total cost vs expansion beta (UPS fixed)",
        &["beta", "$/slot", "per-unit vs beta=1"],
    );
    let mut unit_base = None;
    for (b, cost) in betas.iter().zip(costs) {
        let per_unit = cost / b;
        let base_unit = *unit_base.get_or_insert(per_unit);
        table.push_owned(vec![
            format!("{b}"),
            format!("{cost:.3}"),
            format!("{:.3}x", per_unit / base_unit),
        ]);
    }
    table
}

/// Ablation: the printed P5 objective vs the drift-plus-penalty
/// derivation, and the paper-literal P4 vs the waste-aware cap
/// (`DESIGN.md` §3).
#[must_use]
pub fn ablations(seed: u64) -> FigureTable {
    ablations_with(&ExperimentRunner::default(), seed)
}

/// [`ablations`] on an explicit runner (one cell per variant).
#[must_use]
pub fn ablations_with(runner: &ExperimentRunner, seed: u64) -> FigureTable {
    use dpss_core::{P4Variant, P5Objective};
    let (engine, params) = setup(seed);
    let cases: [(&str, SmartDpssConfig); 4] = [
        (
            "derived + waste-aware (default)",
            SmartDpssConfig::icdcs13(),
        ),
        (
            "paper-literal P5",
            SmartDpssConfig::icdcs13().with_p5_objective(P5Objective::PaperLiteral),
        ),
        (
            "paper-literal P4",
            SmartDpssConfig::icdcs13().with_p4_variant(P4Variant::PaperLiteral),
        ),
        (
            "paper-literal both",
            SmartDpssConfig::icdcs13()
                .with_p5_objective(P5Objective::PaperLiteral)
                .with_p4_variant(P4Variant::PaperLiteral),
        ),
    ];
    let spec = SweepSpec::new("ablations", seed)
        .with_axis(Axis::new("variant", cases.iter().map(|(l, _)| *l)));
    runner.run_table(
        &spec,
        "Ablations: P5 objective and P4 purchase cap (V=1)",
        &["variant", "$/slot", "delay", "waste MWh"],
        |cell| {
            let (label, config) = cases[cell.index];
            let r = run_smart(&engine, params, config);
            vec![vec![
                label.into(),
                format!("{:.3}", r.time_average_cost().dollars()),
                format!("{:.2}", r.average_delay_slots),
                format!("{:.1}", r.energy_wasted.mwh()),
            ]]
        },
    )
}

/// Extension ablation: how much is better frame-ahead information worth?
/// Runs SmartDPSS under the causal previous-frame observation, a perfect
/// coming-frame oracle, and a noisy oracle at the paper's cited 22.2%
/// renewable forecast error.
#[must_use]
pub fn forecast_ablation(seed: u64) -> FigureTable {
    forecast_ablation_with(&ExperimentRunner::default(), seed)
}

/// [`forecast_ablation`] on an explicit runner (one cell per policy).
#[must_use]
pub fn forecast_ablation_with(runner: &ExperimentRunner, seed: u64) -> FigureTable {
    use dpss_sim::ForecastPolicy;
    let params = SimParams::icdcs13();
    let truth = paper_traces(seed);
    let policies: [(&str, ForecastPolicy); 3] = [
        (
            "prev-frame average (paper)",
            ForecastPolicy::PrevFrameAverage,
        ),
        ("perfect oracle", ForecastPolicy::Oracle),
        (
            "noisy oracle (22.2% err)",
            ForecastPolicy::NoisyOracle {
                rel_std: 0.222,
                seed: seed ^ 0xF0,
            },
        ),
    ];
    let spec = SweepSpec::new("forecast-ablation", seed)
        .with_axis(Axis::new("forecast", policies.iter().map(|(l, _)| *l)));
    runner.run_table(
        &spec,
        "Forecast ablation: value of frame-ahead information (V=1)",
        &["frame forecast", "$/slot", "delay", "rt MWh"],
        |cell| {
            let (label, policy) = policies[cell.index];
            let engine = Engine::new(params, truth.clone())
                .expect("valid engine")
                .with_forecast(policy)
                .expect("valid policy");
            let r = run_smart(&engine, params, SmartDpssConfig::icdcs13());
            vec![vec![
                label.into(),
                format!("{:.3}", r.time_average_cost().dollars()),
                format!("{:.2}", r.average_delay_slots),
                format!("{:.1}", r.energy_rt.mwh()),
            ]]
        },
    )
}

/// Extension: the full baseline roster on one trace — SmartDPSS, the
/// offline benchmark, the receding-horizon MPC (causal and oracle
/// forecasts), Impatient, and the greedy battery-arbitrage rule.
#[must_use]
pub fn baselines(seed: u64) -> FigureTable {
    baselines_with(&ExperimentRunner::default(), seed)
}

/// [`baselines`] on an explicit runner (one cell per policy).
#[must_use]
pub fn baselines_with(runner: &ExperimentRunner, seed: u64) -> FigureTable {
    use dpss_core::{GreedyBattery, RecedingHorizon};
    use dpss_sim::ForecastPolicy;
    use dpss_units::Price;
    let (engine, params) = setup(seed);
    let roster = [
        "smart-dpss",
        "offline",
        "mpc (causal fcst)",
        "mpc (oracle fcst)",
        "impatient",
        "greedy",
    ];
    let spec = SweepSpec::new("baselines", seed).with_axis(Axis::new("policy", roster));
    runner.run_table(
        &spec,
        "Baseline roster (one-month trace)",
        &["policy", "$/slot", "delay", "battery ops"],
        |cell| {
            let (label, r) = match cell.index {
                0 => (None, run_smart(&engine, params, SmartDpssConfig::icdcs13())),
                1 => (None, run_offline(&engine, params)),
                2 => {
                    let mut mpc = RecedingHorizon::new(params).expect("valid params");
                    (
                        Some("mpc (causal fcst)"),
                        engine.run(&mut mpc).expect("run succeeds"),
                    )
                }
                3 => {
                    let oracle_engine = engine
                        .clone()
                        .with_forecast(ForecastPolicy::Oracle)
                        .expect("valid policy");
                    let mut mpc = RecedingHorizon::new(params).expect("valid params");
                    (
                        Some("mpc (oracle fcst)"),
                        oracle_engine.run(&mut mpc).expect("run succeeds"),
                    )
                }
                4 => (None, run_impatient(&engine)),
                _ => {
                    let mut greedy = GreedyBattery::around(Price::from_dollars_per_mwh(35.0))
                        .expect("valid thresholds");
                    (None, engine.run(&mut greedy).expect("run succeeds"))
                }
            };
            vec![vec![
                label.map_or_else(|| r.controller.clone(), str::to_owned),
                format!("{:.3}", r.time_average_cost().dollars()),
                format!("{:.2}", r.average_delay_slots),
                format!("{}", r.battery_ops),
            ]]
        },
    )
}

/// Default-everything convenience used by tests: computes the Fig. 6(a)
/// table with the canonical seed and grid.
#[must_use]
pub fn fig6_v_default() -> FigureTable {
    fig6_v(PAPER_SEED, &FIG6_V_GRID, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_covers_every_day() {
        let (table, csv) = fig5(7);
        assert_eq!(table.rows.len(), 31);
        assert_eq!(csv.lines().count(), 745); // header + 744 slots
    }

    #[test]
    fn fig6_v_small_grid_is_monotone_in_cost() {
        let t = fig6_v(PAPER_SEED, &[0.1, 5.0], false);
        assert_eq!(t.rows.len(), 2);
        let cost_low: f64 = t.rows[0][1].parse().unwrap();
        let cost_high: f64 = t.rows[1][1].parse().unwrap();
        assert!(cost_high < cost_low, "{cost_high} vs {cost_low}");
        let delay_low: f64 = t.rows[0][2].parse().unwrap();
        let delay_high: f64 = t.rows[1][2].parse().unwrap();
        assert!(delay_high > delay_low);
    }

    #[test]
    fn fig7_tables_have_expected_shapes() {
        let eps = fig7_epsilon(PAPER_SEED, &[0.25, 2.0]);
        let d0: f64 = eps.rows[0][2].parse().unwrap();
        let d1: f64 = eps.rows[1][2].parse().unwrap();
        assert!(d1 < d0, "larger ε serves sooner");
        let markets = fig7_markets(PAPER_SEED);
        let tm: f64 = markets.rows[0][1].parse().unwrap();
        let rtm: f64 = markets.rows[1][1].parse().unwrap();
        assert!(tm < rtm, "two markets cheaper");
    }

    #[test]
    fn fig8_penetration_reduces_cost() {
        let (pen, _) = fig8(PAPER_SEED, &[0.0, 1.0], &[1.0]);
        let none: f64 = pen.rows[0][1].parse().unwrap();
        let full: f64 = pen.rows[1][1].parse().unwrap();
        assert!(full < none);
    }

    #[test]
    fn fig10_grows_with_beta() {
        let t = fig10(PAPER_SEED, &[1.0, 2.0]);
        let c1: f64 = t.rows[0][1].parse().unwrap();
        let c2: f64 = t.rows[1][1].parse().unwrap();
        assert!(c2 > c1);
    }

    #[test]
    fn serial_and_threaded_runners_agree() {
        let serial = fig6_v_with(&ExperimentRunner::serial(), PAPER_SEED, &[0.25, 1.0], false);
        let threaded = fig6_v_with(&ExperimentRunner::new(4), PAPER_SEED, &[0.25, 1.0], false);
        assert_eq!(serial, threaded);
    }
}
