use serde::{Deserialize, Serialize};

/// A printable, serializable experiment result table (one per paper
/// figure / sub-figure).
///
/// # Examples
///
/// ```
/// use dpss_bench::FigureTable;
///
/// let mut t = FigureTable::new("Fig. X", &["V", "cost"]);
/// t.push_row(&["1", "34.5"]);
/// let shown = t.render();
/// assert!(shown.contains("Fig. X") && shown.contains("34.5"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FigureTable {
    /// Figure title (e.g. `"Fig. 6(a): time-average cost vs V"`).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows, same arity as `columns`.
    pub rows: Vec<Vec<String>>,
}

impl FigureTable {
    /// Creates an empty table with the given title and column headers.
    #[must_use]
    pub fn new(title: &str, columns: &[&str]) -> Self {
        FigureTable {
            title: title.to_owned(),
            columns: columns.iter().map(|&c| c.to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row arity does not match the header.
    pub fn push_row(&mut self, row: &[&str]) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(row.iter().map(|&c| c.to_owned()).collect());
    }

    /// Appends a row of already-owned cells.
    ///
    /// # Panics
    ///
    /// Panics if the row arity does not match the header.
    pub fn push_owned(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders the table as aligned plain text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = format!("{}\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.columns, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = FigureTable::new("title", &["a", "long-header"]);
        t.push_row(&["1", "2"]);
        t.push_owned(vec!["333".into(), "4".into()]);
        let s = t.render();
        assert!(s.starts_with("title\n"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5); // title, header, rule, 2 rows
                                    // All data lines are equally wide.
        assert_eq!(lines[1].len(), lines[3].len());
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = FigureTable::new("t", &["a", "b"]);
        t.push_row(&["only-one"]);
    }

    #[test]
    fn json_round_trip() {
        let mut t = FigureTable::new("t", &["x"]);
        t.push_row(&["1"]);
        let json = serde_json::to_string(&t).unwrap();
        let back: FigureTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
