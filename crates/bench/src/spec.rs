//! Declarative sweep descriptions: named axes × cells with deterministic
//! per-cell seed derivation.
//!
//! A [`SweepSpec`] names an experiment and its parameter axes; the cross
//! product of the axes' labels is the experiment's *cell grid*. Cells are
//! enumerated in row-major order (last axis fastest), so a cell index is
//! a stable identity no matter how the runner schedules the work, and
//! every cell derives its own RNG seed from the spec seed, the spec name
//! and its per-axis *coordinates* (not the flat index) — appending values
//! to any axis therefore never perturbs the seeds of the pre-existing
//! cells' scenario regenerations, only adds new ones.

/// One named parameter axis of a sweep (e.g. `V` over its grid).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Axis {
    name: String,
    labels: Vec<String>,
}

impl Axis {
    /// Creates an axis from pre-rendered labels.
    ///
    /// # Panics
    ///
    /// Panics if `labels` is empty (an empty axis would zero out the
    /// whole cell grid).
    #[must_use]
    pub fn new<S: Into<String>>(name: &str, labels: impl IntoIterator<Item = S>) -> Self {
        let labels: Vec<String> = labels.into_iter().map(Into::into).collect();
        assert!(!labels.is_empty(), "axis {name} needs at least one value");
        Axis {
            name: name.to_owned(),
            labels,
        }
    }

    /// Creates an axis over a numeric grid, using `{v}` display labels
    /// (the format the figure tables print).
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    #[must_use]
    pub fn from_f64s(name: &str, values: &[f64]) -> Self {
        Axis::new(name, values.iter().map(|v| format!("{v}")))
    }

    /// The axis name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The axis labels, in sweep order.
    #[must_use]
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Number of values on this axis.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the axis is empty (never true for a constructed axis).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// A declarative sweep: a name, a base seed, and the axes whose cross
/// product forms the cell grid.
///
/// # Examples
///
/// ```
/// use dpss_bench::{Axis, SweepSpec};
///
/// let spec = SweepSpec::new("fig6-v", 42)
///     .with_axis(Axis::from_f64s("V", &[0.1, 1.0, 5.0]))
///     .with_axis(Axis::new("market", ["tm", "rtm"]));
/// assert_eq!(spec.cells(), 6);
/// let cell = spec.cell(4);
/// assert_eq!(cell.coords, vec![2, 0]); // V = 5.0, market = "tm"
/// // Seeds are per-cell deterministic and distinct.
/// assert_ne!(spec.cell(0).seed, spec.cell(1).seed);
/// assert_eq!(spec.cell(0).seed, spec.cell(0).seed);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    name: String,
    seed: u64,
    axes: Vec<Axis>,
}

/// One unit of work of a sweep: its stable index in cell order, its
/// per-axis coordinates, and its derived RNG seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Stable index in row-major cell order (last axis fastest).
    pub index: usize,
    /// Per-axis value indices (`coords[k]` indexes axis `k`'s labels).
    pub coords: Vec<usize>,
    /// Deterministic seed derived from the spec seed, spec name and
    /// `index` — independent of thread scheduling.
    pub seed: u64,
}

impl SweepSpec {
    /// Creates a spec with no axes yet (a single cell).
    #[must_use]
    pub fn new(name: &str, seed: u64) -> Self {
        SweepSpec {
            name: name.to_owned(),
            seed,
            axes: Vec::new(),
        }
    }

    /// Appends an axis (builder style).
    #[must_use]
    pub fn with_axis(mut self, axis: Axis) -> Self {
        self.axes.push(axis);
        self
    }

    /// The spec name (also salts the per-cell seeds).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The base seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The axes, in declaration order.
    #[must_use]
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// Total number of cells (product of axis lengths; `1` with no axes).
    #[must_use]
    pub fn cells(&self) -> usize {
        self.axes.iter().map(Axis::len).product()
    }

    /// Materializes cell `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.cells()`.
    #[must_use]
    pub fn cell(&self, index: usize) -> Cell {
        assert!(index < self.cells(), "cell {index} out of range");
        let mut coords = vec![0usize; self.axes.len()];
        let mut rest = index;
        for (k, axis) in self.axes.iter().enumerate().rev() {
            // audit:allow(slice-index): k comes from enumerate over the axes that sized coords
            coords[k] = rest % axis.len();
            rest /= axis.len();
        }
        let seed = self.coords_seed(&coords);
        Cell {
            index,
            coords,
            seed,
        }
    }

    /// Deterministic per-cell seed for cell `index` (see
    /// [`coords_seed`](Self::coords_seed) for the derivation).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.cells()`.
    #[must_use]
    pub fn cell_seed(&self, index: usize) -> u64 {
        self.cell(index).seed
    }

    /// Deterministic per-cell seed: a `splitmix64` chain over the base
    /// seed, an FNV-1a hash of the spec name, and each axis coordinate
    /// in turn (the shared [`dpss_traces::seed`] primitives — the exact
    /// scheme `ScenarioPack` uses for variant/site seeds). Deriving from
    /// *coordinates* rather than the flat cell index is what makes axis
    /// appends non-perturbing: an existing cell keeps its coordinates —
    /// hence its seed — when any axis grows, while every new coordinate
    /// combination gets a fresh, well-spread seed.
    #[must_use]
    pub fn coords_seed(&self, coords: &[usize]) -> u64 {
        use dpss_traces::seed::{fnv1a, splitmix64};
        let mut z = splitmix64(self.seed ^ fnv1a(&self.name));
        for &c in coords {
            z = splitmix64(z ^ (c as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        }
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_enumerate_row_major_last_axis_fastest() {
        let spec = SweepSpec::new("s", 1)
            .with_axis(Axis::new("a", ["0", "1"]))
            .with_axis(Axis::new("b", ["x", "y", "z"]));
        assert_eq!(spec.cells(), 6);
        let coords: Vec<Vec<usize>> = (0..6).map(|i| spec.cell(i).coords).collect();
        assert_eq!(
            coords,
            vec![
                vec![0, 0],
                vec![0, 1],
                vec![0, 2],
                vec![1, 0],
                vec![1, 1],
                vec![1, 2]
            ]
        );
    }

    #[test]
    fn no_axes_means_one_cell() {
        let spec = SweepSpec::new("single", 7);
        assert_eq!(spec.cells(), 1);
        assert_eq!(spec.cell(0).coords, Vec::<usize>::new());
    }

    #[test]
    fn seeds_are_deterministic_and_spread() {
        let spec = SweepSpec::new("fig", 42).with_axis(Axis::from_f64s("v", &[1.0; 16]));
        let seeds: Vec<u64> = (0..16).map(|i| spec.cell_seed(i)).collect();
        let again: Vec<u64> = (0..16).map(|i| spec.cell_seed(i)).collect();
        assert_eq!(seeds, again);
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 16, "per-cell seeds must be distinct");
        // Name and base seed both salt the stream.
        assert_ne!(
            SweepSpec::new("fig", 43).cell_seed(0),
            SweepSpec::new("fig", 42).cell_seed(0)
        );
        assert_ne!(
            SweepSpec::new("gif", 42).cell_seed(0),
            SweepSpec::new("fig", 42).cell_seed(0)
        );
    }

    #[test]
    fn appending_axis_values_keeps_existing_cell_seeds() {
        let base = SweepSpec::new("fig", 42)
            .with_axis(Axis::new("a", ["0", "1"]))
            .with_axis(Axis::new("b", ["x", "y", "z"]));
        let grown = SweepSpec::new("fig", 42)
            .with_axis(Axis::new("a", ["0", "1", "2"]))
            .with_axis(Axis::new("b", ["x", "y", "z", "w"]));
        // Every pre-existing coordinate combination keeps its seed even
        // though its flat index shifted (e.g. (1,0): index 3 → 4).
        for i in 0..base.cells() {
            let cell = base.cell(i);
            assert_eq!(
                cell.seed,
                grown.coords_seed(&cell.coords),
                "coords {:?} must keep their seed across axis growth",
                cell.coords
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_cell_panics() {
        let _ = SweepSpec::new("s", 1).cell(1);
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn empty_axis_panics() {
        let _ = Axis::new("v", Vec::<String>::new());
    }
}
