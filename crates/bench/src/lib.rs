//! Experiment harness for the SmartDPSS evaluation (§VI): one computation
//! function per paper figure, shared by the `fig*` regenerator binaries,
//! the Criterion benches and the harness self-tests — plus the
//! [`packs`] module's scenario-pack and multi-datacenter sweeps.
//!
//! Every function takes a seed (all built-in artifacts use seed 42) and
//! returns a [`FigureTable`] whose rows mirror the series the paper plots.
//! Binaries print the table and also persist it as JSON under
//! `target/figures/` so downstream tooling can diff runs.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

// Bench policy: the harness only ever runs built-in worlds, so generator
// or engine failure is a programming error, not an experiment outcome —
// expects assert construction invariants and say which one.
// audit:allow-file(panic-unwrap): bench treats misconfiguration of built-in worlds as a programming error; every expect states its invariant

mod cache;
pub mod figures;
pub mod packs;
pub mod routing;
mod runner;
mod spec;
mod table;

pub use cache::{SweepCache, CACHE_SCHEMA_VERSION};
pub use packs::{
    lp_counts_row, pack_overview_with, pack_sweep, pack_sweep_with, pack_sweep_with_counts,
    topology_roster, topology_sweep_with, DispatchMode, FleetLpCounts, InterconnectMode,
    LP_COUNTS_COLUMNS,
};
pub use routing::{routing_interconnect, routing_outcomes, routing_sweep_with, RoutingOutcome};
pub use runner::ExperimentRunner;
pub use spec::{Axis, Cell, SweepSpec};
pub use table::FigureTable;

use dpss_core::{Impatient, OfflineConfig, OfflineOptimal, SmartDpss, SmartDpssConfig};
use dpss_sim::{Engine, RunReport, SimParams};
use dpss_traces::{Scenario, TraceSet};
use dpss_units::SlotClock;

/// Canonical seed for every artifact in the repository.
pub const PAPER_SEED: u64 = 42;

/// Generates the paper's one-month trace set for `seed`.
///
/// # Panics
///
/// Panics on generator misconfiguration (impossible for built-ins).
#[must_use]
pub fn paper_traces(seed: u64) -> TraceSet {
    dpss_traces::paper_month_traces(seed).expect("built-in scenario is valid")
}

/// Generates a trace set on an arbitrary calendar (the Fig. 6(c,d) `T`
/// sweep regenerates per calendar).
///
/// # Panics
///
/// Panics on generator misconfiguration (impossible for built-ins).
#[must_use]
pub fn traces_on(clock: &SlotClock, seed: u64) -> TraceSet {
    Scenario::icdcs13()
        .generate(clock, seed)
        .expect("built-in scenario is valid")
}

/// Builds the canonical experiment world: the paper's one-month traces
/// for `seed` under the §VI-A parameters. This is the shared setup every
/// figure cell starts from (the sweep axes then vary one knob at a time).
///
/// # Panics
///
/// Panics on generator misconfiguration (impossible for built-ins).
#[must_use]
pub fn setup(seed: u64) -> (Engine, SimParams) {
    let params = SimParams::icdcs13();
    (setup_with_params(seed, params), params)
}

/// [`setup`] with explicit parameters (e.g. a different UPS size).
///
/// # Panics
///
/// Panics on invalid parameters or generator misconfiguration.
#[must_use]
pub fn setup_with_params(seed: u64, params: SimParams) -> Engine {
    Engine::new(params, paper_traces(seed)).expect("valid engine")
}

/// Runs SmartDPSS with `config` on `engine`.
///
/// # Panics
///
/// Panics if the configuration is invalid or the run fails (the harness
/// treats those as programming errors, not experiment outcomes).
#[must_use]
pub fn run_smart(engine: &Engine, params: SimParams, config: SmartDpssConfig) -> RunReport {
    let mut ctl =
        SmartDpss::new(config, params, engine.truth().clock).expect("valid configuration");
    engine.run(&mut ctl).expect("run succeeds")
}

/// Runs the offline benchmark on `engine`.
///
/// # Panics
///
/// Panics if the run fails.
#[must_use]
pub fn run_offline(engine: &Engine, params: SimParams) -> RunReport {
    run_offline_with(engine, params, OfflineConfig::default())
}

/// [`run_offline`] with an explicit [`OfflineConfig`] — the long-frame
/// entry point: `T = 144` is only tractable with `warm_start: true` (and
/// a pivot budget), which the default config keeps off for
/// bit-reproducibility of the published tables.
///
/// # Panics
///
/// Panics if the configuration is invalid or the run fails.
#[must_use]
pub fn run_offline_with(engine: &Engine, params: SimParams, config: OfflineConfig) -> RunReport {
    let mut ctl = OfflineOptimal::with_config(params, engine.truth().clone(), config)
        .expect("valid configuration");
    engine.run(&mut ctl).expect("run succeeds")
}

/// Runs the Impatient baseline on `engine`.
///
/// # Panics
///
/// Panics if the run fails.
#[must_use]
pub fn run_impatient(engine: &Engine) -> RunReport {
    engine
        .run(&mut Impatient::two_markets())
        .expect("run succeeds")
}

/// Builds a frame-shaped LP — `t` slots × 7 variables with balance,
/// battery and queue recursions, the structure the offline benchmark
/// solves each coarse frame — with demands and real-time prices scaled
/// by `scale`. Shared by the `lp_solver` criterion bench and the
/// `bench_sweep` perf-artifact binary so cold-vs-warm numbers come from
/// the same instance family.
///
/// # Panics
///
/// Panics only on internal model-construction bugs.
#[must_use]
pub fn frame_shaped_lp(t: usize, scale: f64) -> dpss_lp::Problem {
    use dpss_lp::{Problem, Relation, Sense};
    let mut p = Problem::new(Sense::Minimize);
    let g = p.add_var("g", 0.0, 2.0, 35.0 * t as f64).unwrap();
    let mut prev_b = None;
    let mut prev_q = None;
    for i in 0..t {
        let grt = p
            .add_var(format!("grt{i}"), 0.0, 2.0, 45.0 * scale)
            .unwrap();
        let sdt = p
            .add_var(format!("sdt{i}"), 0.0, f64::INFINITY, 0.0)
            .unwrap();
        let brc = p.add_var(format!("brc{i}"), 0.0, 0.5, 0.2).unwrap();
        let bdc = p.add_var(format!("bdc{i}"), 0.0, 0.5, 0.2).unwrap();
        let w = p.add_var(format!("w{i}"), 0.0, f64::INFINITY, 1.0).unwrap();
        let b = p.add_var(format!("b{i}"), 0.03, 0.5, 0.0).unwrap();
        let q = p.add_var(format!("q{i}"), 0.0, f64::INFINITY, 0.0).unwrap();
        let demand = (0.8 + 0.3 * (i as f64 * 0.7).sin()) * scale;
        p.add_constraint(
            &[
                (g, 1.0),
                (grt, 1.0),
                (bdc, 1.0),
                (brc, -1.0),
                (sdt, -1.0),
                (w, -1.0),
            ],
            Relation::Eq,
            demand,
        )
        .unwrap();
        match prev_b {
            None => p
                .add_constraint(&[(b, 1.0), (brc, -0.8), (bdc, 1.25)], Relation::Eq, 0.25)
                .unwrap(),
            Some(pb) => p
                .add_constraint(
                    &[(b, 1.0), (pb, -1.0), (brc, -0.8), (bdc, 1.25)],
                    Relation::Eq,
                    0.0,
                )
                .unwrap(),
        };
        match prev_q {
            None => p
                .add_constraint(&[(q, 1.0), (sdt, 1.0)], Relation::Eq, 0.4)
                .unwrap(),
            Some(pq) => p
                .add_constraint(&[(q, 1.0), (pq, -1.0), (sdt, 1.0)], Relation::Eq, 0.4)
                .unwrap(),
        };
        prev_b = Some(b);
        prev_q = Some(q);
    }
    // Serve everything by the frame end.
    if let Some(q) = prev_q {
        p.add_constraint(&[(q, 1.0)], Relation::Le, 0.4).unwrap();
    }
    p
}

/// Builds an [`ExperimentRunner`] from a report binary's command line:
/// `--threads N` selects the worker budget (`0` or absent = all cores).
/// Unknown flags are ignored so binaries can layer their own.
#[must_use]
pub fn runner_from_env_args() -> ExperimentRunner {
    let mut threads = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--threads" {
            if let Some(v) = args.next() {
                threads = v.parse().unwrap_or(0);
            }
        }
    }
    ExperimentRunner::new(threads)
}

/// Writes a figure table as JSON under `target/figures/<name>.json`
/// (best-effort: failures to create the directory are reported, not fatal,
/// so the binaries still print their tables on read-only filesystems).
pub fn persist(table: &FigureTable, name: &str) {
    let dir = std::path::Path::new("target/figures");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("note: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(table) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("note: cannot write {}: {e}", path.display());
            } else {
                eprintln!("wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("note: cannot serialize {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_traces_are_the_month() {
        let t = paper_traces(PAPER_SEED);
        assert_eq!(t.clock.total_slots(), 744);
    }

    #[test]
    fn harness_runs_all_policies() {
        let clock = SlotClock::new(2, 24, 1.0).unwrap();
        let traces = traces_on(&clock, 1);
        let params = SimParams::icdcs13();
        let engine = Engine::new(params, traces).unwrap();
        let s = run_smart(&engine, params, SmartDpssConfig::icdcs13());
        let o = run_offline(&engine, params);
        let i = run_impatient(&engine);
        assert_eq!(s.controller, "smart-dpss");
        assert_eq!(o.controller, "offline");
        assert_eq!(i.controller, "impatient");
    }
}
