//! Experiment harness for the SmartDPSS evaluation (§VI): one computation
//! function per paper figure, shared by the `fig*` regenerator binaries,
//! the Criterion benches and the harness self-tests.
//!
//! Every function takes a seed (all built-in artifacts use seed 42) and
//! returns a [`FigureTable`] whose rows mirror the series the paper plots.
//! Binaries print the table and also persist it as JSON under
//! `target/figures/` so downstream tooling can diff runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
mod table;

pub use table::FigureTable;

use dpss_core::{Impatient, OfflineOptimal, SmartDpss, SmartDpssConfig};
use dpss_sim::{Engine, RunReport, SimParams};
use dpss_traces::{Scenario, TraceSet};
use dpss_units::SlotClock;

/// Canonical seed for every artifact in the repository.
pub const PAPER_SEED: u64 = 42;

/// Generates the paper's one-month trace set for `seed`.
///
/// # Panics
///
/// Panics on generator misconfiguration (impossible for built-ins).
#[must_use]
pub fn paper_traces(seed: u64) -> TraceSet {
    dpss_traces::paper_month_traces(seed).expect("built-in scenario is valid")
}

/// Generates a trace set on an arbitrary calendar (the Fig. 6(c,d) `T`
/// sweep regenerates per calendar).
///
/// # Panics
///
/// Panics on generator misconfiguration (impossible for built-ins).
#[must_use]
pub fn traces_on(clock: &SlotClock, seed: u64) -> TraceSet {
    Scenario::icdcs13()
        .generate(clock, seed)
        .expect("built-in scenario is valid")
}

/// Runs SmartDPSS with `config` on `engine`.
///
/// # Panics
///
/// Panics if the configuration is invalid or the run fails (the harness
/// treats those as programming errors, not experiment outcomes).
#[must_use]
pub fn run_smart(engine: &Engine, params: SimParams, config: SmartDpssConfig) -> RunReport {
    let mut ctl =
        SmartDpss::new(config, params, engine.truth().clock).expect("valid configuration");
    engine.run(&mut ctl).expect("run succeeds")
}

/// Runs the offline benchmark on `engine`.
///
/// # Panics
///
/// Panics if the run fails.
#[must_use]
pub fn run_offline(engine: &Engine, params: SimParams) -> RunReport {
    let mut ctl = OfflineOptimal::new(params, engine.truth().clone()).expect("valid configuration");
    engine.run(&mut ctl).expect("run succeeds")
}

/// Runs the Impatient baseline on `engine`.
///
/// # Panics
///
/// Panics if the run fails.
#[must_use]
pub fn run_impatient(engine: &Engine) -> RunReport {
    engine
        .run(&mut Impatient::two_markets())
        .expect("run succeeds")
}

/// Writes a figure table as JSON under `target/figures/<name>.json`
/// (best-effort: failures to create the directory are reported, not fatal,
/// so the binaries still print their tables on read-only filesystems).
pub fn persist(table: &FigureTable, name: &str) {
    let dir = std::path::Path::new("target/figures");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("note: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(table) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("note: cannot write {}: {e}", path.display());
            } else {
                eprintln!("wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("note: cannot serialize {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_traces_are_the_month() {
        let t = paper_traces(PAPER_SEED);
        assert_eq!(t.clock.total_slots(), 744);
    }

    #[test]
    fn harness_runs_all_policies() {
        let clock = SlotClock::new(2, 24, 1.0).unwrap();
        let traces = traces_on(&clock, 1);
        let params = SimParams::icdcs13();
        let engine = Engine::new(params, traces).unwrap();
        let s = run_smart(&engine, params, SmartDpssConfig::icdcs13());
        let o = run_offline(&engine, params);
        let i = run_impatient(&engine);
        assert_eq!(s.controller, "smart-dpss");
        assert_eq!(o.controller, "offline");
        assert_eq!(i.controller, "impatient");
    }
}
