//! The experiment runner: fans a [`SweepSpec`]'s cells out across scoped
//! worker threads and collects results in deterministic cell order.
//!
//! Workers pull cell indices from a shared atomic counter, so scheduling
//! is work-stealing-ish and utilization stays high even when cell costs
//! vary by an order of magnitude (an offline-benchmark cell next to an
//! Impatient cell). Results land in a per-cell slot keyed by index, so
//! the output order — and therefore every figure table — is identical for
//! any thread count, including `1` (which runs inline on the caller's
//! thread with zero scheduling overhead).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::cache::SweepCache;
use crate::spec::{Cell, SweepSpec};
use crate::FigureTable;

/// Executes sweeps over a fixed worker-thread budget.
///
/// # Examples
///
/// ```
/// use dpss_bench::{Axis, ExperimentRunner, SweepSpec};
///
/// let spec = SweepSpec::new("squares", 0).with_axis(Axis::from_f64s("x", &[1.0, 2.0, 3.0]));
/// let serial = ExperimentRunner::serial().run_cells(&spec, |c| c.index * c.index);
/// let threaded = ExperimentRunner::new(8).run_cells(&spec, |c| c.index * c.index);
/// assert_eq!(serial, vec![0, 1, 4]);
/// assert_eq!(serial, threaded); // deterministic regardless of scheduling
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentRunner {
    threads: usize,
}

impl Default for ExperimentRunner {
    /// A runner sized to the machine's available parallelism.
    fn default() -> Self {
        ExperimentRunner::new(0)
    }
}

impl ExperimentRunner {
    /// Creates a runner with an explicit worker budget; `0` means "use
    /// the machine's available parallelism".
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            threads
        };
        ExperimentRunner { threads }
    }

    /// A single-threaded runner (cells run inline, in order).
    #[must_use]
    pub fn serial() -> Self {
        ExperimentRunner { threads: 1 }
    }

    /// The worker budget this runner was built with.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` once per cell and returns the results in cell order,
    /// regardless of which worker computed what when.
    ///
    /// # Panics
    ///
    /// Propagates panics from `f` (the scope joins all workers first).
    pub fn run_cells<R, F>(&self, spec: &SweepSpec, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Cell) -> R + Sync,
    {
        let n = spec.cells();
        let workers = self.threads.min(n).max(1);
        if workers == 1 {
            return (0..n).map(|i| f(&spec.cell(i))).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let out = f(&spec.cell(i));
                    // audit:allow(slice-index): i < n guards the claim above and slots has n entries
                    // audit:allow(panic-unwrap): a poisoned slot means a sibling worker already panicked
                    *slots[i].lock().expect("result slot poisoned") = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.into_inner()
                    // audit:allow(panic-unwrap): a poisoned slot means a worker already panicked
                    .expect("result slot poisoned")
                    // audit:allow(panic-explicit): the claim loop covers 0..n, so an empty slot is a scheduler bug
                    .unwrap_or_else(|| panic!("cell {i} produced no result"))
            })
            .collect()
    }

    /// [`run_cells`](Self::run_cells) through a [`SweepCache`]: cells
    /// whose content key already has a stored result are served from
    /// disk, only the misses are computed (fanned out over the worker
    /// budget exactly like an uncached run), and every fresh result is
    /// stored for the next run. Output is in cell order and — because a
    /// hit is the JSON round-trip of what `f` returned when the file was
    /// written — equal to the uncached run for any hit/miss split.
    ///
    /// # Panics
    ///
    /// Propagates panics from `f`.
    pub fn run_cells_cached<R, F>(&self, spec: &SweepSpec, cache: &SweepCache, f: F) -> Vec<R>
    where
        R: serde::Serialize + serde::Deserialize + Send,
        F: Fn(&Cell) -> R + Sync,
    {
        let n = spec.cells();
        let mut out: Vec<Option<R>> = (0..n).map(|i| cache.load(spec, i)).collect();
        let missing: Vec<usize> = out
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.is_none().then_some(i))
            .collect();
        let workers = self.threads.min(missing.len()).max(1);
        if workers == 1 {
            for &i in &missing {
                let v = f(&spec.cell(i));
                cache.store(spec, i, &v);
                // audit:allow(slice-index): miss indices come from enumerating `out`
                out[i] = Some(v);
            }
        } else {
            let next = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<R>>> =
                (0..missing.len()).map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= missing.len() {
                            break;
                        }
                        // audit:allow(slice-index): k < missing.len() guards the claim and slots matches it
                        let i = missing[k];
                        let v = f(&spec.cell(i));
                        cache.store(spec, i, &v);
                        // audit:allow(slice-index): k < missing.len() guards the claim and slots matches it
                        // audit:allow(panic-unwrap): a poisoned slot means a sibling worker already panicked
                        *slots[k].lock().expect("result slot poisoned") = Some(v);
                    });
                }
            });
            for (k, slot) in slots.into_iter().enumerate() {
                // audit:allow(slice-index): slots and missing have equal length
                let i = missing[k];
                let v = slot
                    .into_inner()
                    // audit:allow(panic-unwrap): a poisoned slot means a worker already panicked
                    .expect("result slot poisoned")
                    // audit:allow(panic-explicit): the claim loop covers every miss, so an empty slot is a scheduler bug
                    .unwrap_or_else(|| panic!("cell {i} produced no result"));
                // audit:allow(slice-index): miss indices come from enumerating `out`
                out[i] = Some(v);
            }
        }
        out.into_iter()
            .enumerate()
            // audit:allow(panic-explicit): every index was either a hit or computed above
            .map(|(i, r)| r.unwrap_or_else(|| panic!("cell {i} produced no result")))
            .collect()
    }

    /// Runs `f` once per cell, where each cell yields zero or more table
    /// rows, and stitches the rows into a [`FigureTable`] in cell order.
    ///
    /// # Panics
    ///
    /// Propagates panics from `f`; panics if a row's arity does not match
    /// `columns`.
    pub fn run_table<F>(&self, spec: &SweepSpec, title: &str, columns: &[&str], f: F) -> FigureTable
    where
        F: Fn(&Cell) -> Vec<Vec<String>> + Sync,
    {
        let mut table = FigureTable::new(title, columns);
        for rows in self.run_cells(spec, f) {
            for row in rows {
                table.push_owned(row);
            }
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Axis;
    use std::sync::atomic::AtomicUsize;

    fn spec(n: usize) -> SweepSpec {
        SweepSpec::new("t", 9).with_axis(Axis::new(
            "i",
            (0..n).map(|i| i.to_string()).collect::<Vec<_>>(),
        ))
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        assert!(ExperimentRunner::new(0).threads() >= 1);
        assert_eq!(ExperimentRunner::new(3).threads(), 3);
        assert_eq!(ExperimentRunner::serial().threads(), 1);
    }

    #[test]
    fn results_are_in_cell_order_for_any_thread_count() {
        let s = spec(23);
        let expect: Vec<usize> = (0..23).collect();
        for threads in [1, 2, 5, 16] {
            let got = ExperimentRunner::new(threads).run_cells(&s, |c| c.index);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn every_cell_runs_exactly_once() {
        let s = spec(40);
        let count = AtomicUsize::new(0);
        let got = ExperimentRunner::new(4).run_cells(&s, |c| {
            count.fetch_add(1, Ordering::Relaxed);
            c.seed
        });
        assert_eq!(count.load(Ordering::Relaxed), 40);
        let serial = ExperimentRunner::serial().run_cells(&s, |c| c.seed);
        assert_eq!(got, serial);
    }

    #[test]
    fn run_table_stitches_rows_in_cell_order() {
        let s = spec(4);
        let t = ExperimentRunner::new(2).run_table(&s, "title", &["cell", "twice"], |c| {
            // Variable row counts per cell must still stitch in order.
            (0..=c.index.min(1))
                .map(|k| vec![format!("{}", c.index), format!("{}", 2 * c.index + k)])
                .collect()
        });
        assert_eq!(t.rows.len(), 1 + 2 + 2 + 2);
        assert_eq!(t.rows[0], vec!["0", "0"]);
        assert_eq!(t.rows[1], vec!["1", "2"]);
        assert_eq!(t.rows[2], vec!["1", "3"]);
        assert_eq!(t.rows[6], vec!["3", "7"]);
    }

    #[test]
    fn more_threads_than_cells_is_fine() {
        let s = spec(2);
        let got = ExperimentRunner::new(64).run_cells(&s, |c| c.index);
        assert_eq!(got, vec![0, 1]);
    }
}
