//! Regenerates Fig. 9: the impact of uniform ±50% estimation errors on
//! the operation-cost reduction (relative to Impatient), across `V`.

use dpss_bench::{figures, persist, PAPER_SEED};

fn main() {
    let runner = dpss_bench::runner_from_env_args();
    let table = figures::fig9_with(&runner, PAPER_SEED, 0.5, &figures::FIG6_V_GRID);
    table.print();
    persist(&table, "fig9");
    println!(
        "expected shape: the delta column stays within a few percentage \
         points for every V (the paper reports [−1.6%, +2.1%])."
    );
}
