//! Regenerates Fig. 5: the one-month input traces (demand, solar,
//! electricity prices), printed as a per-day summary and exported as a
//! full per-slot CSV under `target/figures/fig5_traces.csv`.

use dpss_bench::{figures, persist, PAPER_SEED};

fn main() {
    let runner = dpss_bench::runner_from_env_args();
    let (table, csv) = figures::fig5_with(&runner, PAPER_SEED);
    table.print();
    persist(&table, "fig5");
    let path = "target/figures/fig5_traces.csv";
    if std::fs::create_dir_all("target/figures").is_ok() && std::fs::write(path, csv).is_ok() {
        eprintln!("wrote {path}");
    }
}
