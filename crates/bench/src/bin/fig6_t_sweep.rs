//! Regenerates Fig. 6(c,d): cost and delay vs the coarse-frame length `T`
//! (3 hours to 6 days), horizon held at ~744 hourly slots.
//!
//! The offline benchmark's frame LP grows ~quadratically with `T`, so it
//! is reported up to `T = 48` (the paper's trend statements concern
//! SmartDPSS).

use dpss_bench::{figures, persist, PAPER_SEED};

fn main() {
    let runner = dpss_bench::runner_from_env_args();
    let table = figures::fig6_t_with(&runner, PAPER_SEED, &figures::FIG6_T_GRID, 48);
    table.print();
    persist(&table, "fig6_t");
    println!(
        "expected shape: cost roughly flat in T (paper band −3.65%..+6.23%); \
         delay decreases as T grows."
    );
}
