//! Regenerates Fig. 8: DPSS operation cost at various renewable
//! penetration levels and demand-variation intensities.

use dpss_bench::{figures, persist, PAPER_SEED};

fn main() {
    let runner = dpss_bench::runner_from_env_args();
    let (pen, var) = figures::fig8_with(
        &runner,
        PAPER_SEED,
        &figures::FIG8_PENETRATION_GRID,
        &figures::FIG8_VARIATION_GRID,
    );
    pen.print();
    persist(&pen, "fig8_penetration");
    var.print();
    persist(&var, "fig8_variation");
    println!(
        "expected shape: cost falls steeply with penetration (renewables \
         are free at the margin); cost rises mildly with demand variation."
    );
}
