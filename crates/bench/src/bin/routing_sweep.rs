//! Regenerates the workload-routing artifact: the off vs co-optimized
//! comparison table for one pack (default `traffic-wave` — the pack
//! whose traces carry request-arrival streams) over the lossy wheeled
//! ring, the acceptance topology. CI uploads the persisted JSON and
//! checks the flash-crowd saving stays non-negative.
//!
//! ```text
//! routing_sweep [--pack NAME] [--sites N] [--threads N]
//! ```

use std::process::ExitCode;

use dpss_bench::{packs, persist, routing, PAPER_SEED};
use dpss_sim::RoutingConfig;

fn main() -> ExitCode {
    let mut pack_name = "traffic-wave".to_owned();
    let mut sites = 3usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--pack" => pack_name = args.next().unwrap_or_default(),
            "--sites" => {
                let v = args.next().unwrap_or_default();
                match v.parse::<usize>() {
                    Ok(n) if n >= 2 => sites = n,
                    _ => {
                        eprintln!(
                            "routing_sweep: --sites needs an integer >= 2 (a ring), got {v:?}"
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
            _ => {} // --threads is consumed by runner_from_env_args
        }
    }
    let pack = match packs::lookup_builtin(&pack_name) {
        Ok(pack) => pack,
        Err(message) => {
            eprintln!("routing_sweep: {message}");
            return ExitCode::FAILURE;
        }
    };

    let runner = dpss_bench::runner_from_env_args();
    let table = routing::routing_sweep_with(
        &runner,
        PAPER_SEED,
        &pack,
        sites,
        &routing::routing_interconnect(sites),
        RoutingConfig::icdcs13(),
    );
    table.print();
    persist(&table, "routing_sweep");
    ExitCode::SUCCESS
}
