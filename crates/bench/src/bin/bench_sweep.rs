//! `bench_sweep` — the perf-trajectory artifact behind `BENCH_sweep.json`.
//!
//! Measures three things and asserts correctness along the way:
//!
//! 1. **Sweep throughput**: the Fig. 6 V-sweep end-to-end on one thread
//!    vs `--threads N` (default 4), in cells/sec. The two tables must be
//!    identical (the threaded-determinism contract) or the binary exits
//!    nonzero.
//! 2. **Warm vs cold LP solves**: a stream of frame-shaped LPs through a
//!    persistent [`LpWorkspace`] vs fresh cold solves.
//! 3. **Warm vs cold offline controller**: the full-month offline
//!    benchmark with frame-to-frame warm starts on vs off.
//! 4. **Offline benchmark at scale**: the Fig. 6(c,d) `T = 144` cell
//!    (frame LPs of ~1k rows) with `warm_start: true` and a revised
//!    pivot budget — the column the default figure skips. The binary
//!    asserts the offline column actually populates and records its
//!    wall time.
//! 5. **Dispatch-mode price tags**: one contention month through
//!    post-hoc, planned and coordinated dispatch.
//! 6. **Fleet scaling curve**: the coordinated month at 8–100 ring
//!    sites in three configurations — dense simplex + serial stepping,
//!    network simplex + serial, network simplex + threaded — the
//!    sites-vs-wall-clock evidence behind the fleet-scale work. The
//!    large-fleet axis (256 and 512 ring sites) runs on the factorized
//!    network kernel only — the dense baseline is exactly what those
//!    sizes retire — and the kernel's telemetry (pivots, eta lengths,
//!    refactorizations, scratch peaks, ns/solve) is emitted per point
//!    as the `solver_stats.json` artifact next to `--out`.
//! 7. **Sweep cache**: a cold pass over a scratch `SweepCache` vs the
//!    warm rerun; the binary exits nonzero unless warm is ≥5× faster
//!    with byte-identical results.
//! 8. **Serve replay throughput**: one recorded month driven tick by
//!    tick through the `dpss-serve` request loop (parse → engine resume
//!    → step → respond), asserted byte-equal to the batch golden, plus
//!    the snapshot write/restore round-trip.
//!
//! ```text
//! bench_sweep [--out PATH] [--threads N] [--iters K]
//! ```

// audit:allow-file(wall-clock): this binary exists to measure wall-clock performance; timings are reported, never fed back into results

use std::process::ExitCode;
use std::time::Instant;

use dpss_bench::{figures, frame_shaped_lp, ExperimentRunner, PAPER_SEED};
use dpss_core::{OfflineConfig, OfflineOptimal};
use dpss_lp::LpWorkspace;
use dpss_sim::{Engine, SimParams};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct BenchSweepReport {
    generated_by: &'static str,
    /// Worker budget of the threaded measurements.
    threads: usize,
    /// CPUs visible to this process — the hard ceiling on any threaded
    /// speedup. On a single-CPU container the `*_speedup` fields can
    /// only show scheduling overhead; read them together with this.
    host_cpus: usize,
    fig6_cells: usize,
    fig6_serial_ms: f64,
    fig6_threaded_ms: f64,
    fig6_speedup: f64,
    cells_per_sec_serial: f64,
    cells_per_sec_threaded: f64,
    /// A denser (64-point) Fig. 6 V-grid without the offline baseline:
    /// the pure sweep-throughput view, free of the one long
    /// sequential-by-nature offline cell that Amdahl-bounds the full
    /// figure.
    dense_v_cells: usize,
    dense_v_serial_ms: f64,
    dense_v_threaded_ms: f64,
    dense_v_speedup: f64,
    lp_cold_us_per_solve: f64,
    lp_warm_us_per_solve: f64,
    lp_warm_speedup: f64,
    offline_cold_ms: f64,
    offline_warm_ms: f64,
    offline_warm_speedup: f64,
    /// Wall time of the whole Fig. 6(c,d) `T = 144` cell (SmartDPSS +
    /// the offline benchmark on the 5-frame calendar) with warm starts
    /// and the revised pivot budget below. The offline column of that
    /// row is asserted populated before this is recorded.
    offline_t144_warm_ms: f64,
    /// The revised per-frame pivot budget the `T = 144` run used.
    offline_t144_pivot_budget: usize,
    /// The populated offline `$/slot` cell of the `T = 144` row.
    offline_t144_cost_per_slot: f64,
    /// Wall time of one 3-site price-spike/stressed month in each
    /// dispatch mode (lossy ring): post-hoc = run + greedy settle,
    /// planned = run + per-frame flow LPs, coordinated = the
    /// frame-synchronous lockstep loop with prospective directives. The
    /// coordinated premium over planned is the price of closing the
    /// loop.
    dispatch_posthoc_ms: f64,
    dispatch_planned_ms: f64,
    dispatch_coordinated_ms: f64,
    /// Fleet dollars the coordinated run saved against the planned
    /// settlement on that month (positive = coordination won).
    dispatch_coordinated_saving: f64,
    /// Wall time of one 3-site flash-crowd month (traffic-wave pack,
    /// lossy ring) with routing off: the coordinated fleet run plus the
    /// serve-on-arrival workload bill.
    routing_off_ms: f64,
    /// The same month with routing co-optimized: the coordinated run
    /// wrapped by the workload router (absorption/migration LP per frame
    /// plus the deferral scan). The premium over `routing_off_ms` is the
    /// request layer's price tag.
    routing_coopt_ms: f64,
    /// Fleet dollars co-optimized routing saved against serve-on-arrival
    /// on that month. The deferral rule is structurally dominant, so the
    /// binary exits nonzero if this ever goes negative.
    routing_coopt_saving: f64,
    /// Site counts of the fleet-scaling curve: one coordinated
    /// price-spike/stressed month on the lossy ring per count, in three
    /// configurations (the three `fleet_scaling_*_ms` series below).
    fleet_scaling_sites: Vec<usize>,
    /// Dense simplex settlement + serial site stepping — the pre-scaling
    /// baseline.
    fleet_scaling_serial_ms: Vec<f64>,
    /// Sparse network simplex settlement, still serial stepping — the
    /// solver win alone.
    fleet_scaling_network_lp_ms: Vec<f64>,
    /// Network simplex + `--threads N` within-frame stepping — the full
    /// fleet-scale path.
    fleet_scaling_parallel_ms: Vec<f64>,
    /// One coordinated 256-site ring month on the factorized network
    /// kernel, serial stepping.
    fleet_scaling_256_network_ms: f64,
    /// The same 256-site month with threaded within-frame stepping.
    fleet_scaling_256_parallel_ms: f64,
    /// One coordinated 512-site ring month, network kernel, serial.
    fleet_scaling_512_network_ms: f64,
    /// The same 512-site month with threaded stepping — the headline
    /// large-fleet number (also gated by the release smoke test).
    fleet_scaling_512_parallel_ms: f64,
    /// Eta-file rebuilds per kernel solve on the 100-site network month
    /// — the drift-control telemetry. Near zero means warm bases resume
    /// without pivoting; large values mean the eta cap or the
    /// small-pivot guard is doing heavy lifting.
    solver_refactor_rate: f64,
    /// Cells of the sweep-cache measurement (full month runs each).
    sweep_cache_cells: usize,
    /// First pass over an empty `target/sweep_cache_bench`: every cell
    /// computes and is persisted.
    sweep_cache_cold_ms: f64,
    /// Second pass over the same cache: every cell loads from disk. The
    /// binary exits nonzero unless this is ≥5× faster than cold and the
    /// results are byte-identical.
    sweep_cache_warm_ms: f64,
    sweep_cache_speedup: f64,
    /// Frames of the recorded month replayed through the serve loop.
    serve_replay_ticks: usize,
    /// Wall time of one full replay: NDJSON parse, engine resume, frame
    /// step and response serialization per tick. The final report is
    /// asserted byte-equal to the batch golden before this is recorded.
    serve_replay_ms: f64,
    /// Streaming throughput of the serve loop, in ticks (frames) per
    /// second.
    serve_replay_ticks_per_sec: f64,
    /// One mid-month snapshot write (serialize, checksum, tmp+rename)
    /// plus a full `--resume` restore (scan, verify, reconstruct).
    serve_snapshot_roundtrip_ms: f64,
}

fn best_of<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() -> ExitCode {
    let mut out = "BENCH_sweep.json".to_owned();
    let mut threads = 4usize;
    let mut iters = 5usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = args.next().unwrap_or(out),
            "--threads" => threads = args.next().and_then(|v| v.parse().ok()).unwrap_or(threads),
            "--iters" => iters = args.next().and_then(|v| v.parse().ok()).unwrap_or(iters),
            other => {
                eprintln!("bench_sweep: error: unknown flag {other}");
                return ExitCode::from(2);
            }
        }
    }

    // ---- 1. Fig. 6 V-sweep: serial vs threaded. -------------------------
    let serial = ExperimentRunner::serial();
    let threaded = ExperimentRunner::new(threads);
    let grid = figures::FIG6_V_GRID;
    // +2 cells: the offline and Impatient baselines run in the same sweep.
    let cells = grid.len() + 2;
    // Warm both paths once and check determinism on the real artifacts.
    let table_serial = figures::fig6_v_with(&serial, PAPER_SEED, &grid, true);
    let table_threaded = figures::fig6_v_with(&threaded, PAPER_SEED, &grid, true);
    if table_serial != table_threaded {
        eprintln!("bench_sweep: error: threads=1 and threads={threads} tables differ");
        return ExitCode::FAILURE;
    }
    let serial_s = best_of(iters, || {
        let _ = figures::fig6_v_with(&serial, PAPER_SEED, &grid, true);
    });
    let threaded_s = best_of(iters, || {
        let _ = figures::fig6_v_with(&threaded, PAPER_SEED, &grid, true);
    });

    // Dense V-grid (the sweep-throughput view; no offline baseline).
    let dense: Vec<f64> = (0..64).map(|i| 0.05 + 0.08 * f64::from(i)).collect();
    if figures::fig6_v_with(&serial, PAPER_SEED, &dense, false)
        != figures::fig6_v_with(&threaded, PAPER_SEED, &dense, false)
    {
        eprintln!("bench_sweep: error: dense sweep not thread-deterministic");
        return ExitCode::FAILURE;
    }
    let dense_serial_s = best_of(iters, || {
        let _ = figures::fig6_v_with(&serial, PAPER_SEED, &dense, false);
    });
    let dense_threaded_s = best_of(iters, || {
        let _ = figures::fig6_v_with(&threaded, PAPER_SEED, &dense, false);
    });

    // ---- 2. Warm vs cold LP streams. ------------------------------------
    let frames: Vec<_> = (0..16)
        .map(|k| frame_shaped_lp(24, 1.0 + 0.02 * f64::from(k)))
        .collect();
    let lp_cold_s = best_of(iters, || {
        for p in &frames {
            let _ = p.solve().expect("frame LP solves");
        }
    });
    let lp_warm_s = best_of(iters, || {
        let mut ws = LpWorkspace::new();
        for p in &frames {
            let _ = p.solve_with(&mut ws).expect("frame LP solves");
        }
    });

    // ---- 3. Offline controller, warm starts on vs off. ------------------
    let params = SimParams::icdcs13();
    let truth = dpss_bench::paper_traces(PAPER_SEED);
    let engine = Engine::new(params, truth.clone()).expect("valid engine");
    let offline_time = |warm: bool| {
        best_of(iters.max(2), || {
            let config = OfflineConfig {
                warm_start: warm,
                ..OfflineConfig::default()
            };
            let mut ctl =
                OfflineOptimal::with_config(params, truth.clone(), config).expect("valid config");
            let _ = engine.run(&mut ctl).expect("run succeeds");
        })
    };
    let offline_cold_s = offline_time(false);
    let offline_warm_s = offline_time(true);

    // ---- 4. Offline benchmark at scale: the T = 144 column. -------------
    // Warm starts carry the ~1k-row frame basis across the 5 frames; the
    // revised budget is ~6× a measured clean solve, so a pathological
    // frame fails fast into the controller's fallback instead of burning
    // the ~500k-pivot solver default.
    let t144_budget = 40_000usize;
    let t144_config = OfflineConfig {
        warm_start: true,
        frame_pivot_budget: Some(t144_budget),
        ..OfflineConfig::default()
    };
    let t144_start = Instant::now();
    let t144_table = figures::fig6_t_offline_with(&serial, PAPER_SEED, &[144], 144, t144_config);
    let t144_s = t144_start.elapsed().as_secs_f64();
    let offline_cell = &t144_table.rows[0][4];
    let t144_cost: f64 = match offline_cell.parse() {
        Ok(cost) => cost,
        Err(_) => {
            eprintln!("bench_sweep: error: T=144 offline column not populated: {offline_cell:?}");
            return ExitCode::FAILURE;
        }
    };

    // ---- 5. Dispatch modes: the frame-synchronous loop's price tag. -----
    // One contention month (price-spike/stressed, 3 sites, lossy ring)
    // through all three dispatch modes.
    use dpss_core::{FleetPlanner, SmartDpss, SmartDpssConfig};
    use dpss_sim::{Controller, Interconnect, MultiSiteEngine};
    use dpss_units::{Energy, Price, SlotClock};
    let clock = SlotClock::icdcs13_month();
    let pack = dpss_traces::ScenarioPack::builtin("price-spike").expect("built-in pack");
    let stressed = 3usize; // variant index of "stressed"
    let engines: Vec<Engine> = (0..3)
        .map(|s| {
            Engine::new(
                params,
                pack.generate_site(&clock, PAPER_SEED, stressed, s)
                    .expect("built-in pack generates valid traces"),
            )
            .expect("valid engine")
        })
        .collect();
    let ring = Interconnect::ring(3, Energy::from_mwh(2.0))
        .expect("valid ring")
        .with_uniform_loss(0.05)
        .expect("valid loss")
        .with_uniform_wheeling(Price::from_dollars_per_mwh(2.0))
        .expect("valid wheeling");
    let fleet = MultiSiteEngine::new(engines)
        .expect("sites share the calendar")
        .with_interconnect(ring)
        .expect("ring spans the roster");
    let smart_boxes = || -> Vec<Box<dyn Controller>> {
        (0..3)
            .map(|_| {
                Box::new(
                    SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock)
                        .expect("valid configuration"),
                ) as Box<dyn Controller>
            })
            .collect()
    };
    let timed_iters = iters.clamp(2, 3);
    let dispatch_posthoc_s = best_of(timed_iters, || {
        let _ = fleet.run(&mut smart_boxes()).expect("fleet run succeeds");
    });
    let dispatch_planned_s = best_of(timed_iters, || {
        let mut planner = FleetPlanner::for_engine(&fleet);
        let _ = fleet
            .run_with(&mut smart_boxes(), &mut planner)
            .expect("fleet run succeeds");
    });
    let dispatch_coordinated_s = best_of(timed_iters, || {
        let mut planner = FleetPlanner::for_engine(&fleet).with_coordination(true);
        let _ = fleet
            .run_with(&mut smart_boxes(), &mut planner)
            .expect("fleet run succeeds");
    });
    let planned_cost = {
        let mut planner = FleetPlanner::for_engine(&fleet);
        fleet
            .run_with(&mut smart_boxes(), &mut planner)
            .expect("fleet run succeeds")
            .total_cost()
    };
    let coordinated_cost = {
        let mut planner = FleetPlanner::for_engine(&fleet).with_coordination(true);
        fleet
            .run_with(&mut smart_boxes(), &mut planner)
            .expect("fleet run succeeds")
            .total_cost()
    };

    // ---- 5b. Workload routing: the request layer's price tag. -----------
    // One 3-site flash-crowd month (traffic-wave pack, lossy ring) with
    // routing off (coordinated dispatch + serve-on-arrival billing) vs
    // co-optimized (the same dispatch wrapped by the workload router).
    // The energy settlement is byte-identical by construction, so the
    // saving isolates the request layer — and the deferral rule only
    // ever moves work to strictly cheaper frames, so a negative saving
    // is a bug, not an outcome.
    use dpss_core::RoutingPlanner;
    use dpss_sim::RoutingConfig;
    let routing_config = RoutingConfig::icdcs13();
    let tw_pack = dpss_traces::ScenarioPack::builtin("traffic-wave").expect("built-in pack");
    let flash = 2usize; // variant index of "flash-crowd"
    let tw_engines: Vec<Engine> = (0..3)
        .map(|s| {
            Engine::new(
                params,
                tw_pack
                    .generate_site(&clock, PAPER_SEED, flash, s)
                    .expect("built-in pack generates valid traces"),
            )
            .expect("valid engine")
        })
        .collect();
    let tw_fleet = MultiSiteEngine::new(tw_engines)
        .expect("sites share the calendar")
        .with_interconnect(dpss_bench::routing_interconnect(3))
        .expect("ring spans the roster");
    let routing_off_s = best_of(timed_iters, || {
        let mut planner = FleetPlanner::for_engine(&tw_fleet).with_coordination(true);
        let _ = tw_fleet
            .run_with(&mut smart_boxes(), &mut planner)
            .expect("fleet run succeeds");
        let _ = tw_fleet
            .workload_ledger(routing_config)
            .expect("built-in traces shape a valid ledger")
            .serve_on_arrival();
    });
    let routing_coopt_s = best_of(timed_iters, || {
        let mut routed = RoutingPlanner::new(
            FleetPlanner::for_engine(&tw_fleet).with_coordination(true),
            routing_config,
        )
        .expect("validated routing config");
        let _ = tw_fleet
            .run_routed(&mut smart_boxes(), &mut routed, routing_config)
            .expect("routed fleet run succeeds");
    });
    let routing_off_cost = {
        let mut planner = FleetPlanner::for_engine(&tw_fleet).with_coordination(true);
        tw_fleet
            .run_with(&mut smart_boxes(), &mut planner)
            .expect("fleet run succeeds")
            .total_cost()
            + tw_fleet
                .workload_ledger(routing_config)
                .expect("built-in traces shape a valid ledger")
                .serve_on_arrival()
                .cost
    };
    let routing_coopt_cost = {
        let mut routed = RoutingPlanner::new(
            FleetPlanner::for_engine(&tw_fleet).with_coordination(true),
            routing_config,
        )
        .expect("validated routing config");
        tw_fleet
            .run_routed(&mut smart_boxes(), &mut routed, routing_config)
            .expect("routed fleet run succeeds")
            .total_cost()
    };
    let routing_saving = (routing_off_cost - routing_coopt_cost).dollars();
    if routing_saving < -1e-9 {
        eprintln!(
            "bench_sweep: error: co-optimized routing cost ${:.3} more than serve-on-arrival \
             (off ${:.3}, coopt ${:.3}) — the deferral rule is structurally dominant, so this \
             is a bug",
            -routing_saving,
            routing_off_cost.dollars(),
            routing_coopt_cost.dollars()
        );
        return ExitCode::FAILURE;
    }

    // ---- 6. Fleet scaling: sites vs wall-clock. -------------------------
    // The same contention month as §5, scaled along the site axis on the
    // lossy ring: dense simplex + serial stepping (the pre-scaling
    // baseline), sparse network simplex + serial stepping (the solver
    // win alone), and network simplex + threaded stepping (the full
    // path). One timed run per point — the curve's shape is the
    // artifact, not its microsecond precision.
    use dpss_core::SolverPath;
    use dpss_lp::SolverStats;
    let fleet_scaling_sites: Vec<usize> = vec![8, 16, 32, 64, 100];
    let mut fleet_scaling_serial_ms = Vec::new();
    let mut fleet_scaling_network_lp_ms = Vec::new();
    let mut fleet_scaling_parallel_ms = Vec::new();
    // Per-point kernel telemetry, keyed `ring<N>_<config>`, written out
    // as the solver_stats.json artifact.
    #[derive(Debug, Serialize)]
    struct SolverStatsPoint {
        point: String,
        sites: usize,
        stats: SolverStats,
        refactor_rate: f64,
    }
    let mut solver_stats_points: Vec<SolverStatsPoint> = Vec::new();
    let mut solver_refactor_rate = 0.0f64;
    let ring_month = |n: usize| -> MultiSiteEngine {
        let engines: Vec<Engine> = (0..n)
            .map(|s| {
                Engine::new(
                    params,
                    pack.generate_site(&clock, PAPER_SEED, stressed, s)
                        .expect("built-in pack generates valid traces"),
                )
                .expect("valid engine")
            })
            .collect();
        let ring_n = Interconnect::ring(n, Energy::from_mwh(2.0))
            .expect("valid ring")
            .with_uniform_loss(0.05)
            .expect("valid loss")
            .with_uniform_wheeling(Price::from_dollars_per_mwh(2.0))
            .expect("valid wheeling");
        MultiSiteEngine::new(engines)
            .expect("sites share the calendar")
            .with_interconnect(ring_n)
            .expect("ring spans the roster")
    };
    let smart_fleet = |n: usize| -> Vec<Box<dyn Controller>> {
        (0..n)
            .map(|_| {
                Box::new(
                    SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock)
                        .expect("valid configuration"),
                ) as Box<dyn Controller>
            })
            .collect()
    };
    let timed_month = |fleet: &MultiSiteEngine, n: usize, path: SolverPath| -> (f64, SolverStats) {
        let mut planner = FleetPlanner::for_engine(fleet)
            .with_coordination(true)
            .with_solver_path(path);
        let start = Instant::now();
        let _ = fleet
            .run_with(&mut smart_fleet(n), &mut planner)
            .expect("fleet run succeeds");
        (start.elapsed().as_secs_f64(), planner.solver_stats())
    };
    for &n in &fleet_scaling_sites {
        let fleet_n = ring_month(n);
        let (dense_s, _) = timed_month(&fleet_n, n, SolverPath::Dense);
        fleet_scaling_serial_ms.push(dense_s * 1e3);
        let (net_s, net_stats) = timed_month(&fleet_n, n, SolverPath::Network);
        fleet_scaling_network_lp_ms.push(net_s * 1e3);
        solver_stats_points.push(SolverStatsPoint {
            point: format!("ring{n}_network"),
            sites: n,
            stats: net_stats,
            refactor_rate: net_stats.refactor_rate(),
        });
        if n == 100 {
            solver_refactor_rate = net_stats.refactor_rate();
        }
        let parallel_fleet = fleet_n.with_threads(threads);
        let (par_s, par_stats) = timed_month(&parallel_fleet, n, SolverPath::Network);
        fleet_scaling_parallel_ms.push(par_s * 1e3);
        solver_stats_points.push(SolverStatsPoint {
            point: format!("ring{n}_parallel"),
            sites: n,
            stats: par_stats,
            refactor_rate: par_stats.refactor_rate(),
        });
    }
    // The large-fleet axis: factorized network kernel only.
    let mut large_ms = |n: usize| -> (f64, f64) {
        let fleet_n = ring_month(n);
        let (net_s, net_stats) = timed_month(&fleet_n, n, SolverPath::Network);
        solver_stats_points.push(SolverStatsPoint {
            point: format!("ring{n}_network"),
            sites: n,
            stats: net_stats,
            refactor_rate: net_stats.refactor_rate(),
        });
        let parallel_fleet = fleet_n.with_threads(threads);
        let (par_s, par_stats) = timed_month(&parallel_fleet, n, SolverPath::Network);
        solver_stats_points.push(SolverStatsPoint {
            point: format!("ring{n}_parallel"),
            sites: n,
            stats: par_stats,
            refactor_rate: par_stats.refactor_rate(),
        });
        (net_s * 1e3, par_s * 1e3)
    };
    let (fleet_scaling_256_network_ms, fleet_scaling_256_parallel_ms) = large_ms(256);
    let (fleet_scaling_512_network_ms, fleet_scaling_512_parallel_ms) = large_ms(512);

    // ---- 7. Sweep cache: cold first pass vs warm rerun. -----------------
    // Eight full-month cells through `run_cells_cached` on a scratch
    // cache: the cold pass computes and persists everything, the warm
    // pass must come back from disk ≥5× faster with identical bytes.
    use dpss_bench::{Axis, SweepCache, SweepSpec};
    let cache_dir = std::path::Path::new("target/sweep_cache_bench");
    let _ = std::fs::remove_dir_all(cache_dir);
    let cache = SweepCache::open(cache_dir).expect("scratch cache dir under target/ is writable");
    let cache_spec = SweepSpec::new("bench-cache", PAPER_SEED).with_axis(Axis::from_f64s(
        "seed-slot",
        &[0., 1., 2., 3., 4., 5., 6., 7.],
    ));
    let cache_cell = |cell: &dpss_bench::Cell| -> f64 {
        let engine = dpss_bench::setup_with_params(cell.seed, params);
        dpss_bench::run_smart(&engine, params, SmartDpssConfig::icdcs13())
            .total_cost()
            .dollars()
    };
    let cold_start = Instant::now();
    let cold_costs = serial.run_cells_cached(&cache_spec, &cache, cache_cell);
    let cache_cold_s = cold_start.elapsed().as_secs_f64();
    let warm_start = Instant::now();
    let warm_costs = serial.run_cells_cached(&cache_spec, &cache, cache_cell);
    let cache_warm_s = warm_start.elapsed().as_secs_f64();
    if warm_costs != cold_costs {
        eprintln!("bench_sweep: error: warm cache rerun changed the sweep results");
        return ExitCode::FAILURE;
    }
    let cache_speedup = cache_cold_s / cache_warm_s;
    if cache_speedup < 5.0 {
        eprintln!(
            "bench_sweep: error: warm cache rerun only {cache_speedup:.1}x faster than cold \
             (contract: >=5x; cold {:.1}ms, warm {:.1}ms)",
            cache_cold_s * 1e3,
            cache_warm_s * 1e3
        );
        return ExitCode::FAILURE;
    }

    // ---- 8. Serve replay: the streaming loop's price tag. ---------------
    // Record one month of stream ticks from the paper scenario, replay
    // it through the serve request loop, and assert the streamed final
    // report is byte-identical to the batch golden before timing it.
    let serve_clock = SlotClock::icdcs13_month();
    let serve_truth = dpss_traces::Scenario::icdcs13()
        .generate(&serve_clock, PAPER_SEED)
        .expect("paper scenario generates");
    let t = serve_clock.slots_per_frame();
    let mut serve_log = String::new();
    serve_log.push_str("{\"cmd\":\"init\",\"mode\":\"stream\"}\n");
    for frame in 0..serve_clock.frames() {
        let lo = frame * t;
        let hi = lo + t;
        let tick = dpss_serve::RawRequest {
            cmd: Some("tick".to_owned()),
            frame: Some(frame),
            price_lt: Some(serve_truth.price_lt[frame].dollars_per_mwh()),
            price_rt: Some(
                serve_truth.price_rt[lo..hi]
                    .iter()
                    .map(|p| p.dollars_per_mwh())
                    .collect(),
            ),
            demand_ds: Some(
                serve_truth.demand_ds[lo..hi]
                    .iter()
                    .map(|e| e.mwh())
                    .collect(),
            ),
            demand_dt: Some(
                serve_truth.demand_dt[lo..hi]
                    .iter()
                    .map(|e| e.mwh())
                    .collect(),
            ),
            renewable: Some(
                serve_truth.renewable[lo..hi]
                    .iter()
                    .map(|e| e.mwh())
                    .collect(),
            ),
            ..dpss_serve::RawRequest::default()
        };
        serve_log.push_str(&serde_json::to_string(&tick).expect("tick serializes"));
        serve_log.push('\n');
    }
    serve_log.push_str("{\"cmd\":\"finish\"}\n{\"cmd\":\"shutdown\"}\n");
    let serve_month = || -> dpss_sim::RunReport {
        let mut input = std::io::BufReader::new(serve_log.as_bytes());
        let mut transcript = Vec::new();
        let outcome = dpss_serve::serve(
            &mut input,
            &mut transcript,
            &dpss_serve::ServeOptions::default(),
        )
        .expect("serve loop succeeds");
        outcome.final_report.expect("stream month finishes")
    };
    let serve_golden = {
        let engine = Engine::new(params, serve_truth.clone()).expect("valid engine");
        let mut ctl = SmartDpss::new(SmartDpssConfig::icdcs13(), params, serve_clock)
            .expect("valid configuration");
        engine.run(&mut ctl).expect("batch month succeeds")
    };
    let streamed = serve_month();
    if serde_json::to_string(&streamed).expect("report serializes")
        != serde_json::to_string(&serve_golden).expect("report serializes")
    {
        eprintln!("bench_sweep: error: streamed month diverged from the batch golden");
        return ExitCode::FAILURE;
    }
    let serve_replay_s = best_of(timed_iters, || {
        let _ = serve_month();
    });
    let snapshot_roundtrip_s = {
        let state_dir = std::path::Path::new("target/serve_snapshot_bench");
        let _ = std::fs::remove_dir_all(state_dir);
        let mut server = dpss_serve::SessionServer::new(Some(state_dir))
            .expect("scratch state dir under target/ is writable");
        let (resp, _) = server.handle_line("{\"cmd\":\"init\",\"mode\":\"scenario\"}");
        assert!(
            !matches!(resp, dpss_serve::Response::Error { .. }),
            "scenario init succeeds"
        );
        for _ in 0..16 {
            let (resp, _) = server.handle_line("{\"cmd\":\"step\"}");
            assert!(
                !matches!(resp, dpss_serve::Response::Error { .. }),
                "mid-month step succeeds"
            );
        }
        best_of(timed_iters, || {
            let (resp, _) = server.handle_line("{\"cmd\":\"snapshot\"}");
            assert!(
                !matches!(resp, dpss_serve::Response::Error { .. }),
                "snapshot write succeeds"
            );
            let mut restored = dpss_serve::SessionServer::new(Some(state_dir))
                .expect("scratch state dir under target/ is writable");
            restored.resume_latest().expect("mid-month resume succeeds");
        })
    };

    let report = BenchSweepReport {
        generated_by: "dpss-bench/bench_sweep",
        threads,
        host_cpus: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        fig6_cells: cells,
        fig6_serial_ms: serial_s * 1e3,
        fig6_threaded_ms: threaded_s * 1e3,
        fig6_speedup: serial_s / threaded_s,
        cells_per_sec_serial: cells as f64 / serial_s,
        cells_per_sec_threaded: cells as f64 / threaded_s,
        dense_v_cells: dense.len() + 1,
        dense_v_serial_ms: dense_serial_s * 1e3,
        dense_v_threaded_ms: dense_threaded_s * 1e3,
        dense_v_speedup: dense_serial_s / dense_threaded_s,
        lp_cold_us_per_solve: lp_cold_s * 1e6 / frames.len() as f64,
        lp_warm_us_per_solve: lp_warm_s * 1e6 / frames.len() as f64,
        lp_warm_speedup: lp_cold_s / lp_warm_s,
        offline_cold_ms: offline_cold_s * 1e3,
        offline_warm_ms: offline_warm_s * 1e3,
        offline_warm_speedup: offline_cold_s / offline_warm_s,
        offline_t144_warm_ms: t144_s * 1e3,
        offline_t144_pivot_budget: t144_budget,
        offline_t144_cost_per_slot: t144_cost,
        dispatch_posthoc_ms: dispatch_posthoc_s * 1e3,
        dispatch_planned_ms: dispatch_planned_s * 1e3,
        dispatch_coordinated_ms: dispatch_coordinated_s * 1e3,
        dispatch_coordinated_saving: (planned_cost - coordinated_cost).dollars(),
        routing_off_ms: routing_off_s * 1e3,
        routing_coopt_ms: routing_coopt_s * 1e3,
        routing_coopt_saving: routing_saving,
        fleet_scaling_sites,
        fleet_scaling_serial_ms,
        fleet_scaling_network_lp_ms,
        fleet_scaling_parallel_ms,
        fleet_scaling_256_network_ms,
        fleet_scaling_256_parallel_ms,
        fleet_scaling_512_network_ms,
        fleet_scaling_512_parallel_ms,
        solver_refactor_rate,
        sweep_cache_cells: cache_spec.cells(),
        sweep_cache_cold_ms: cache_cold_s * 1e3,
        sweep_cache_warm_ms: cache_warm_s * 1e3,
        sweep_cache_speedup: cache_speedup,
        serve_replay_ticks: serve_clock.frames(),
        serve_replay_ms: serve_replay_s * 1e3,
        serve_replay_ticks_per_sec: serve_clock.frames() as f64 / serve_replay_s,
        serve_snapshot_roundtrip_ms: snapshot_roundtrip_s * 1e3,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    println!("{json}");
    // The per-point kernel telemetry rides as a sibling artifact.
    let stats_path = std::path::Path::new(&out).with_file_name("solver_stats.json");
    let stats_json = serde_json::to_string_pretty(&solver_stats_points).expect("stats serialize");
    if let Err(e) = std::fs::write(&stats_path, format!("{stats_json}\n")) {
        eprintln!(
            "bench_sweep: error: cannot write {}: {e}",
            stats_path.display()
        );
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", stats_path.display());
    match std::fs::write(&out, format!("{json}\n")) {
        Ok(()) => {
            eprintln!("wrote {out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench_sweep: error: cannot write {out}: {e}");
            ExitCode::FAILURE
        }
    }
}
