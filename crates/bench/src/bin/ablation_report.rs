//! Regenerates the DESIGN.md §3 ablations: printed-P5 vs derived-P5
//! objective, and paper-literal vs waste-aware P4 purchasing.

use dpss_bench::{figures, persist, PAPER_SEED};

fn main() {
    let runner = dpss_bench::runner_from_env_args();
    let table = figures::ablations_with(&runner, PAPER_SEED);
    table.print();
    persist(&table, "ablations");

    let forecast = figures::forecast_ablation_with(&runner, PAPER_SEED);
    forecast.print();
    persist(&forecast, "forecast_ablation");

    let baselines = figures::baselines_with(&runner, PAPER_SEED);
    baselines.print();
    persist(&baselines, "baselines");

    println!(
        "expected: the paper-literal P4 over-buys whenever the queue weight \
         exceeds V*p_lt and burns the surplus as waste; the P5 objective \
         variants land close to each other; oracle frame forecasts shave a \
         few percent; SmartDPSS beats both myopic baselines."
    );
}
