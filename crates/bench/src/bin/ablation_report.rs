//! Regenerates the DESIGN.md §3 ablations: printed-P5 vs derived-P5
//! objective, and paper-literal vs waste-aware P4 purchasing.

use dpss_bench::{figures, persist, PAPER_SEED};

fn main() {
    let table = figures::ablations(PAPER_SEED);
    table.print();
    persist(&table, "ablations");

    let forecast = figures::forecast_ablation(PAPER_SEED);
    forecast.print();
    persist(&forecast, "forecast_ablation");

    let baselines = figures::baselines(PAPER_SEED);
    baselines.print();
    persist(&baselines, "baselines");

    println!(
        "expected: the paper-literal P4 over-buys whenever the queue weight \
         exceeds V*p_lt and burns the surplus as waste; the P5 objective \
         variants land close to each other; oracle frame forecasts shave a \
         few percent; SmartDPSS beats both myopic baselines."
    );
}
