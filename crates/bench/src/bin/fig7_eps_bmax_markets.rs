//! Regenerates Fig. 7: impact of the delay-control parameter `ε`, the
//! market structure (two-timescale vs real-time-only) and the UPS size
//! `Bmax` on time-average total cost.

use dpss_bench::{figures, persist, PAPER_SEED};

fn main() {
    let runner = dpss_bench::runner_from_env_args();
    let eps = figures::fig7_epsilon_with(&runner, PAPER_SEED, &figures::FIG7_EPS_GRID);
    eps.print();
    persist(&eps, "fig7_epsilon");

    let markets = figures::fig7_markets_with(&runner, PAPER_SEED);
    markets.print();
    persist(&markets, "fig7_markets");

    let battery = figures::fig7_battery_with(&runner, PAPER_SEED, &figures::FIG7_BMAX_GRID);
    battery.print();
    persist(&battery, "fig7_battery");

    println!(
        "expected shape: cost rises with ε (delay falls); TM beats RTM; \
         larger batteries reduce curtailment (cost effect is small here — \
         see EXPERIMENTS.md on the backlog-as-storage substitution)."
    );
}
