//! Regenerates Fig. 10: the impact of system expansion (`β` × demand and
//! renewables, fixed UPS) on time-average total cost.

use dpss_bench::{figures, persist, PAPER_SEED};

fn main() {
    let runner = dpss_bench::runner_from_env_args();
    let table = figures::fig10_with(&runner, PAPER_SEED, &figures::FIG10_BETA_GRID);
    table.print();
    persist(&table, "fig10");
    println!(
        "expected shape: total cost grows almost linearly in beta; the \
         per-unit column stays near 1.0x."
    );
}
