//! Regenerates the scenario-pack artifacts: the cross-site aggregation
//! table for one pack (default `seasonal-calendar`, 3 sites) plus the
//! all-packs single-site overview. CI uploads the persisted JSON.
//!
//! ```text
//! pack_sweep [--pack NAME] [--sites N] [--threads N]
//! ```

use std::process::ExitCode;

use dpss_bench::{packs, persist, PAPER_SEED};

fn main() -> ExitCode {
    let mut pack_name = "seasonal-calendar".to_owned();
    let mut sites = 3usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--pack" => pack_name = args.next().unwrap_or_default(),
            "--sites" => {
                let v = args.next().unwrap_or_default();
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => sites = n,
                    _ => {
                        eprintln!("pack_sweep: --sites needs a positive integer, got {v:?}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            _ => {} // --threads is consumed by runner_from_env_args
        }
    }
    let pack = match packs::lookup_builtin(&pack_name) {
        Ok(pack) => pack,
        Err(message) => {
            eprintln!("pack_sweep: {message}");
            return ExitCode::FAILURE;
        }
    };

    let runner = dpss_bench::runner_from_env_args();
    let table = packs::pack_sweep_with(
        &runner,
        PAPER_SEED,
        &pack,
        sites,
        packs::default_transfer_cap(),
    );
    table.print();
    persist(&table, "pack_sweep");

    let overview = packs::pack_overview_with(&runner, PAPER_SEED);
    overview.print();
    persist(&overview, "pack_overview");
    ExitCode::SUCCESS
}
