//! Regenerates the scenario-pack artifacts: the cross-site aggregation
//! table for one pack (default `seasonal-calendar`, 3 sites) in both
//! settlement modes — post-hoc and planned — plus the all-packs
//! single-site overview. CI uploads the persisted JSON.
//!
//! ```text
//! pack_sweep [--pack NAME] [--sites N] [--threads N]
//!            [--interconnect post-hoc|planned|both]
//! ```

use std::process::ExitCode;

use dpss_bench::{packs, persist, InterconnectMode, PAPER_SEED};

fn main() -> ExitCode {
    let mut pack_name = "seasonal-calendar".to_owned();
    let mut sites = 3usize;
    let mut modes: Vec<InterconnectMode> =
        vec![InterconnectMode::PostHoc, InterconnectMode::Planned];
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--pack" => pack_name = args.next().unwrap_or_default(),
            "--sites" => {
                let v = args.next().unwrap_or_default();
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => sites = n,
                    _ => {
                        eprintln!("pack_sweep: --sites needs a positive integer, got {v:?}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--interconnect" => {
                let v = args.next().unwrap_or_default();
                if v == "both" {
                    // Last flag wins, same as a single mode would.
                    modes = vec![InterconnectMode::PostHoc, InterconnectMode::Planned];
                    continue;
                }
                match InterconnectMode::parse(&v) {
                    Ok(mode) => modes = vec![mode],
                    Err(message) => {
                        eprintln!("pack_sweep: {message}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            _ => {} // --threads is consumed by runner_from_env_args
        }
    }
    let pack = match packs::lookup_builtin(&pack_name) {
        Ok(pack) => pack,
        Err(message) => {
            eprintln!("pack_sweep: {message}");
            return ExitCode::FAILURE;
        }
    };

    let runner = dpss_bench::runner_from_env_args();
    let interconnect = packs::default_interconnect(sites);
    for mode in modes {
        let table = packs::pack_sweep_with(&runner, PAPER_SEED, &pack, sites, &interconnect, mode);
        table.print();
        let artifact = match mode {
            InterconnectMode::PostHoc => "pack_sweep",
            InterconnectMode::Planned => "pack_sweep_planned",
        };
        persist(&table, artifact);
    }

    let overview = packs::pack_overview_with(&runner, PAPER_SEED);
    overview.print();
    persist(&overview, "pack_overview");
    ExitCode::SUCCESS
}
