//! Regenerates the scenario-pack artifacts: the cross-site aggregation
//! table for one pack (default `seasonal-calendar`, 3 sites) in all
//! three dispatch modes — post-hoc, planned and coordinated — plus the
//! all-packs single-site overview and the topology sweep
//! (packs × {pooled, mesh, ring, severed}, 4 sites so the ring is a real
//! ring). CI uploads the persisted JSON.
//!
//! ```text
//! pack_sweep [--pack NAME] [--sites N] [--threads N]
//!            [--dispatch post-hoc|planned|coordinated|all]
//! ```
//!
//! (`--interconnect` is accepted as the legacy spelling of
//! `--dispatch`.)

use std::process::ExitCode;

use dpss_bench::{packs, persist, DispatchMode, PAPER_SEED};

fn main() -> ExitCode {
    let mut pack_name = "seasonal-calendar".to_owned();
    let mut sites = 3usize;
    let mut modes: Vec<DispatchMode> = vec![
        DispatchMode::PostHoc,
        DispatchMode::Planned,
        DispatchMode::Coordinated,
    ];
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--pack" => pack_name = args.next().unwrap_or_default(),
            "--sites" => {
                let v = args.next().unwrap_or_default();
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => sites = n,
                    _ => {
                        eprintln!("pack_sweep: --sites needs a positive integer, got {v:?}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--dispatch" | "--interconnect" => {
                let v = args.next().unwrap_or_default();
                if v == "all" || v == "both" {
                    // The full roster, same as the default.
                    modes = vec![
                        DispatchMode::PostHoc,
                        DispatchMode::Planned,
                        DispatchMode::Coordinated,
                    ];
                    continue;
                }
                match DispatchMode::parse(&v) {
                    Ok(mode) => modes = vec![mode],
                    Err(message) => {
                        eprintln!("pack_sweep: {message}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            _ => {} // --threads is consumed by runner_from_env_args
        }
    }
    let pack = match packs::lookup_builtin(&pack_name) {
        Ok(pack) => pack,
        Err(message) => {
            eprintln!("pack_sweep: {message}");
            return ExitCode::FAILURE;
        }
    };

    let runner = dpss_bench::runner_from_env_args();
    let interconnect = packs::default_interconnect(sites);
    let mut lp_counts = dpss_bench::FigureTable::new(
        "Fleet LP solve counts: warm/cold per dispatch mode",
        &dpss_bench::LP_COUNTS_COLUMNS,
    );
    for mode in modes {
        let (table, counts) =
            packs::pack_sweep_with_counts(&runner, PAPER_SEED, &pack, sites, &interconnect, mode);
        table.print();
        let artifact = match mode {
            DispatchMode::PostHoc => "pack_sweep",
            DispatchMode::Planned => "pack_sweep_planned",
            DispatchMode::Coordinated => "pack_sweep_coordinated",
        };
        persist(&table, artifact);
        if mode != DispatchMode::PostHoc {
            lp_counts.push_owned(dpss_bench::lp_counts_row(mode, &counts));
        }
    }
    if !lp_counts.rows.is_empty() {
        lp_counts.print();
        persist(&lp_counts, "pack_sweep_lp_counts");
    }

    let overview = packs::pack_overview_with(&runner, PAPER_SEED);
    overview.print();
    persist(&overview, "pack_overview");

    // Topology as a sweep axis: 4 sites so the ring is not the mesh.
    let topology = packs::topology_sweep_with(&runner, PAPER_SEED, 4);
    topology.print();
    persist(&topology, "topology_sweep");
    ExitCode::SUCCESS
}
