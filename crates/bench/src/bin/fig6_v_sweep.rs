//! Regenerates Fig. 6(a,b): time-average operation cost and average
//! service delay vs the control parameter `V`, for SmartDPSS, the offline
//! benchmark and the Impatient baseline.

use dpss_bench::{figures, persist, PAPER_SEED};

fn main() {
    let runner = dpss_bench::runner_from_env_args();
    let table = figures::fig6_v_with(&runner, PAPER_SEED, &figures::FIG6_V_GRID, true);
    table.print();
    persist(&table, "fig6_v");
    println!(
        "expected shape: smart cost falls toward offline as O(1/V); smart \
         delay grows as O(V); impatient is the delay floor and cost ceiling."
    );
}
