//! Scenario-pack and multi-datacenter sweeps: [`SweepSpec`] axes over
//! packs, pack variants, site counts and transmission topologies,
//! executed by an [`ExperimentRunner`] and dispatched over an
//! [`Interconnect`] — post-hoc (greedy fold), planned (`FleetPlanner`
//! flow LPs) or coordinated (frame-synchronous fleet dispatch with
//! buy-to-export directives) — so every table is byte-identical for any
//! `--threads` value and any site-execution order.

// Bench policy (see `figures`): built-in packs generate valid traces and
// valid engines by construction; expects assert those invariants rather
// than surfacing them as experiment outcomes. Variant/site grids are
// iterated with indices bounded by the same pack/fleet they index.
// audit:allow-file(panic-unwrap): bench treats misconfiguration of built-in packs as a programming error; every expect states its invariant
// audit:allow-file(slice-index): variant/site indices are bounded by the pack roster and fleet shape they iterate

use std::fmt;

use dpss_sim::{
    Controller, Engine, Interconnect, MultiSiteEngine, MultiSiteReport, RoutingConfig, RunReport,
    SimParams,
};
use dpss_traces::ScenarioPack;
use dpss_units::{Energy, Price, SlotClock};

use crate::{run_smart, Axis, ExperimentRunner, FigureTable, SweepSpec};
use dpss_core::{FleetPlanner, RoutingPlanner, SmartDpss, SmartDpssConfig};

/// How a pack sweep dispatches and settles inter-site transfers over
/// its [`Interconnect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// Settle realized curtailment after the fact with the greedy
    /// per-frame fold ([`Interconnect::settle_greedy`]).
    #[default]
    PostHoc,
    /// Plan each frame's export flows as a linear program
    /// ([`FleetPlanner`]), warm-started frame to frame. Settlement only:
    /// the plan never feeds back into what the sites do.
    Planned,
    /// Frame-synchronous fleet dispatch: sites run in lockstep over
    /// coarse frames; between frames the planner forecasts the fleet's
    /// exchange and hands every site a `FrameDirective` (buy-to-export
    /// when a neighbour's delivered price beats the local long-term
    /// cost), then settles each realized frame with the flow LP.
    Coordinated,
}

/// The pre-PR-5 name of [`DispatchMode`], kept for downstream callers of
/// the `--interconnect` era.
pub type InterconnectMode = DispatchMode;

impl DispatchMode {
    /// The CLI spellings, in display order.
    pub const NAMES: [&'static str; 3] = ["post-hoc", "planned", "coordinated"];

    /// Parses a CLI spelling, with the canonical error message (the
    /// mode roster is closed, so a typo is a *usage* error — the CLI
    /// exits 2 through `CliFailure`).
    ///
    /// # Errors
    ///
    /// `unknown dispatch mode: <name> (expected
    /// post-hoc|planned|coordinated)`.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "post-hoc" => Ok(DispatchMode::PostHoc),
            "planned" => Ok(DispatchMode::Planned),
            "coordinated" => Ok(DispatchMode::Coordinated),
            other => Err(format!(
                "unknown dispatch mode: {other} (expected {})",
                Self::NAMES.join("|")
            )),
        }
    }
}

impl fmt::Display for DispatchMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DispatchMode::PostHoc => "post-hoc",
            DispatchMode::Planned => "planned",
            DispatchMode::Coordinated => "coordinated",
        })
    }
}

/// Warm/cold LP solve counts accumulated by a sweep's fleet planners,
/// for the `pack_sweep_lp_counts` JSON artifact: settlement counts come
/// from [`FleetPlanner::solve_counts`], prospective counts from
/// [`FleetPlanner::prospective_solve_counts`] (zeros outside coordinated
/// mode). Deterministic — the solve sequence is a pure function of the
/// sweep inputs — so the artifact is byte-stable like every table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetLpCounts {
    /// Warm-started settlement LP solves.
    pub settlement_warm: u64,
    /// Cold (from-scratch) settlement LP solves.
    pub settlement_cold: u64,
    /// Warm-started prospective-dispatch LP solves.
    pub prospective_warm: u64,
    /// Cold prospective-dispatch LP solves.
    pub prospective_cold: u64,
}

impl FleetLpCounts {
    /// Warm fraction of all settlement solves (0 when none ran).
    #[must_use]
    pub fn settlement_warm_ratio(&self) -> f64 {
        ratio(self.settlement_warm, self.settlement_cold)
    }

    /// Warm fraction of all prospective solves (0 when none ran).
    #[must_use]
    pub fn prospective_warm_ratio(&self) -> f64 {
        ratio(self.prospective_warm, self.prospective_cold)
    }
}

fn ratio(warm: u64, cold: u64) -> f64 {
    let total = warm + cold;
    if total == 0 {
        0.0
    } else {
        warm as f64 / total as f64
    }
}

/// Default interconnect-coupling knob for pack sweeps: a modest 2 MWh of
/// inter-site transfer per coarse frame (the paper's site peaks at
/// 2 MW × 24 h = 48 MWh per frame, so this is ~4% of interconnect scale).
#[must_use]
pub fn default_transfer_cap() -> Energy {
    Energy::from_mwh(2.0)
}

/// The default topology for an `n`-site pack sweep: the
/// [`default_transfer_cap`] as a lossless, free, fleet-pooled
/// [`Interconnect`] — exactly the legacy knob.
///
/// # Panics
///
/// Panics if `sites == 0` (the sweep entry points assert this first).
#[must_use]
pub fn default_interconnect(sites: usize) -> Interconnect {
    Interconnect::pooled(sites, default_transfer_cap()).expect("default cap is valid")
}

/// Looks `name` up in the built-in pack registry, with the canonical
/// error message. The single source of that wording: the CLI parser, the
/// sweep entry points and the artifact binary all route through here
/// (CI greps the exact prefix).
///
/// # Errors
///
/// `unknown scenario pack: <name> (expected <the known names>)`.
pub fn lookup_builtin(name: &str) -> Result<ScenarioPack, String> {
    ScenarioPack::builtin(name).ok_or_else(|| {
        format!(
            "unknown scenario pack: {name} (expected {})",
            ScenarioPack::builtin_names().join("|")
        )
    })
}

/// [`pack_sweep_with`] on the default runner, topology and (post-hoc)
/// settlement mode, looking the pack up in the built-in registry.
///
/// # Errors
///
/// Returns a message naming the known packs if `pack_name` is not a
/// built-in.
pub fn pack_sweep(seed: u64, pack_name: &str, sites: usize) -> Result<FigureTable, String> {
    let pack = lookup_builtin(pack_name)?;
    Ok(pack_sweep_with(
        &ExperimentRunner::default(),
        seed,
        &pack,
        sites,
        &default_interconnect(sites),
        DispatchMode::PostHoc,
    ))
}

/// The cross-site aggregation table for one scenario pack, in the chosen
/// [`DispatchMode`]:
///
/// * **post-hoc / planned** — SmartDPSS runs every `(variant, site)`
///   cell of the sweep grid on the paper's one-month calendar (per-site
///   seeds and shared markets from the pack's schedule), then each
///   variant's sites are settled into a fleet row over the interconnect
///   topology — greedily, or through a fresh per-variant
///   [`FleetPlanner`] (so warm starts chain across a variant's frames
///   but variants stay independent of sweep order);
/// * **coordinated** — sites are coupled through directives, so a
///   *variant* is the smallest independent cell: each cell runs its
///   whole fleet frame-synchronously (serially, in site order) with a
///   coordinating planner, and variants fan out across workers. Tables
///   stay byte-identical at any `--threads` because every cell is
///   deterministic in isolation.
///
/// Rows: one per site, then one `fleet` aggregate row per variant carrying
/// the transfer settlement (sent MWh, displaced $, wheeling $).
///
/// # Panics
///
/// Panics if `sites == 0`, the pack is empty, the topology spans a
/// different site count, or a built-in model misbehaves (harness
/// contract: programming errors, not outcomes).
#[must_use]
pub fn pack_sweep_with(
    runner: &ExperimentRunner,
    seed: u64,
    pack: &ScenarioPack,
    sites: usize,
    interconnect: &Interconnect,
    mode: DispatchMode,
) -> FigureTable {
    pack_sweep_with_counts(runner, seed, pack, sites, interconnect, mode).0
}

/// [`pack_sweep_with`] plus the fleet planners' warm/cold LP solve
/// counts. The table bytes are identical to [`pack_sweep_with`]'s — in
/// planned mode one planner (and its LP template) is reused across all
/// variants with [`FleetPlanner::clear_basis`] between them, which every
/// golden suite pins against the fresh-per-variant result.
///
/// # Panics
///
/// Same contract as [`pack_sweep_with`].
#[must_use]
pub fn pack_sweep_with_counts(
    runner: &ExperimentRunner,
    seed: u64,
    pack: &ScenarioPack,
    sites: usize,
    interconnect: &Interconnect,
    mode: DispatchMode,
) -> (FigureTable, FleetLpCounts) {
    assert!(sites >= 1, "a pack sweep needs at least one site");
    assert!(!pack.is_empty(), "a pack sweep needs at least one variant");
    assert_eq!(
        interconnect.sites(),
        sites,
        "the interconnect must span the sweep's site roster"
    );
    let clock = SlotClock::icdcs13_month();
    let params = SimParams::icdcs13();

    // Engines are built up front (cheap next to the runs) so the sweep
    // cells — the expensive part — can fan out across workers while the
    // settlement stays a deterministic per-variant fold.
    let fleets: Vec<MultiSiteEngine> = (0..pack.len())
        .map(|v| {
            let engines: Vec<Engine> = (0..sites)
                .map(|s| {
                    let traces = pack
                        .generate_site(&clock, seed, v, s)
                        .expect("built-in pack generates valid traces");
                    Engine::new(params, traces).expect("valid engine")
                })
                .collect();
            MultiSiteEngine::new(engines)
                .expect("sites share the calendar")
                .with_interconnect(interconnect.clone())
                .expect("topology spans the roster")
        })
        .collect();

    let mut counts = FleetLpCounts::default();
    let variant_fleets: Vec<MultiSiteReport> = match mode {
        DispatchMode::PostHoc | DispatchMode::Planned => {
            let spec = SweepSpec::new(&format!("pack-{}", pack.name()), seed)
                .with_axis(Axis::new("variant", pack.labels()))
                .with_axis(Axis::new(
                    "site",
                    (0..sites).map(|s| s.to_string()).collect::<Vec<_>>(),
                ));
            let results = runner.run_cells(&spec, |cell| {
                let (v, s) = (cell.coords[0], cell.coords[1]);
                run_smart(&fleets[v].sites()[s], params, SmartDpssConfig::icdcs13())
            });
            // Every variant settles over the same topology, so planned
            // mode reuses one planner (one LP template, one workspace)
            // for the whole sweep; `clear_basis` between variants keeps
            // each variant byte-identical to a fresh planner while the
            // workspace counters accumulate the sweep's warm/cold story.
            let mut planner =
                (mode == DispatchMode::Planned).then(|| FleetPlanner::for_engine(&fleets[0]));
            let mut it = results.into_iter();
            let settled: Vec<MultiSiteReport> = fleets
                .iter()
                .map(|fleet_engine| {
                    let reports: Vec<RunReport> = it.by_ref().take(sites).collect();
                    match planner.as_mut() {
                        None => fleet_engine
                            .couple(reports)
                            .expect("reports match the fleet roster"),
                        Some(pl) => {
                            pl.clear_basis();
                            pl.couple(fleet_engine, reports)
                                .expect("reports match the fleet roster")
                        }
                    }
                })
                .collect();
            if let Some(pl) = &planner {
                (counts.settlement_warm, counts.settlement_cold) = pl.solve_counts();
                (counts.prospective_warm, counts.prospective_cold) = pl.prospective_solve_counts();
            }
            settled
        }
        DispatchMode::Coordinated => {
            let spec = SweepSpec::new(&format!("pack-{}-coordinated", pack.name()), seed)
                .with_axis(Axis::new("variant", pack.labels()));
            let cells = runner.run_cells(&spec, |cell| {
                let fleet_engine = &fleets[cell.coords[0]];
                let mut controllers: Vec<Box<dyn Controller>> = (0..sites)
                    .map(|_| {
                        Box::new(
                            SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock)
                                .expect("valid configuration"),
                        ) as Box<dyn Controller>
                    })
                    .collect();
                let mut dispatcher = FleetPlanner::for_engine(fleet_engine).with_coordination(true);
                let report = fleet_engine
                    .run_with(&mut controllers, &mut dispatcher)
                    .expect("fleet run succeeds");
                (
                    report,
                    dispatcher.solve_counts(),
                    dispatcher.prospective_solve_counts(),
                )
            });
            cells
                .into_iter()
                .map(|(report, settle, prospective)| {
                    counts.settlement_warm += settle.0;
                    counts.settlement_cold += settle.1;
                    counts.prospective_warm += prospective.0;
                    counts.prospective_cold += prospective.1;
                    report
                })
                .collect()
        }
    };

    let mode_tag = match mode {
        DispatchMode::PostHoc => String::new(),
        DispatchMode::Planned => ", planned".to_owned(),
        DispatchMode::Coordinated => ", coordinated".to_owned(),
    };
    let mut table = FigureTable::new(
        &format!(
            "Pack {}: cross-site aggregation ({} site{}, {}{})",
            pack.name(),
            sites,
            if sites == 1 { "" } else { "s" },
            interconnect.describe(),
            mode_tag,
        ),
        &[
            "variant",
            "site",
            "$/slot",
            "delay",
            "rt MWh",
            "waste MWh",
            "xfer MWh",
            "saved $",
        ],
    );
    for (v, fleet) in variant_fleets.iter().enumerate() {
        let label = pack.variant(v).expect("fleet per variant").0.to_owned();
        for (s, r) in fleet.sites.iter().enumerate() {
            table.push_owned(vec![
                label.clone(),
                s.to_string(),
                format!("{:.3}", r.time_average_cost().dollars()),
                format!("{:.2}", r.average_delay_slots),
                format!("{:.1}", r.energy_rt.mwh()),
                format!("{:.1}", r.energy_wasted.mwh()),
                "-".into(),
                "-".into(),
            ]);
        }
        table.push_owned(vec![
            label,
            "fleet".into(),
            format!("{:.3}", fleet.time_average_cost().dollars()),
            format!("{:.2}", fleet.average_delay_slots()),
            format!(
                "{:.1}",
                fleet.sites.iter().map(|r| r.energy_rt.mwh()).sum::<f64>()
            ),
            format!("{:.1}", fleet.total_energy_wasted().mwh()),
            format!("{:.2}", fleet.energy_transferred.mwh()),
            format!("{:.2}", fleet.transfer_savings.dollars()),
        ]);
    }
    (table, counts)
}

/// Renders a mode's [`FleetLpCounts`] as one row of the
/// `pack_sweep_lp_counts` artifact table (built by the `pack_sweep`
/// binary; tested here so the row shape stays stable).
#[must_use]
pub fn lp_counts_row(mode: DispatchMode, counts: &FleetLpCounts) -> Vec<String> {
    vec![
        mode.to_string(),
        counts.settlement_warm.to_string(),
        counts.settlement_cold.to_string(),
        format!("{:.3}", counts.settlement_warm_ratio()),
        counts.prospective_warm.to_string(),
        counts.prospective_cold.to_string(),
        format!("{:.3}", counts.prospective_warm_ratio()),
    ]
}

/// Column headers matching [`lp_counts_row`].
pub const LP_COUNTS_COLUMNS: [&str; 7] = [
    "mode",
    "settle warm",
    "settle cold",
    "settle warm ratio",
    "prospective warm",
    "prospective cold",
    "prospective warm ratio",
];

/// The named transmission-structure roster the topology sweep crosses
/// with the scenario packs: `pooled` is the legacy frictionless knob
/// ([`default_interconnect`]); `mesh` and `ring` are *physical*
/// structures at the same per-pair scale with 5% line loss and $2/MWh
/// wheeling; `severed` cuts every line. On a 3-site fleet the ring is
/// the mesh (every pair is adjacent); from 4 sites up they separate.
///
/// # Panics
///
/// Panics if `sites == 0`.
#[must_use]
pub fn topology_roster(sites: usize) -> Vec<(&'static str, Interconnect)> {
    let cap = default_transfer_cap();
    let physical = |ic: Interconnect| {
        ic.with_uniform_loss(0.05)
            .expect("valid loss")
            .with_uniform_wheeling(Price::from_dollars_per_mwh(2.0))
            .expect("valid wheeling")
    };
    vec![
        ("pooled", default_interconnect(sites)),
        (
            "mesh",
            physical(Interconnect::mesh(sites, cap).expect("valid roster")),
        ),
        (
            "ring",
            physical(Interconnect::ring(sites, cap).expect("valid roster")),
        ),
        (
            "severed",
            Interconnect::severed(sites).expect("valid roster"),
        ),
    ]
}

/// Topology as a sweep axis: every built-in pack variant crossed with
/// the [`topology_roster`], settled through a fresh per-cell
/// [`FleetPlanner`] (planned mode — routing is what distinguishes the
/// structures). Site runs are topology-independent, so each
/// `(pack, variant, site)` cell runs once and settles under all four
/// topologies in the fold. Persisted by the `pack_sweep` binary as
/// `target/figures/topology_sweep.json`.
///
/// # Panics
///
/// Panics if `sites == 0` or a built-in model misbehaves.
#[must_use]
pub fn topology_sweep_with(runner: &ExperimentRunner, seed: u64, sites: usize) -> FigureTable {
    assert!(sites >= 1, "a topology sweep needs at least one site");
    let clock = SlotClock::icdcs13_month();
    let params = SimParams::icdcs13();
    let packs: Vec<ScenarioPack> = ScenarioPack::builtin_names()
        .iter()
        .map(|n| ScenarioPack::builtin(n).expect("registry is consistent"))
        .collect();
    let widest = packs.iter().map(ScenarioPack::len).max().unwrap_or(0);
    let fleets: Vec<Vec<MultiSiteEngine>> = packs
        .iter()
        .map(|pack| {
            (0..pack.len())
                .map(|v| {
                    let engines: Vec<Engine> = (0..sites)
                        .map(|s| {
                            let traces = pack
                                .generate_site(&clock, seed, v, s)
                                .expect("built-in pack generates valid traces");
                            Engine::new(params, traces).expect("valid engine")
                        })
                        .collect();
                    MultiSiteEngine::new(engines).expect("sites share the calendar")
                })
                .collect()
        })
        .collect();

    let spec = SweepSpec::new("topology-sweep", seed)
        .with_axis(Axis::new(
            "pack",
            packs
                .iter()
                .map(|p| p.name().to_owned())
                .collect::<Vec<_>>(),
        ))
        .with_axis(Axis::new(
            "variant",
            (0..widest).map(|v| v.to_string()).collect::<Vec<_>>(),
        ))
        .with_axis(Axis::new(
            "site",
            (0..sites).map(|s| s.to_string()).collect::<Vec<_>>(),
        ));
    let results: Vec<Option<RunReport>> = runner.run_cells(&spec, |cell| {
        let (p, v, s) = (cell.coords[0], cell.coords[1], cell.coords[2]);
        if v >= packs[p].len() {
            return None; // ragged grid: this pack is narrower
        }
        Some(run_smart(
            &fleets[p][v].sites()[s],
            params,
            SmartDpssConfig::icdcs13(),
        ))
    });

    let roster = topology_roster(sites);
    let mut table = FigureTable::new(
        &format!(
            "Topology sweep: packs x {{pooled, mesh, ring, severed}} \
             ({sites} sites, planned settlement)"
        ),
        &[
            "pack", "variant", "topology", "$/slot", "xfer MWh", "saved $", "wheel $",
        ],
    );
    let mut it = results.into_iter();
    for (p, pack) in packs.iter().enumerate() {
        for v in 0..widest {
            // Ragged grid: drain this variant's cells even when the pack
            // is narrower than the widest one.
            let cell_reports: Vec<Option<RunReport>> = it.by_ref().take(sites).collect();
            let Some(base_fleet) = fleets[p].get(v) else {
                continue;
            };
            let reports: Vec<RunReport> = cell_reports
                .into_iter()
                .map(|r| r.expect("real variants produce reports"))
                .collect();
            for (name, topology) in &roster {
                let fleet_engine = base_fleet
                    .clone()
                    .with_interconnect(topology.clone())
                    .expect("roster spans the sweep's sites");
                let settled = FleetPlanner::for_engine(&fleet_engine)
                    .couple(&fleet_engine, reports.clone())
                    .expect("reports match the fleet roster");
                table.push_owned(vec![
                    pack.name().to_owned(),
                    pack.variant(v).expect("v < pack.len()").0.to_owned(),
                    (*name).to_owned(),
                    format!("{:.3}", settled.time_average_cost().dollars()),
                    format!("{:.2}", settled.energy_transferred.mwh()),
                    format!("{:.2}", settled.transfer_savings.dollars()),
                    format!("{:.2}", settled.wheeling_cost.dollars()),
                ]);
            }
        }
    }
    table
}

/// Overview sweep across *all* built-in packs: a `pack × variant` cell
/// grid, one single-site SmartDPSS month per cell. The quick regime
/// comparison the README's pack catalogue quotes.
#[must_use]
pub fn pack_overview_with(runner: &ExperimentRunner, seed: u64) -> FigureTable {
    let packs: Vec<ScenarioPack> = ScenarioPack::builtin_names()
        .iter()
        .map(|n| ScenarioPack::builtin(n).expect("registry is consistent"))
        .collect();
    let clock = SlotClock::icdcs13_month();
    let params = SimParams::icdcs13();
    let widest = packs.iter().map(ScenarioPack::len).max().unwrap_or(0);

    let spec = SweepSpec::new("pack-overview", seed)
        .with_axis(Axis::new(
            "pack",
            packs
                .iter()
                .map(|p| p.name().to_owned())
                .collect::<Vec<_>>(),
        ))
        .with_axis(Axis::new(
            "variant",
            (0..widest).map(|v| v.to_string()).collect::<Vec<_>>(),
        ));
    runner.run_table(
        &spec,
        "Scenario packs: single-site cost overview",
        &["pack", "variant", "$/slot", "delay", "waste MWh"],
        |cell| {
            let (p, v) = (cell.coords[0], cell.coords[1]);
            let pack = &packs[p];
            if v >= pack.len() {
                return Vec::new(); // ragged grid: this pack is narrower
            }
            let traces = pack
                .generate(&clock, seed, v)
                .expect("built-in pack generates valid traces");
            let engine = Engine::new(params, traces).expect("valid engine");
            let r = run_smart(&engine, params, SmartDpssConfig::icdcs13());
            vec![vec![
                pack.name().to_owned(),
                pack.variant(v).expect("v < pack.len()").0.to_owned(),
                format!("{:.3}", r.time_average_cost().dollars()),
                format!("{:.2}", r.average_delay_slots),
                format!("{:.1}", r.energy_wasted.mwh()),
            ]]
        },
    )
}

/// A serial LP-kernel telemetry probe behind `dpss sweep --solver-stats`:
/// runs the pack's *first* variant through one coordinated fleet month —
/// wrapped by the workload router when `routed` is set — and renders the
/// planner's [`SolverStats`](dpss_lp::SolverStats) counters as a
/// metric/value table. Deliberately single-threaded and single-variant so
/// the counters describe one reproducible month rather than a
/// thread-dependent interleaving of planners.
///
/// # Panics
///
/// Same harness contract as [`pack_sweep_with`], plus a validated
/// `routed` config when one is supplied.
#[must_use]
pub fn solver_stats_table(
    seed: u64,
    pack: &ScenarioPack,
    sites: usize,
    interconnect: &Interconnect,
    routed: Option<RoutingConfig>,
) -> FigureTable {
    assert!(sites >= 1, "a stats probe needs at least one site");
    assert!(!pack.is_empty(), "a stats probe needs at least one variant");
    assert_eq!(
        interconnect.sites(),
        sites,
        "the interconnect must span the probe's site roster"
    );
    let clock = SlotClock::icdcs13_month();
    let params = SimParams::icdcs13();
    let label = pack.variant(0).expect("non-empty pack").0.to_owned();
    let engines: Vec<Engine> = (0..sites)
        .map(|s| {
            let traces = pack
                .generate_site(&clock, seed, 0, s)
                .expect("built-in pack generates valid traces");
            Engine::new(params, traces).expect("valid engine")
        })
        .collect();
    let fleet = MultiSiteEngine::new(engines)
        .expect("sites share the calendar")
        .with_interconnect(interconnect.clone())
        .expect("topology spans the roster");
    let mut controllers: Vec<Box<dyn Controller>> = (0..sites)
        .map(|_| {
            Box::new(
                SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock)
                    .expect("valid configuration"),
            ) as Box<dyn Controller>
        })
        .collect();

    let stats = match routed {
        Some(config) => {
            let mut planner = RoutingPlanner::new(
                FleetPlanner::for_engine(&fleet).with_coordination(true),
                config,
            )
            .expect("validated routing config");
            fleet
                .run_routed(&mut controllers, &mut planner, config)
                .expect("routed fleet run succeeds");
            planner.solver_stats()
        }
        None => {
            let mut planner = FleetPlanner::for_engine(&fleet).with_coordination(true);
            fleet
                .run_with(&mut controllers, &mut planner)
                .expect("fleet run succeeds");
            planner.solver_stats()
        }
    };

    let mut table = FigureTable::new(
        &format!(
            "LP kernel stats: pack {} variant {label}, one coordinated month ({sites} site{})",
            pack.name(),
            if sites == 1 { "" } else { "s" },
        ),
        &["metric", "value"],
    );
    let rows: [(&str, String); 10] = [
        ("lp solves", stats.solves.to_string()),
        ("warm starts", stats.warm_solves.to_string()),
        ("cold starts", stats.cold_solves.to_string()),
        ("warm rejects", stats.warm_rejects.to_string()),
        ("kernel solves", stats.kernel_solves.to_string()),
        ("simplex pivots", stats.pivots.to_string()),
        ("refactorizations", stats.refactorizations.to_string()),
        ("refactor rate", format!("{:.4}", stats.refactor_rate())),
        ("eta entries peak", stats.eta_len_peak.to_string()),
        ("peak scratch bytes", stats.peak_scratch_bytes.to_string()),
    ];
    for (metric, value) in rows {
        table.push_owned(vec![metric.to_owned(), value]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_sweep_rejects_unknown_names() {
        let err = pack_sweep(42, "nonexistent", 1).unwrap_err();
        assert!(err.contains("unknown scenario pack"), "{err}");
        assert!(err.contains("seasonal-calendar"), "{err}");
    }

    #[test]
    fn dispatch_mode_parses_the_closed_roster() {
        assert_eq!(
            DispatchMode::parse("post-hoc").unwrap(),
            DispatchMode::PostHoc
        );
        assert_eq!(
            DispatchMode::parse("planned").unwrap(),
            DispatchMode::Planned
        );
        assert_eq!(
            DispatchMode::parse("coordinated").unwrap(),
            DispatchMode::Coordinated
        );
        let err = DispatchMode::parse("bogus").unwrap_err();
        assert!(err.contains("unknown dispatch mode: bogus"), "{err}");
        assert!(err.contains("post-hoc|planned|coordinated"), "{err}");
        assert_eq!(DispatchMode::Planned.to_string(), "planned");
        assert_eq!(DispatchMode::Coordinated.to_string(), "coordinated");
    }

    #[test]
    fn pack_sweep_table_shape() {
        // Two sites over the 4-variant price-spike pack: 4 × (2 + fleet).
        let pack = ScenarioPack::builtin("price-spike").unwrap();
        let t = pack_sweep_with(
            &ExperimentRunner::serial(),
            7,
            &pack,
            2,
            &default_interconnect(2),
            DispatchMode::PostHoc,
        );
        assert_eq!(t.rows.len(), 4 * 3);
        assert_eq!(t.rows[0][0], "calm");
        assert_eq!(t.rows[2][1], "fleet");
        // Fleet rows carry the settlement columns, site rows do not.
        assert_eq!(t.rows[0][6], "-");
        assert_ne!(t.rows[2][6], "-");
        // The coordinated table has the same shape and titles its mode.
        let c = pack_sweep_with(
            &ExperimentRunner::serial(),
            7,
            &pack,
            2,
            &default_interconnect(2),
            DispatchMode::Coordinated,
        );
        assert_eq!(c.rows.len(), 4 * 3);
        assert!(c.title.contains(", coordinated"), "{}", c.title);
        assert_eq!(c.rows[2][1], "fleet");
    }

    #[test]
    fn planned_sweep_reuses_one_planner_and_reports_counts() {
        let pack = ScenarioPack::builtin("price-spike").unwrap();
        let (t, counts) = pack_sweep_with_counts(
            &ExperimentRunner::serial(),
            7,
            &pack,
            2,
            &default_interconnect(2),
            DispatchMode::Planned,
        );
        assert_eq!(t.rows.len(), 4 * 3);
        // One planner serves all four variants: warm chains within each
        // variant's frames, and clear_basis forces at least one cold
        // start per variant (so variants stay order-independent).
        assert!(counts.settlement_warm > 0, "{counts:?}");
        assert!(counts.settlement_cold >= 4, "{counts:?}");
        assert!(counts.settlement_warm_ratio() > 0.0);
        assert_eq!(counts.prospective_warm + counts.prospective_cold, 0);
        let row = lp_counts_row(DispatchMode::Planned, &counts);
        assert_eq!(row.len(), LP_COUNTS_COLUMNS.len());
        assert_eq!(row[0], "planned");
        // Post-hoc settles greedily: no LP ever runs.
        let (_, none) = pack_sweep_with_counts(
            &ExperimentRunner::serial(),
            7,
            &pack,
            2,
            &default_interconnect(2),
            DispatchMode::PostHoc,
        );
        assert_eq!(none, FleetLpCounts::default());
    }

    #[test]
    fn topology_roster_names_the_four_structures() {
        let roster = topology_roster(4);
        let names: Vec<&str> = roster.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["pooled", "mesh", "ring", "severed"]);
        let mesh = &roster[1].1;
        let ring = &roster[2].1;
        assert_eq!(mesh.open_links().count(), 12);
        assert_eq!(ring.open_links().count(), 8);
        assert!(roster[3].1.is_silent());
        assert!((mesh.loss(0, 1) - 0.05).abs() < 1e-12);
    }
}
