//! Scenario-pack and multi-datacenter sweeps: [`SweepSpec`] axes over
//! packs, pack variants and site counts, executed by an
//! [`ExperimentRunner`] and settled over an [`Interconnect`] topology —
//! post-hoc (greedy fold) or planned (`FleetPlanner` flow LPs) — so every
//! table is byte-identical for any `--threads` value and any
//! site-execution order.

use std::fmt;

use dpss_sim::{Engine, Interconnect, MultiSiteEngine, MultiSiteReport, RunReport, SimParams};
use dpss_traces::ScenarioPack;
use dpss_units::{Energy, SlotClock};

use crate::{run_smart, Axis, ExperimentRunner, FigureTable, SweepSpec};
use dpss_core::{FleetPlanner, SmartDpssConfig};

/// How a pack sweep settles inter-site transfers over its
/// [`Interconnect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InterconnectMode {
    /// Settle realized curtailment after the fact with the greedy
    /// per-frame fold ([`Interconnect::settle_greedy`]).
    #[default]
    PostHoc,
    /// Plan each frame's export flows as a linear program
    /// ([`FleetPlanner`]), warm-started frame to frame.
    Planned,
}

impl InterconnectMode {
    /// The CLI spellings, in display order.
    pub const NAMES: [&'static str; 2] = ["post-hoc", "planned"];

    /// Parses a CLI spelling, with the canonical error message (the
    /// mode roster is closed, so a typo is a *usage* error — the CLI
    /// exits 2 through `CliFailure`).
    ///
    /// # Errors
    ///
    /// `unknown interconnect mode: <name> (expected post-hoc|planned)`.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "post-hoc" => Ok(InterconnectMode::PostHoc),
            "planned" => Ok(InterconnectMode::Planned),
            other => Err(format!(
                "unknown interconnect mode: {other} (expected {})",
                Self::NAMES.join("|")
            )),
        }
    }
}

impl fmt::Display for InterconnectMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InterconnectMode::PostHoc => "post-hoc",
            InterconnectMode::Planned => "planned",
        })
    }
}

/// Default interconnect-coupling knob for pack sweeps: a modest 2 MWh of
/// inter-site transfer per coarse frame (the paper's site peaks at
/// 2 MW × 24 h = 48 MWh per frame, so this is ~4% of interconnect scale).
#[must_use]
pub fn default_transfer_cap() -> Energy {
    Energy::from_mwh(2.0)
}

/// The default topology for an `n`-site pack sweep: the
/// [`default_transfer_cap`] as a lossless, free, fleet-pooled
/// [`Interconnect`] — exactly the legacy knob.
///
/// # Panics
///
/// Panics if `sites == 0` (the sweep entry points assert this first).
#[must_use]
pub fn default_interconnect(sites: usize) -> Interconnect {
    Interconnect::pooled(sites, default_transfer_cap()).expect("default cap is valid")
}

/// Looks `name` up in the built-in pack registry, with the canonical
/// error message. The single source of that wording: the CLI parser, the
/// sweep entry points and the artifact binary all route through here
/// (CI greps the exact prefix).
///
/// # Errors
///
/// `unknown scenario pack: <name> (expected <the known names>)`.
pub fn lookup_builtin(name: &str) -> Result<ScenarioPack, String> {
    ScenarioPack::builtin(name).ok_or_else(|| {
        format!(
            "unknown scenario pack: {name} (expected {})",
            ScenarioPack::builtin_names().join("|")
        )
    })
}

/// [`pack_sweep_with`] on the default runner, topology and (post-hoc)
/// settlement mode, looking the pack up in the built-in registry.
///
/// # Errors
///
/// Returns a message naming the known packs if `pack_name` is not a
/// built-in.
pub fn pack_sweep(seed: u64, pack_name: &str, sites: usize) -> Result<FigureTable, String> {
    let pack = lookup_builtin(pack_name)?;
    Ok(pack_sweep_with(
        &ExperimentRunner::default(),
        seed,
        &pack,
        sites,
        &default_interconnect(sites),
        InterconnectMode::PostHoc,
    ))
}

/// The cross-site aggregation table for one scenario pack: SmartDPSS runs
/// every `(variant, site)` cell of the sweep grid on the paper's one-month
/// calendar (per-site seeds and shared markets from the pack's schedule),
/// then each variant's sites are settled into a fleet row over the
/// interconnect topology — post-hoc greedily, or planned through a fresh
/// per-variant [`FleetPlanner`] (so warm starts chain across a variant's
/// frames but variants stay independent of sweep order).
///
/// Rows: one per site, then one `fleet` aggregate row per variant carrying
/// the transfer settlement (sent MWh, displaced $, wheeling $).
///
/// # Panics
///
/// Panics if `sites == 0`, the pack is empty, the topology spans a
/// different site count, or a built-in model misbehaves (harness
/// contract: programming errors, not outcomes).
#[must_use]
pub fn pack_sweep_with(
    runner: &ExperimentRunner,
    seed: u64,
    pack: &ScenarioPack,
    sites: usize,
    interconnect: &Interconnect,
    mode: InterconnectMode,
) -> FigureTable {
    assert!(sites >= 1, "a pack sweep needs at least one site");
    assert!(!pack.is_empty(), "a pack sweep needs at least one variant");
    assert_eq!(
        interconnect.sites(),
        sites,
        "the interconnect must span the sweep's site roster"
    );
    let clock = SlotClock::icdcs13_month();
    let params = SimParams::icdcs13();

    // Engines are built up front (cheap next to the runs) so the sweep
    // cells — the expensive part — can fan out across workers while the
    // settlement stays a deterministic per-variant fold.
    let fleets: Vec<MultiSiteEngine> = (0..pack.len())
        .map(|v| {
            let engines: Vec<Engine> = (0..sites)
                .map(|s| {
                    let traces = pack
                        .generate_site(&clock, seed, v, s)
                        .expect("built-in pack generates valid traces");
                    Engine::new(params, traces).expect("valid engine")
                })
                .collect();
            MultiSiteEngine::new(engines)
                .expect("sites share the calendar")
                .with_interconnect(interconnect.clone())
                .expect("topology spans the roster")
        })
        .collect();

    let spec = SweepSpec::new(&format!("pack-{}", pack.name()), seed)
        .with_axis(Axis::new("variant", pack.labels()))
        .with_axis(Axis::new(
            "site",
            (0..sites).map(|s| s.to_string()).collect::<Vec<_>>(),
        ));
    let results = runner.run_cells(&spec, |cell| {
        let (v, s) = (cell.coords[0], cell.coords[1]);
        run_smart(&fleets[v].sites()[s], params, SmartDpssConfig::icdcs13())
    });

    let mode_tag = match mode {
        InterconnectMode::PostHoc => String::new(),
        InterconnectMode::Planned => ", planned".to_owned(),
    };
    let mut table = FigureTable::new(
        &format!(
            "Pack {}: cross-site aggregation ({} site{}, {}{})",
            pack.name(),
            sites,
            if sites == 1 { "" } else { "s" },
            interconnect.describe(),
            mode_tag,
        ),
        &[
            "variant",
            "site",
            "$/slot",
            "delay",
            "rt MWh",
            "waste MWh",
            "xfer MWh",
            "saved $",
        ],
    );
    let mut it = results.into_iter();
    for (v, fleet_engine) in fleets.iter().enumerate() {
        let reports: Vec<RunReport> = it.by_ref().take(sites).collect();
        let label = pack.variant(v).0.to_owned();
        for (s, r) in reports.iter().enumerate() {
            table.push_owned(vec![
                label.clone(),
                s.to_string(),
                format!("{:.3}", r.time_average_cost().dollars()),
                format!("{:.2}", r.average_delay_slots),
                format!("{:.1}", r.energy_rt.mwh()),
                format!("{:.1}", r.energy_wasted.mwh()),
                "-".into(),
                "-".into(),
            ]);
        }
        let fleet: MultiSiteReport = match mode {
            InterconnectMode::PostHoc => fleet_engine
                .couple(reports)
                .expect("reports match the fleet roster"),
            InterconnectMode::Planned => FleetPlanner::for_engine(fleet_engine)
                .couple(fleet_engine, reports)
                .expect("reports match the fleet roster"),
        };
        table.push_owned(vec![
            label,
            "fleet".into(),
            format!("{:.3}", fleet.time_average_cost().dollars()),
            format!("{:.2}", fleet.average_delay_slots()),
            format!(
                "{:.1}",
                fleet.sites.iter().map(|r| r.energy_rt.mwh()).sum::<f64>()
            ),
            format!("{:.1}", fleet.total_energy_wasted().mwh()),
            format!("{:.2}", fleet.energy_transferred.mwh()),
            format!("{:.2}", fleet.transfer_savings.dollars()),
        ]);
    }
    table
}

/// Overview sweep across *all* built-in packs: a `pack × variant` cell
/// grid, one single-site SmartDPSS month per cell. The quick regime
/// comparison the README's pack catalogue quotes.
#[must_use]
pub fn pack_overview_with(runner: &ExperimentRunner, seed: u64) -> FigureTable {
    let packs: Vec<ScenarioPack> = ScenarioPack::builtin_names()
        .iter()
        .map(|n| ScenarioPack::builtin(n).expect("registry is consistent"))
        .collect();
    let clock = SlotClock::icdcs13_month();
    let params = SimParams::icdcs13();
    let widest = packs.iter().map(ScenarioPack::len).max().unwrap_or(0);

    let spec = SweepSpec::new("pack-overview", seed)
        .with_axis(Axis::new(
            "pack",
            packs
                .iter()
                .map(|p| p.name().to_owned())
                .collect::<Vec<_>>(),
        ))
        .with_axis(Axis::new(
            "variant",
            (0..widest).map(|v| v.to_string()).collect::<Vec<_>>(),
        ));
    runner.run_table(
        &spec,
        "Scenario packs: single-site cost overview",
        &["pack", "variant", "$/slot", "delay", "waste MWh"],
        |cell| {
            let (p, v) = (cell.coords[0], cell.coords[1]);
            let pack = &packs[p];
            if v >= pack.len() {
                return Vec::new(); // ragged grid: this pack is narrower
            }
            let traces = pack
                .generate(&clock, seed, v)
                .expect("built-in pack generates valid traces");
            let engine = Engine::new(params, traces).expect("valid engine");
            let r = run_smart(&engine, params, SmartDpssConfig::icdcs13());
            vec![vec![
                pack.name().to_owned(),
                pack.variant(v).0.to_owned(),
                format!("{:.3}", r.time_average_cost().dollars()),
                format!("{:.2}", r.average_delay_slots),
                format!("{:.1}", r.energy_wasted.mwh()),
            ]]
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_sweep_rejects_unknown_names() {
        let err = pack_sweep(42, "nonexistent", 1).unwrap_err();
        assert!(err.contains("unknown scenario pack"), "{err}");
        assert!(err.contains("seasonal-calendar"), "{err}");
    }

    #[test]
    fn interconnect_mode_parses_the_closed_roster() {
        assert_eq!(
            InterconnectMode::parse("post-hoc").unwrap(),
            InterconnectMode::PostHoc
        );
        assert_eq!(
            InterconnectMode::parse("planned").unwrap(),
            InterconnectMode::Planned
        );
        let err = InterconnectMode::parse("bogus").unwrap_err();
        assert!(err.contains("unknown interconnect mode: bogus"), "{err}");
        assert!(err.contains("post-hoc|planned"), "{err}");
        assert_eq!(InterconnectMode::Planned.to_string(), "planned");
    }

    #[test]
    fn pack_sweep_table_shape() {
        // Two sites over the 4-variant price-spike pack: 4 × (2 + fleet).
        let pack = ScenarioPack::builtin("price-spike").unwrap();
        let t = pack_sweep_with(
            &ExperimentRunner::serial(),
            7,
            &pack,
            2,
            &default_interconnect(2),
            InterconnectMode::PostHoc,
        );
        assert_eq!(t.rows.len(), 4 * 3);
        assert_eq!(t.rows[0][0], "calm");
        assert_eq!(t.rows[2][1], "fleet");
        // Fleet rows carry the settlement columns, site rows do not.
        assert_eq!(t.rows[0][6], "-");
        assert_ne!(t.rows[2][6], "-");
    }
}
