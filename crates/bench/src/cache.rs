//! Content-keyed caching of sweep cell results under `target/sweep_cache/`.
//!
//! A sweep cell is a pure function of its [`SweepSpec`] (name, base seed,
//! axes) and its coordinates — the runner derives everything else, so the
//! pair *is* the cell's content identity. [`SweepCache`] hashes that
//! identity (plus a code-version salt, so stale results never survive a
//! semantics change) into a filename and stores each cell's JSON-encoded
//! result as one file. A re-run of the same sweep then loads every cell
//! it can and only computes the misses — cold correctness is untouched
//! because a hit is byte-for-byte the value the closure returned when the
//! file was written, and the cache never changes cell order.
//!
//! The cache is strictly opt-in ([`ExperimentRunner::run_cells_cached`]):
//! the published figure tables and determinism suites keep calling the
//! uncached paths, so goldens can never be satisfied by a stale file.
//!
//! [`ExperimentRunner::run_cells_cached`]: crate::ExperimentRunner::run_cells_cached

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use dpss_traces::seed::{fnv1a, splitmix64};

use crate::spec::SweepSpec;

/// Version salt folded into every cache key. Bump it whenever the meaning
/// of a cell result changes (new physics, different aggregation, changed
/// serialization) so every previously cached file misses instead of
/// serving stale data.
pub const CACHE_SCHEMA_VERSION: u64 = 1;

/// A directory of content-keyed sweep cell results.
///
/// # Examples
///
/// ```no_run
/// use dpss_bench::{Axis, ExperimentRunner, SweepCache, SweepSpec};
///
/// let spec = SweepSpec::new("squares", 42).with_axis(Axis::from_f64s("x", &[1.0, 2.0]));
/// let cache = SweepCache::open("target/sweep_cache").unwrap();
/// let cold = ExperimentRunner::serial().run_cells_cached(&spec, &cache, |c| c.index * c.index);
/// let warm = ExperimentRunner::serial().run_cells_cached(&spec, &cache, |c| c.index * c.index);
/// assert_eq!(cold, warm);
/// assert_eq!(cache.hits(), 2); // second run served both cells from disk
/// ```
#[derive(Debug)]
pub struct SweepCache {
    dir: PathBuf,
    salt: u64,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl SweepCache {
    /// Opens (creating if needed) a cache directory. The default salt
    /// covers [`CACHE_SCHEMA_VERSION`] and the crate version, so rebuilt
    /// harnesses with changed semantics start cold.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(SweepCache {
            dir,
            salt: splitmix64(CACHE_SCHEMA_VERSION ^ fnv1a(env!("CARGO_PKG_VERSION"))),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        })
    }

    /// The conventional cache location, `target/sweep_cache`.
    #[must_use]
    pub fn default_dir() -> PathBuf {
        PathBuf::from("target/sweep_cache")
    }

    /// Folds an extra salt into every key — for callers whose cell
    /// closures depend on inputs outside the spec (e.g. a config file),
    /// so those inputs participate in content identity too.
    #[must_use]
    pub fn with_salt(mut self, salt: u64) -> Self {
        self.salt = splitmix64(self.salt ^ salt);
        self
    }

    /// Cells served from disk since this cache handle was opened.
    #[must_use]
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cells that had to be computed since this handle was opened.
    #[must_use]
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// The content key of one cell: a `splitmix64` chain over the salt,
    /// the spec name, base seed, every axis name and label, and the
    /// cell's coordinates. Any change to any of those moves the key.
    #[must_use]
    pub fn cell_key(&self, spec: &SweepSpec, index: usize) -> u64 {
        let mut z = splitmix64(self.salt ^ fnv1a(spec.name()));
        z = splitmix64(z ^ spec.seed());
        for axis in spec.axes() {
            z = splitmix64(z ^ fnv1a(axis.name()));
            for label in axis.labels() {
                z = splitmix64(z ^ fnv1a(label));
            }
        }
        for &c in &spec.cell(index).coords {
            z = splitmix64(z ^ (c as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        }
        z
    }

    fn cell_path(&self, spec: &SweepSpec, index: usize) -> PathBuf {
        let stem: String = spec
            .name()
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        self.dir
            .join(format!("{stem}-{:016x}.json", self.cell_key(spec, index)))
    }

    /// Loads one cell's cached result, or `None` on any miss (absent
    /// file, unreadable file, undecodable JSON — all three just mean
    /// "recompute").
    pub fn load<R: serde::Deserialize>(&self, spec: &SweepSpec, index: usize) -> Option<R> {
        let loaded = std::fs::read_to_string(self.cell_path(spec, index))
            .ok()
            .and_then(|text| serde_json::from_str(&text).ok());
        if loaded.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        loaded
    }

    /// Stores one cell's result. Best-effort: a failed write only costs
    /// the next run a recompute, so errors are swallowed. The write goes
    /// through a per-key temp file and an atomic rename, so concurrent
    /// writers (parallel workers, overlapping runs) can never leave a
    /// torn file behind.
    pub fn store<R: serde::Serialize>(&self, spec: &SweepSpec, index: usize, value: &R) {
        let Ok(json) = serde_json::to_string(value) else {
            return;
        };
        let path = self.cell_path(spec, index);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        if std::fs::write(&tmp, json).is_ok() && std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// The directory this cache reads and writes.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Axis, ExperimentRunner};
    use std::sync::atomic::AtomicUsize;

    fn scratch(name: &str) -> PathBuf {
        let dir = PathBuf::from("target/sweep_cache_test").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec() -> SweepSpec {
        SweepSpec::new("cache-spec", 42)
            .with_axis(Axis::from_f64s("v", &[0.5, 1.0, 2.0]))
            .with_axis(Axis::new("market", ["tm", "rtm"]))
    }

    #[test]
    fn warm_rerun_serves_every_cell_from_disk() {
        let cache = SweepCache::open(scratch("warm")).unwrap();
        let calls = AtomicUsize::new(0);
        let f = |c: &crate::Cell| {
            calls.fetch_add(1, Ordering::Relaxed);
            (c.index, c.seed)
        };
        let cold = ExperimentRunner::serial().run_cells_cached(&spec(), &cache, f);
        assert_eq!(calls.load(Ordering::Relaxed), 6);
        assert_eq!(cache.misses(), 6);
        let warm = ExperimentRunner::serial().run_cells_cached(&spec(), &cache, f);
        assert_eq!(
            calls.load(Ordering::Relaxed),
            6,
            "warm run must not recompute"
        );
        assert_eq!(cache.hits(), 6);
        assert_eq!(cold, warm);
    }

    #[test]
    fn content_changes_move_every_key() {
        let cache = SweepCache::open(scratch("keys")).unwrap();
        let base = spec();
        let k = cache.cell_key(&base, 0);
        assert_eq!(k, cache.cell_key(&base, 0), "keys are deterministic");
        let reseeded = SweepSpec::new("cache-spec", 43)
            .with_axis(Axis::from_f64s("v", &[0.5, 1.0, 2.0]))
            .with_axis(Axis::new("market", ["tm", "rtm"]));
        assert_ne!(k, cache.cell_key(&reseeded, 0));
        let renamed = SweepSpec::new("other-spec", 42)
            .with_axis(Axis::from_f64s("v", &[0.5, 1.0, 2.0]))
            .with_axis(Axis::new("market", ["tm", "rtm"]));
        assert_ne!(k, cache.cell_key(&renamed, 0));
        let relabeled = SweepSpec::new("cache-spec", 42)
            .with_axis(Axis::from_f64s("v", &[0.5, 1.0, 3.0]))
            .with_axis(Axis::new("market", ["tm", "rtm"]));
        // Cell 0 has coords (0, 0): its own labels are unchanged, but the
        // axis *content* moved, so the key must move with it.
        assert_ne!(k, cache.cell_key(&relabeled, 0));
        let salted = SweepCache::open(scratch("keys-salted"))
            .unwrap()
            .with_salt(7);
        assert_ne!(k, salted.cell_key(&base, 0));
    }

    #[test]
    fn corrupted_files_are_recomputed_and_healed() {
        let cache = SweepCache::open(scratch("corrupt")).unwrap();
        let s = spec();
        let runner = ExperimentRunner::serial();
        let first = runner.run_cells_cached(&s, &cache, |c| c.seed);
        std::fs::write(cache.cell_path(&s, 2), "not json").unwrap();
        let second = runner.run_cells_cached(&s, &cache, |c| c.seed);
        assert_eq!(first, second);
        // The corrupted cell healed: a third run is all hits.
        let before = cache.hits();
        let third = runner.run_cells_cached(&s, &cache, |c| c.seed);
        assert_eq!(first, third);
        assert_eq!(cache.hits() - before, s.cells());
    }

    #[test]
    fn threaded_cached_runs_match_serial_in_order() {
        let s = spec();
        let plain = ExperimentRunner::serial().run_cells(&s, |c| (c.index, c.seed));
        for threads in [1, 4] {
            let cache = SweepCache::open(scratch(&format!("threaded-{threads}"))).unwrap();
            let runner = ExperimentRunner::new(threads);
            let cold = runner.run_cells_cached(&s, &cache, |c| (c.index, c.seed));
            let warm = runner.run_cells_cached(&s, &cache, |c| (c.index, c.seed));
            assert_eq!(plain, cold, "threads = {threads}");
            assert_eq!(plain, warm, "threads = {threads}");
        }
    }

    #[test]
    fn partial_caches_only_compute_the_misses() {
        let s = spec();
        let cache = SweepCache::open(scratch("partial")).unwrap();
        let runner = ExperimentRunner::serial();
        let full = runner.run_cells_cached(&s, &cache, |c| c.seed);
        // Evict two cells; only those two recompute.
        std::fs::remove_file(cache.cell_path(&s, 1)).unwrap();
        std::fs::remove_file(cache.cell_path(&s, 4)).unwrap();
        let calls = AtomicUsize::new(0);
        let again = runner.run_cells_cached(&s, &cache, |c| {
            calls.fetch_add(1, Ordering::Relaxed);
            c.seed
        });
        assert_eq!(full, again);
        assert_eq!(calls.load(Ordering::Relaxed), 2);
    }
}
