//! Criterion wrapper for the Fig. 6(a,b) computation: measures the cost
//! of a reduced `V` sweep (full grids live in the `fig6_v_sweep` binary)
//! and asserts the headline shape every run.

use criterion::{criterion_group, criterion_main, Criterion};
use dpss_bench::{figures, PAPER_SEED};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_v");
    group.sample_size(10);
    group.bench_function("sweep_v_2pts_no_offline", |b| {
        b.iter(|| {
            let t = figures::fig6_v(PAPER_SEED, &[0.25, 2.0], false);
            let low: f64 = t.rows[0][1].parse().unwrap();
            let high: f64 = t.rows[1][1].parse().unwrap();
            assert!(high < low, "cost must fall with V");
            t
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
