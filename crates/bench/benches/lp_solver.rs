//! Micro-benchmarks of the `dpss-lp` simplex substrate: the P4/P5-shaped
//! tiny LPs solved every slot, and the frame-sized LP solved by the
//! offline benchmark.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dpss_lp::{LpWorkspace, Problem, Relation, Sense};
use std::hint::black_box;

/// A P5-shaped LP: two decision variables, one balance row.
fn p5_shaped() -> Problem {
    let mut p = Problem::new(Sense::Minimize);
    let g = p.add_var("g", 0.0, 2.0, 42.0).unwrap();
    let y = p.add_var("y", 0.0, 1.5, -7.0).unwrap();
    let w = p.add_var("w", 0.0, f64::INFINITY, 1.0).unwrap();
    p.add_constraint(&[(g, 1.0), (y, -1.0), (w, -1.0)], Relation::Eq, 0.3)
        .unwrap();
    p
}

/// The shared frame-shaped LP family (see
/// [`dpss_bench::frame_shaped_lp`]).
fn frame_shaped(t: usize) -> Problem {
    dpss_bench::frame_shaped_lp(t, 1.0)
}

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_solver");
    group.sample_size(20);

    group.bench_function("p5_shaped_3var", |b| {
        let p = p5_shaped();
        b.iter(|| black_box(&p).solve().unwrap());
    });

    for t in [6usize, 24] {
        group.bench_function(format!("frame_shaped_t{t}"), |b| {
            let p = frame_shaped(t);
            b.iter_batched(|| p.clone(), |p| p.solve().unwrap(), BatchSize::SmallInput);
        });
    }

    // Cold vs warm on a stream of mildly varying frames: the cold case
    // pays phase 1 + allocation per solve, the warm case re-reduces onto
    // the previous optimal basis inside a persistent workspace.
    for t in [6usize, 24] {
        let frames: Vec<Problem> = (0..8)
            .map(|k| dpss_bench::frame_shaped_lp(t, 1.0 + 0.02 * k as f64))
            .collect();
        group.bench_function(format!("frame_stream_t{t}_cold"), |b| {
            b.iter(|| {
                for p in &frames {
                    // A fresh workspace per solve: no basis, no buffers.
                    black_box(p.solve().unwrap());
                }
            });
        });
        group.bench_function(format!("frame_stream_t{t}_warm"), |b| {
            let mut ws = LpWorkspace::new();
            b.iter(|| {
                for p in &frames {
                    black_box(p.solve_with(&mut ws).unwrap());
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lp);
criterion_main!(benches);
