//! Micro-benchmarks of the `dpss-lp` simplex substrate: the P4/P5-shaped
//! tiny LPs solved every slot, and the frame-sized LP solved by the
//! offline benchmark.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dpss_lp::{Problem, Relation, Sense};
use std::hint::black_box;

/// A P5-shaped LP: two decision variables, one balance row.
fn p5_shaped() -> Problem {
    let mut p = Problem::new(Sense::Minimize);
    let g = p.add_var("g", 0.0, 2.0, 42.0).unwrap();
    let y = p.add_var("y", 0.0, 1.5, -7.0).unwrap();
    let w = p.add_var("w", 0.0, f64::INFINITY, 1.0).unwrap();
    p.add_constraint(&[(g, 1.0), (y, -1.0), (w, -1.0)], Relation::Eq, 0.3)
        .unwrap();
    p
}

/// A frame-shaped LP: `t` slots × 7 variables with balance, battery and
/// queue recursions (the structure the offline benchmark solves).
fn frame_shaped(t: usize) -> Problem {
    let mut p = Problem::new(Sense::Minimize);
    let g = p.add_var("g", 0.0, 2.0, 35.0 * t as f64).unwrap();
    let mut prev_b = None;
    let mut prev_q = None;
    for i in 0..t {
        let grt = p.add_var(format!("grt{i}"), 0.0, 2.0, 45.0).unwrap();
        let sdt = p
            .add_var(format!("sdt{i}"), 0.0, f64::INFINITY, 0.0)
            .unwrap();
        let brc = p.add_var(format!("brc{i}"), 0.0, 0.5, 0.2).unwrap();
        let bdc = p.add_var(format!("bdc{i}"), 0.0, 0.5, 0.2).unwrap();
        let w = p.add_var(format!("w{i}"), 0.0, f64::INFINITY, 1.0).unwrap();
        let b = p.add_var(format!("b{i}"), 0.03, 0.5, 0.0).unwrap();
        let q = p.add_var(format!("q{i}"), 0.0, f64::INFINITY, 0.0).unwrap();
        let demand = 0.8 + 0.3 * (i as f64 * 0.7).sin();
        p.add_constraint(
            &[
                (g, 1.0),
                (grt, 1.0),
                (bdc, 1.0),
                (brc, -1.0),
                (sdt, -1.0),
                (w, -1.0),
            ],
            Relation::Eq,
            demand,
        )
        .unwrap();
        match prev_b {
            None => p
                .add_constraint(&[(b, 1.0), (brc, -0.8), (bdc, 1.25)], Relation::Eq, 0.25)
                .unwrap(),
            Some(pb) => p
                .add_constraint(
                    &[(b, 1.0), (pb, -1.0), (brc, -0.8), (bdc, 1.25)],
                    Relation::Eq,
                    0.0,
                )
                .unwrap(),
        };
        match prev_q {
            None => p
                .add_constraint(&[(q, 1.0), (sdt, 1.0)], Relation::Eq, 0.4)
                .unwrap(),
            Some(pq) => p
                .add_constraint(&[(q, 1.0), (pq, -1.0), (sdt, 1.0)], Relation::Eq, 0.4)
                .unwrap(),
        };
        prev_b = Some(b);
        prev_q = Some(q);
    }
    // Serve everything by the frame end.
    if let Some(q) = prev_q {
        p.add_constraint(&[(q, 1.0)], Relation::Le, 0.4).unwrap();
    }
    p
}

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_solver");
    group.sample_size(20);

    group.bench_function("p5_shaped_3var", |b| {
        let p = p5_shaped();
        b.iter(|| black_box(&p).solve().unwrap());
    });

    for t in [6usize, 24] {
        group.bench_function(format!("frame_shaped_t{t}"), |b| {
            let p = frame_shaped(t);
            b.iter_batched(|| p.clone(), |p| p.solve().unwrap(), BatchSize::SmallInput);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lp);
criterion_main!(benches);
