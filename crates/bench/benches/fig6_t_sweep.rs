//! Criterion wrapper for the Fig. 6(c,d) computation: a reduced `T` sweep
//! without the offline benchmark (full grids live in the binary).

use criterion::{criterion_group, criterion_main, Criterion};
use dpss_bench::{figures, PAPER_SEED};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_t");
    group.sample_size(10);
    group.bench_function("sweep_t_3pts_no_offline", |b| {
        b.iter(|| figures::fig6_t(PAPER_SEED, &[6, 24, 48], 0));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
