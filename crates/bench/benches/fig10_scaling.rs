//! Criterion wrapper for the Fig. 10 computation (system expansion).

use criterion::{criterion_group, criterion_main, Criterion};
use dpss_bench::{figures, PAPER_SEED};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.bench_function("expansion_2pts", |b| {
        b.iter(|| {
            let t = figures::fig10(PAPER_SEED, &[1.0, 5.0]);
            let c1: f64 = t.rows[0][1].parse().unwrap();
            let c5: f64 = t.rows[1][1].parse().unwrap();
            assert!(c5 > c1, "cost must grow with beta");
            t
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
