//! Criterion wrapper for the Fig. 8 computation (penetration/variation).

use criterion::{criterion_group, criterion_main, Criterion};
use dpss_bench::{figures, PAPER_SEED};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.bench_function("penetration_and_variation_2pts", |b| {
        b.iter(|| {
            let (pen, _) = figures::fig8(PAPER_SEED, &[0.0, 1.0], &[1.0]);
            let none: f64 = pen.rows[0][1].parse().unwrap();
            let full: f64 = pen.rows[1][1].parse().unwrap();
            assert!(full < none, "penetration must reduce cost");
            pen
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
