//! Criterion wrapper for the Fig. 7 computations (ε, market structure,
//! battery size).

use criterion::{criterion_group, criterion_main, Criterion};
use dpss_bench::{figures, PAPER_SEED};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("epsilon_2pts", |b| {
        b.iter(|| figures::fig7_epsilon(PAPER_SEED, &[0.25, 2.0]));
    });
    group.bench_function("markets", |b| {
        b.iter(|| {
            let t = figures::fig7_markets(PAPER_SEED);
            let tm: f64 = t.rows[0][1].parse().unwrap();
            let rtm: f64 = t.rows[1][1].parse().unwrap();
            assert!(tm < rtm, "two markets must be cheaper");
            t
        });
    });
    group.bench_function("battery_2pts", |b| {
        b.iter(|| figures::fig7_battery(PAPER_SEED, &[0.0, 30.0]));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
