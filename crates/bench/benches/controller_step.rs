//! Per-decision latency of the SmartDPSS controller: the closed-form
//! P5 path vs the LP-backed path, and a full month of control steps
//! (engine + plant included).

use criterion::{criterion_group, criterion_main, Criterion};
use dpss_bench::{paper_traces, run_smart, PAPER_SEED};
use dpss_core::{SmartDpss, SmartDpssConfig};
use dpss_sim::{Controller, Engine, SimParams, SlotObservation, SystemView};
use dpss_units::{Energy, Price, SlotClock, SlotId};
use std::hint::black_box;

fn slot_obs() -> SlotObservation {
    SlotObservation {
        slot: SlotId {
            index: 37,
            frame: 1,
            offset: 13,
        },
        slot_hours: 1.0,
        price_rt: Price::from_dollars_per_mwh(48.0),
        price_lt: Price::from_dollars_per_mwh(36.0),
        demand_ds: Energy::from_mwh(0.9),
        demand_dt: Energy::from_mwh(0.4),
        renewable: Energy::from_mwh(0.6),
    }
}

fn view() -> SystemView {
    SystemView {
        battery_level: Energy::from_mwh(0.3),
        battery_headroom: Energy::from_mwh(0.25),
        battery_available: Energy::from_mwh(0.21),
        battery_ops_remaining: None,
        queue_backlog: Energy::from_mwh(1.7),
        lt_allocation: Energy::from_mwh(0.8),
        rt_purchase_cap: Energy::from_mwh(1.2),
    }
}

fn bench_controller(c: &mut Criterion) {
    let params = SimParams::icdcs13();
    let clock = SlotClock::icdcs13_month();

    let mut group = c.benchmark_group("controller_step");
    group.sample_size(20);

    group.bench_function("p5_closed_form", |b| {
        let mut ctl = SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap();
        let obs = slot_obs();
        let v = view();
        b.iter(|| black_box(ctl.plan_slot(&obs, &v)));
    });

    group.bench_function("p5_lp_backed", |b| {
        let mut ctl = SmartDpss::new(
            SmartDpssConfig::icdcs13().with_lp_solver(true),
            params,
            clock,
        )
        .unwrap();
        let obs = slot_obs();
        let v = view();
        b.iter(|| black_box(ctl.plan_slot(&obs, &v)));
    });

    group.bench_function("full_month_smart_dpss", |b| {
        let engine = Engine::new(params, paper_traces(PAPER_SEED)).unwrap();
        b.iter(|| run_smart(&engine, params, SmartDpssConfig::icdcs13()));
    });

    // Cold vs warm frame planning: the offline benchmark re-solves one
    // frame LP per coarse frame; `warm_start: false` forces every solve
    // through the cold two-phase path, `true` reuses the previous basis
    // whenever it stays primal-feasible. Results are identical.
    let truth = paper_traces(PAPER_SEED);
    for (label, warm) in [
        ("full_month_offline_cold", false),
        ("full_month_offline_warm", true),
    ] {
        group.bench_function(label, |b| {
            let engine = Engine::new(params, truth.clone()).unwrap();
            let config = dpss_core::OfflineConfig {
                warm_start: warm,
                ..dpss_core::OfflineConfig::default()
            };
            b.iter(|| {
                let mut ctl =
                    dpss_core::OfflineOptimal::with_config(params, truth.clone(), config).unwrap();
                engine.run(&mut ctl).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_controller);
criterion_main!(benches);
