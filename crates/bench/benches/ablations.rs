//! Criterion wrapper for the DESIGN.md §3 ablations (P5 objective
//! interpretation, P4 purchase cap).

use criterion::{criterion_group, criterion_main, Criterion};
use dpss_bench::{figures, PAPER_SEED};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("p4_p5_variants", |b| {
        b.iter(|| figures::ablations(PAPER_SEED));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
