//! Criterion wrapper for the Fig. 9 computation (robustness to ±50%
//! observation errors).

use criterion::{criterion_group, criterion_main, Criterion};
use dpss_bench::{figures, PAPER_SEED};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.bench_function("errors_2pts", |b| {
        b.iter(|| figures::fig9(PAPER_SEED, 0.5, &[0.5, 2.0]));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
