//! The warm re-solve zero-allocation gate.
//!
//! The factorized network kernel's contract (`dpss-lp/src/network.rs`)
//! is that after the first solve through a workspace, warm re-solves
//! run entirely out of preallocated arenas: the eta file, the FTRAN/
//! BTRAN scratch, the pricing candidate list and the solution buffer
//! are all reused, so a fleet month's thousands of frame solves pin a
//! constant working set. This test makes that contract mechanical: a
//! counting `#[global_allocator]` is armed around a 64-edit warm chain
//! (solve → read → recycle) and must observe **zero** heap allocations.
//!
//! The file holds exactly one `#[test]` so no sibling test thread can
//! allocate inside the armed window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use dpss_lp::{ConstraintId, LpWorkspace, Problem, Relation, Sense, Variable};

/// Pass-through allocator that tallies allocation events while armed.
/// Deallocations are deliberately not counted: returning a recycled
/// buffer is free, creating one is what the gate forbids.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The settlement flow shape the fleet planner solves every frame:
/// 3 sites, one variable per directed pair, donor and need rows.
fn flow_lp() -> (Problem, Vec<Variable>, Vec<ConstraintId>) {
    let n = 3;
    let mut p = Problem::new(Sense::Minimize);
    let mut flows = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let f = p
                .add_var(format!("f{i}_{j}"), 0.0, 2.0, -40.0 - (i * n + j) as f64)
                .unwrap();
            flows.push(f);
        }
    }
    let var = |i: usize, j: usize| flows[i * (n - 1) + if j > i { j - 1 } else { j }];
    let mut rows = Vec::new();
    for i in 0..n {
        let terms: Vec<(Variable, f64)> = (0..n)
            .filter(|&j| j != i)
            .map(|j| (var(i, j), 1.0))
            .collect();
        rows.push(p.add_constraint(&terms, Relation::Le, 2.5).unwrap());
    }
    for j in 0..n {
        let terms: Vec<(Variable, f64)> = (0..n)
            .filter(|&i| i != j)
            .map(|i| (var(i, j), 0.95))
            .collect();
        rows.push(p.add_constraint(&terms, Relation::Le, 2.0).unwrap());
    }
    (p, flows, rows)
}

/// Allocation-free xorshift for the in-window edit payloads.
fn unit(state: &mut u64) -> f64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    (*state >> 11) as f64 / (1u64 << 53) as f64
}

#[test]
fn warm_resolves_perform_zero_heap_allocations() {
    let (mut p, flows, rows) = flow_lp();
    assert!(p.is_network_form());
    let mut ws = LpWorkspace::new();
    let mut state = 0x5EED_CAFE_F00Du64;

    // Priming pass: the cold solve sizes every arena, the recycle hands
    // the solution buffer back, and 96 unarmed laps of the same edit
    // distribution walk every arena (eta file, pricing candidates,
    // refactorization scratch) to its steady-state high-water capacity.
    // The armed window below draws from the same deterministic stream,
    // so a capacity high never first appears while the counter is live.
    let sol = p.solve_network_with(&mut ws).expect("feasible packing LP");
    assert!(sol.objective().is_finite());
    ws.recycle(sol);
    for lap in 0..96 {
        for &f in &flows {
            if lap % 2 == 1 {
                p.set_bounds(f, 0.0, 1.5 + 0.2 * unit(&mut state))
                    .expect("valid bounds");
            }
            p.set_objective(f, -50.0 - 8.0 * unit(&mut state))
                .expect("known variable");
        }
        if lap % 2 == 1 {
            for &row in &rows {
                p.set_rhs(row, 2.0 + 0.3 * unit(&mut state))
                    .expect("known row");
            }
        }
        let sol = p.solve_network_with(&mut ws).expect("feasible packing LP");
        ws.recycle(sol);
    }
    let primed_warm = ws.warm_solves();

    // The measured window: 64 edit→solve→read→recycle laps, zero
    // allocation events allowed. Even laps edit objectives only — a
    // packing optimum sits tight against its bounds, so cost-only edits
    // are the laps guaranteed to ride the warm path (the basis stays
    // primal-feasible). Odd laps rewrite the full surface (bounds, rhs,
    // costs); those may warm-reject and restart from the slack basis,
    // which must be equally allocation-free.
    ALLOCATIONS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let mut checksum = 0.0;
    for lap in 0..64 {
        for &f in &flows {
            if lap % 2 == 1 {
                p.set_bounds(f, 0.0, 1.5 + 0.2 * unit(&mut state))
                    .expect("valid bounds");
            }
            p.set_objective(f, -50.0 - 8.0 * unit(&mut state))
                .expect("known variable");
        }
        if lap % 2 == 1 {
            for &row in &rows {
                p.set_rhs(row, 2.0 + 0.3 * unit(&mut state))
                    .expect("known row");
            }
        }
        let sol = p.solve_network_with(&mut ws).expect("feasible packing LP");
        checksum += sol.objective();
        ws.recycle(sol);
    }
    ARMED.store(false, Ordering::SeqCst);

    let allocs = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        allocs, 0,
        "warm re-solves must be allocation-free: {allocs} heap allocations \
         across 64 solve→read→recycle laps (checksum {checksum})"
    );
    assert!(checksum.is_finite());
    assert!(
        ws.warm_solves() >= primed_warm + 32,
        "the armed window must have measured the warm path: {} warm / {} cold / {} rejects",
        ws.warm_solves(),
        ws.cold_solves(),
        ws.warm_rejects()
    );
}
