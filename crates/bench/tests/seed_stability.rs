//! Seed-derivation regression suite: the "appends never shift existing
//! cells" guarantee, tested in isolation.
//!
//! Two registries promise stable seeds under growth:
//!
//! * [`SweepSpec`]: appending *values* to any axis must not perturb the
//!   seed of any pre-existing coordinate combination, even though the
//!   flat cell indices shift;
//! * [`ScenarioPack`]: appending *variants* must not perturb the variant
//!   or site seeds of the pre-existing variants.
//!
//! Every published artifact leans on these guarantees ("packs compose
//! without perturbing existing artifacts"), so they are property-tested
//! here rather than inferred from figure goldens.

use dpss_bench::{Axis, SweepSpec};
use dpss_traces::{Scenario, ScenarioPack};
use proptest::prelude::*;

/// Registry names exercised by the properties (the vendored proptest has
/// no string strategies; an index into this roster stands in).
const NAMES: [&str; 6] = ["fig6-v", "pack-x", "a", "sweep", "pack-seasonal", "z9"];

/// Builds a spec from axis sizes (labels are the stringified indices).
fn spec_from(name: &str, seed: u64, sizes: &[usize]) -> SweepSpec {
    let mut spec = SweepSpec::new(name, seed);
    for (k, &n) in sizes.iter().enumerate() {
        spec = spec.with_axis(Axis::new(
            &format!("axis{k}"),
            (0..n).map(|i| i.to_string()).collect::<Vec<_>>(),
        ));
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Growing every axis by an arbitrary amount keeps every pre-existing
    /// coordinate combination on its original seed.
    #[test]
    fn axis_value_appends_never_shift_existing_cell_seeds(
        seed in 0u64..1_000_000_007,
        name_idx in 0usize..6,
        sizes in collection::vec(1usize..4, 1..4),
        growth in collection::vec(0usize..3, 1..4),
    ) {
        let name = NAMES[name_idx];
        let base = spec_from(name, seed, &sizes);
        let grown_sizes: Vec<usize> = sizes
            .iter()
            .zip(growth.iter().chain(std::iter::repeat(&0)))
            .map(|(&n, &g)| n + g)
            .collect();
        let grown = spec_from(name, seed, &grown_sizes);
        for i in 0..base.cells() {
            let cell = base.cell(i);
            prop_assert_eq!(
                cell.seed,
                grown.coords_seed(&cell.coords),
                "coords {:?} shifted when axes grew {:?} -> {:?}",
                cell.coords, &sizes, &grown_sizes
            );
        }
    }

    /// New coordinate combinations introduced by growth get fresh,
    /// pairwise-distinct seeds (the derivation stays collision-free).
    #[test]
    fn grown_cells_get_distinct_seeds(
        seed in 0u64..1_000_000_007,
        name_idx in 0usize..6,
        n in 1usize..6,
        extra in 1usize..4,
    ) {
        let grown = spec_from(NAMES[name_idx], seed, &[n + extra]);
        let mut seeds: Vec<u64> = (0..grown.cells()).map(|i| grown.cell(i).seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        prop_assert_eq!(seeds.len(), n + extra, "seed collision after growth");
    }

    /// Extending a pack with new variants keeps every existing variant —
    /// and every site of every existing variant — on its original seeds.
    #[test]
    fn pack_extension_never_shifts_existing_variant_seeds(
        master in 0u64..1_000_000_007,
        name_idx in 0usize..6,
        variants in 1usize..5,
        extra in 1usize..4,
        sites in 1usize..4,
    ) {
        let mut base = ScenarioPack::new(NAMES[name_idx]);
        for v in 0..variants {
            base = base.with_variant(&format!("v{v}"), Scenario::icdcs13());
        }
        let mut grown = base.clone();
        for v in 0..extra {
            grown = grown.with_variant(&format!("extra{v}"), Scenario::windy_plains());
        }
        for v in 0..variants {
            prop_assert_eq!(
                base.variant_seed(master, v),
                grown.variant_seed(master, v),
                "variant {} shifted when the pack grew", v
            );
            for s in 0..sites {
                prop_assert_eq!(
                    base.site_seed(master, v, s),
                    grown.site_seed(master, v, s),
                    "variant {} site {} shifted when the pack grew", v, s
                );
            }
        }
    }

    /// Pack seeds are salted by the pack name: same roster, different
    /// name, disjoint streams.
    #[test]
    fn pack_seeds_are_name_salted(
        master in 0u64..1_000_000_007,
        name_idx in 0usize..6,
    ) {
        let name = NAMES[name_idx];
        let a = ScenarioPack::new(name).with_variant("v", Scenario::icdcs13());
        let other = format!("{name}-prime");
        let b = ScenarioPack::new(&other).with_variant("v", Scenario::icdcs13());
        prop_assert!(
            a.variant_seed(master, 0) != b.variant_seed(master, 0),
            "packs {} and {} share a variant seed", name, other
        );
    }
}

/// The cross-registry contract the figure/pack artifacts rely on, pinned
/// deterministically: the four built-in packs occupy disjoint seed
/// streams at the canonical master seed.
#[test]
fn builtin_packs_have_disjoint_seed_streams() {
    let mut seeds = Vec::new();
    for &name in ScenarioPack::builtin_names() {
        let pack = ScenarioPack::builtin(name).unwrap();
        for v in 0..pack.len() {
            seeds.push(pack.variant_seed(dpss_bench::PAPER_SEED, v));
            for s in 0..4 {
                seeds.push(pack.site_seed(dpss_bench::PAPER_SEED, v, s));
            }
        }
    }
    let n = seeds.len();
    seeds.sort_unstable();
    seeds.dedup();
    assert_eq!(seeds.len(), n, "built-in pack seed streams collide");
}
