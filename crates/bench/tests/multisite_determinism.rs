//! Multi-site determinism contracts, run in release mode by CI next to
//! the sweep-determinism job:
//!
//! * pack sweeps (the `dpss sweep --pack` tables) are byte-identical for
//!   `--threads 1` vs `8` — in both settlement modes (post-hoc and
//!   planned);
//! * the fleet settlement is independent of site-execution order — the
//!   per-site runs can be computed in any order (or on any thread) and
//!   [`MultiSiteEngine::couple`] (and the planner's
//!   [`FleetPlanner::couple`]) still produce the identical aggregate;
//! * one fleet row of the canonical `seasonal-calendar --sites 3` sweep
//!   is pinned byte-for-byte, and one variant of
//!   `price-spike --sites 3 --interconnect planned` next to it, so both
//!   settlement modes have goldens of their own next to the Fig. 6 one
//!   (CI uploads the corresponding `pack_sweep{,_planned}.json`
//!   artifacts).

use dpss_bench::{packs, DispatchMode, ExperimentRunner, InterconnectMode, PAPER_SEED};
use dpss_core::{FleetPlanner, SmartDpss, SmartDpssConfig};
use dpss_sim::{
    Controller, Engine, FleetDispatcher, FrameSettlement, Interconnect, MultiSiteEngine, RunReport,
    SimParams,
};
use dpss_traces::ScenarioPack;
use dpss_units::{Energy, Price, SlotClock};

#[test]
fn pack_sweep_threads_1_and_8_are_identical() {
    let pack = ScenarioPack::builtin("seasonal-calendar").unwrap();
    let ic = packs::default_interconnect(3);
    let serial = packs::pack_sweep_with(
        &ExperimentRunner::serial(),
        PAPER_SEED,
        &pack,
        3,
        &ic,
        InterconnectMode::PostHoc,
    );
    let threaded = packs::pack_sweep_with(
        &ExperimentRunner::new(8),
        PAPER_SEED,
        &pack,
        3,
        &ic,
        InterconnectMode::PostHoc,
    );
    assert_eq!(serial, threaded);
}

#[test]
fn planned_pack_sweep_threads_1_and_8_are_identical() {
    let pack = ScenarioPack::builtin("seasonal-calendar").unwrap();
    let ic = packs::default_interconnect(3);
    let serial = packs::pack_sweep_with(
        &ExperimentRunner::serial(),
        PAPER_SEED,
        &pack,
        3,
        &ic,
        InterconnectMode::Planned,
    );
    let threaded = packs::pack_sweep_with(
        &ExperimentRunner::new(8),
        PAPER_SEED,
        &pack,
        3,
        &ic,
        InterconnectMode::Planned,
    );
    assert_eq!(serial, threaded);
}

#[test]
fn coordinated_pack_sweep_threads_1_and_8_are_identical() {
    // Coordinated cells are whole-fleet lockstep runs (one per variant),
    // so worker scheduling must not move a byte of the table.
    let pack = ScenarioPack::builtin("price-spike").unwrap();
    let ic = packs::default_interconnect(3);
    let serial = packs::pack_sweep_with(
        &ExperimentRunner::serial(),
        PAPER_SEED,
        &pack,
        3,
        &ic,
        DispatchMode::Coordinated,
    );
    let threaded = packs::pack_sweep_with(
        &ExperimentRunner::new(8),
        PAPER_SEED,
        &pack,
        3,
        &ic,
        DispatchMode::Coordinated,
    );
    assert_eq!(serial, threaded);
}

#[test]
fn pack_overview_threads_1_and_8_are_identical() {
    let serial = packs::pack_overview_with(&ExperimentRunner::serial(), PAPER_SEED);
    let threaded = packs::pack_overview_with(&ExperimentRunner::new(8), PAPER_SEED);
    assert_eq!(serial, threaded);
}

/// Builds the 3-site renewable-drought fleet and a closure that runs one
/// site — the harness both settlement-order tests share.
fn drought_fleet() -> (MultiSiteEngine, impl Fn(usize) -> RunReport) {
    let clock = SlotClock::icdcs13_month();
    let params = SimParams::icdcs13();
    let pack = ScenarioPack::builtin("renewable-drought").unwrap();
    let sites = 3usize;
    let engines: Vec<Engine> = (0..sites)
        .map(|s| {
            Engine::new(
                params,
                pack.generate_site(&clock, PAPER_SEED, 1, s).unwrap(),
            )
            .unwrap()
        })
        .collect();
    let multi = MultiSiteEngine::new(engines)
        .unwrap()
        .with_transfer_cap(Energy::from_mwh(2.0))
        .unwrap();
    let run_site = move |multi: &MultiSiteEngine, s: usize| -> RunReport {
        let engine = &multi.sites()[s];
        let mut ctl =
            dpss_core::SmartDpss::new(SmartDpssConfig::icdcs13(), params, engine.truth().clock)
                .unwrap();
        engine.run(&mut ctl).unwrap()
    };
    let multi_for_closure = multi.clone();
    (multi, move |s| run_site(&multi_for_closure, s))
}

#[test]
fn fleet_settlement_is_independent_of_site_execution_order() {
    let (multi, run_site) = drought_fleet();
    // Three execution orders, one settlement each: all must agree.
    let orders: [[usize; 3]; 3] = [[0, 1, 2], [2, 1, 0], [1, 2, 0]];
    let mut fleets = Vec::new();
    for order in orders {
        let mut reports: Vec<Option<RunReport>> = vec![None, None, None];
        for s in order {
            reports[s] = Some(run_site(s));
        }
        let reports: Vec<RunReport> = reports.into_iter().map(Option::unwrap).collect();
        fleets.push(multi.couple(reports).unwrap());
    }
    assert_eq!(fleets[0], fleets[1]);
    assert_eq!(fleets[0], fleets[2]);
}

#[test]
fn planned_settlement_is_independent_of_site_execution_order() {
    let (multi, run_site) = drought_fleet();
    let orders: [[usize; 3]; 3] = [[0, 1, 2], [2, 1, 0], [1, 2, 0]];
    let mut fleets = Vec::new();
    for order in orders {
        let mut reports: Vec<Option<RunReport>> = vec![None, None, None];
        for s in order {
            reports[s] = Some(run_site(s));
        }
        let reports: Vec<RunReport> = reports.into_iter().map(Option::unwrap).collect();
        // A fresh planner per settlement: the warm-start chain must not
        // leak state across orders either.
        fleets.push(
            FleetPlanner::for_engine(&multi)
                .couple(&multi, reports)
                .unwrap(),
        );
    }
    assert_eq!(fleets[0], fleets[1]);
    assert_eq!(fleets[0], fleets[2]);
    // And the planned fleet is never worse than the greedy one.
    let posthoc = {
        let reports: Vec<RunReport> = (0..3).map(run_site).collect();
        multi.couple(reports).unwrap()
    };
    assert!(fleets[0].total_cost() <= posthoc.total_cost() + dpss_units::Money::from_dollars(1e-9));
}

/// The golden bytes of the canonical multi-site artifact: the first
/// variant's site and fleet rows of `dpss sweep --pack seasonal-calendar
/// --sites 3` at seed 42. Any drift in the pack seed schedule, the shared
/// market split, the controller or the settlement shows up here by name.
#[test]
fn seasonal_calendar_fleet_rows_match_golden_bytes() {
    let pack = ScenarioPack::builtin("seasonal-calendar").unwrap();
    let table = packs::pack_sweep_with(
        &ExperimentRunner::serial(),
        PAPER_SEED,
        &pack,
        3,
        &packs::default_interconnect(3),
        InterconnectMode::PostHoc,
    );
    // 4 variants × (3 sites + 1 fleet row).
    assert_eq!(table.rows.len(), 16);
    let golden: [[&str; 8]; 4] = [
        ["winter", "0", "33.304", "22.94", "120.5", "19.9", "-", "-"],
        ["winter", "1", "34.374", "24.88", "127.7", "6.7", "-", "-"],
        ["winter", "2", "35.517", "23.92", "128.8", "22.0", "-", "-"],
        [
            "winter", "fleet", "102.407", "23.94", "377.1", "48.6", "12.49", "586.36",
        ],
    ];
    for (row, want) in table.rows.iter().take(4).zip(&golden) {
        assert_eq!(row, want, "seasonal-calendar golden bytes drifted");
    }
}

/// Coordinated dispatch couples the sites through directives, but only
/// *between* frames: within a frame the sites are independent, so the
/// order in which they step through a frame is immaterial. This test
/// drives the lockstep loop by hand through the public stepping API
/// (`Engine::begin` / `outlook_at` / `step_frame` / `exchange_at`) with
/// a scrambled within-frame site order and must reproduce
/// `MultiSiteEngine::run_with` exactly — reports, settlement totals and
/// all. Runs on the acceptance scenario (stressed price-spike over the
/// lossy ring), where directives demonstrably fire.
#[test]
fn coordinated_run_is_invariant_to_within_frame_site_order() {
    let clock = SlotClock::icdcs13_month();
    let params = SimParams::icdcs13();
    let pack = ScenarioPack::builtin("price-spike").unwrap();
    let stressed = 3usize;
    let engines: Vec<Engine> = (0..3)
        .map(|s| {
            Engine::new(
                params,
                pack.generate_site(&clock, PAPER_SEED, stressed, s).unwrap(),
            )
            .unwrap()
        })
        .collect();
    let ring = Interconnect::ring(3, Energy::from_mwh(2.0))
        .unwrap()
        .with_uniform_loss(0.05)
        .unwrap()
        .with_uniform_wheeling(Price::from_dollars_per_mwh(2.0))
        .unwrap();
    let multi = MultiSiteEngine::new(engines)
        .unwrap()
        .with_interconnect(ring)
        .unwrap();

    // Canonical: the engine's own lockstep loop (site order 0, 1, 2).
    let mut canonical_ctls: Vec<Box<dyn Controller>> = (0..3)
        .map(|_| {
            Box::new(SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap())
                as Box<dyn Controller>
        })
        .collect();
    let mut canonical_dispatcher = FleetPlanner::for_engine(&multi).with_coordination(true);
    let canonical = multi
        .run_with(&mut canonical_ctls, &mut canonical_dispatcher)
        .unwrap();
    assert!(
        canonical.energy_transferred > Energy::ZERO,
        "test premise: the acceptance scenario settles energy"
    );

    // Manual: same loop, sites stepped 2, 0, 1 within every frame.
    let mut ctls: Vec<SmartDpss> = (0..3)
        .map(|_| SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap())
        .collect();
    let mut planner = FleetPlanner::for_engine(&multi).with_coordination(true);
    let mut runs: Vec<_> = multi.sites().iter().map(|s| s.begin().unwrap()).collect();
    let mut total = FrameSettlement::default();
    for frame in 0..clock.frames() {
        let outlook = multi.outlook_at(frame, &runs);
        let directives = planner.direct(&outlook);
        assert_eq!(directives.len(), 3);
        for &s in &[2usize, 0, 1] {
            ctls[s].receive_directive(&directives[s]);
            runs[s].step_frame(&mut ctls[s]).unwrap();
        }
        let ex = multi.exchange_at(frame, &runs).unwrap();
        let settled = planner.settle(&ex);
        total.sent += settled.sent;
        total.delivered += settled.delivered;
        total.savings += settled.savings;
        total.wheeling += settled.wheeling;
    }
    let manual: Vec<RunReport> = runs.into_iter().map(|r| r.finish().unwrap()).collect();
    assert_eq!(manual, canonical.sites);
    assert_eq!(total.sent, canonical.energy_transferred);
    assert_eq!(total.delivered, canonical.energy_delivered);
    assert_eq!(total.savings, canonical.transfer_savings);
    assert_eq!(total.wheeling, canonical.wheeling_cost);
}

/// The fleet-scale determinism contract of the parallel stepping path:
/// a 100-site lossy ring, coordinated, over the paper month —
///
/// * serial (`threads = 1`, the default) vs `with_threads(8)` must be
///   byte-identical: thread scheduling never moves a byte of any report
///   or settlement aggregate;
/// * a hand-driven lockstep loop stepping the sites in a scrambled
///   within-frame order (a fixed 37-stride permutation) must reproduce
///   `run_with` exactly — the PR-5 order-immateriality proof, now at the
///   scale the parallel fan-out actually targets.
///
/// At 100 sites the planner's `Auto` solver path resolves to the sparse
/// network simplex, so this also pins the network path end to end.
#[test]
fn fleet_scale_100_site_ring_is_deterministic_across_threads_and_order() {
    let clock = SlotClock::icdcs13_month();
    let params = SimParams::icdcs13();
    let pack = ScenarioPack::builtin("price-spike").unwrap();
    let stressed = 3usize;
    let sites = 100usize;
    let engines: Vec<Engine> = (0..sites)
        .map(|s| {
            Engine::new(
                params,
                pack.generate_site(&clock, PAPER_SEED, stressed, s).unwrap(),
            )
            .unwrap()
        })
        .collect();
    let ring = Interconnect::ring(sites, Energy::from_mwh(2.0))
        .unwrap()
        .with_uniform_loss(0.05)
        .unwrap()
        .with_uniform_wheeling(Price::from_dollars_per_mwh(2.0))
        .unwrap();
    let multi = MultiSiteEngine::new(engines)
        .unwrap()
        .with_interconnect(ring)
        .unwrap();
    let fresh_ctls = || -> Vec<Box<dyn Controller>> {
        (0..sites)
            .map(|_| {
                Box::new(SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap())
                    as Box<dyn Controller>
            })
            .collect()
    };

    let mut serial_ctls = fresh_ctls();
    let mut serial_dispatcher = FleetPlanner::for_engine(&multi).with_coordination(true);
    let serial = multi
        .run_with(&mut serial_ctls, &mut serial_dispatcher)
        .unwrap();
    assert!(
        serial.energy_transferred > Energy::ZERO,
        "test premise: the stressed ring settles energy at scale"
    );

    let threaded_engine = multi.clone().with_threads(8);
    let mut threaded_ctls = fresh_ctls();
    let mut threaded_dispatcher =
        FleetPlanner::for_engine(&threaded_engine).with_coordination(true);
    let threaded = threaded_engine
        .run_with(&mut threaded_ctls, &mut threaded_dispatcher)
        .unwrap();
    assert_eq!(serial, threaded, "threads = 8 must not move a byte");

    // Scrambled within-frame order: site k steps in position (k·37 + 11)
    // mod 100 (37 is coprime with 100, so this is a permutation).
    let order: Vec<usize> = (0..sites).map(|k| (k * 37 + 11) % sites).collect();
    let mut ctls: Vec<SmartDpss> = (0..sites)
        .map(|_| SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap())
        .collect();
    let mut planner = FleetPlanner::for_engine(&multi).with_coordination(true);
    let mut runs: Vec<_> = multi.sites().iter().map(|s| s.begin().unwrap()).collect();
    let mut total = FrameSettlement::default();
    for frame in 0..clock.frames() {
        let outlook = multi.outlook_at(frame, &runs);
        let directives = planner.direct(&outlook);
        for &s in &order {
            if !directives.is_empty() {
                ctls[s].receive_directive(&directives[s]);
            }
            runs[s].step_frame(&mut ctls[s]).unwrap();
        }
        let ex = multi.exchange_at(frame, &runs).unwrap();
        let settled = planner.settle(&ex);
        total.sent += settled.sent;
        total.delivered += settled.delivered;
        total.savings += settled.savings;
        total.wheeling += settled.wheeling;
    }
    let manual: Vec<RunReport> = runs.into_iter().map(|r| r.finish().unwrap()).collect();
    assert_eq!(manual, serial.sites);
    assert_eq!(total.sent, serial.energy_transferred);
    assert_eq!(total.delivered, serial.energy_delivered);
    assert_eq!(total.savings, serial.transfer_savings);
    assert_eq!(total.wheeling, serial.wheeling_cost);
}

/// The coordinated-mode goldens next to the planned one: the `calm` and
/// `stressed` fleet rows of `dpss sweep --pack price-spike --sites 3
/// --dispatch coordinated` at seed 42. On the frictionless pooled
/// default, calm's running-average price never clears the procure
/// margin, so its directives stay inert and the row is byte-identical
/// to the planned golden — pinning inertness is the point. Stressed
/// clears it: the directives fire and its fleet row *moves* relative to
/// planned (more energy transferred, more displaced cost).
#[test]
fn price_spike_coordinated_fleet_rows_match_golden_bytes() {
    let pack = ScenarioPack::builtin("price-spike").unwrap();
    let table = packs::pack_sweep_with(
        &ExperimentRunner::serial(),
        PAPER_SEED,
        &pack,
        3,
        &packs::default_interconnect(3),
        DispatchMode::Coordinated,
    );
    assert_eq!(table.rows.len(), 16);
    let calm_fleet: [&str; 8] = [
        "calm", "fleet", "100.217", "22.06", "430.4", "70.9", "25.95", "1266.45",
    ];
    assert_eq!(
        table.rows[3], calm_fleet,
        "calm coordinated golden bytes drifted (should equal the planned golden: inert directives)"
    );
    let stressed_fleet: [&str; 8] = [
        "stressed", "fleet", "100.971", "20.65", "484.9", "114.6", "31.96", "1748.91",
    ];
    assert_eq!(
        table.rows[15], stressed_fleet,
        "stressed coordinated golden bytes drifted"
    );
}

/// The planned-mode golden next to the post-hoc one: the first variant of
/// `dpss sweep --pack price-spike --sites 3 --interconnect planned` at
/// seed 42. Pins the planner's flow LP end to end (site seeds → SmartDPSS
/// → frame exchanges → warm-started settlement).
#[test]
fn price_spike_planned_fleet_rows_match_golden_bytes() {
    let pack = ScenarioPack::builtin("price-spike").unwrap();
    let table = packs::pack_sweep_with(
        &ExperimentRunner::serial(),
        PAPER_SEED,
        &pack,
        3,
        &packs::default_interconnect(3),
        InterconnectMode::Planned,
    );
    assert_eq!(table.rows.len(), 16);
    let golden: [[&str; 8]; 4] = [
        ["calm", "0", "32.843", "23.07", "146.1", "10.5", "-", "-"],
        ["calm", "1", "33.984", "20.00", "171.6", "34.3", "-", "-"],
        ["calm", "2", "35.093", "23.16", "112.8", "26.2", "-", "-"],
        [
            "calm", "fleet", "100.217", "22.06", "430.4", "70.9", "25.95", "1266.45",
        ],
    ];
    for (row, want) in table.rows.iter().take(4).zip(&golden) {
        assert_eq!(row, want, "price-spike planned golden bytes drifted");
    }
}
