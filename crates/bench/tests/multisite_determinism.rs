//! Multi-site determinism contracts, run in release mode by CI next to
//! the sweep-determinism job:
//!
//! * pack sweeps (the `dpss sweep --pack` tables) are byte-identical for
//!   `--threads 1` vs `8`;
//! * the fleet settlement is independent of site-execution order — the
//!   per-site runs can be computed in any order (or on any thread) and
//!   [`MultiSiteEngine::couple`] still produces the identical aggregate;
//! * one fleet row of the canonical `seasonal-calendar --sites 3` sweep
//!   is pinned byte-for-byte, so the new workload class has a golden of
//!   its own next to the Fig. 6 one.

use dpss_bench::{packs, ExperimentRunner, PAPER_SEED};
use dpss_core::SmartDpssConfig;
use dpss_sim::{Engine, MultiSiteEngine, RunReport, SimParams};
use dpss_traces::ScenarioPack;
use dpss_units::{Energy, SlotClock};

#[test]
fn pack_sweep_threads_1_and_8_are_identical() {
    let pack = ScenarioPack::builtin("seasonal-calendar").unwrap();
    let serial = packs::pack_sweep_with(
        &ExperimentRunner::serial(),
        PAPER_SEED,
        &pack,
        3,
        packs::default_transfer_cap(),
    );
    let threaded = packs::pack_sweep_with(
        &ExperimentRunner::new(8),
        PAPER_SEED,
        &pack,
        3,
        packs::default_transfer_cap(),
    );
    assert_eq!(serial, threaded);
}

#[test]
fn pack_overview_threads_1_and_8_are_identical() {
    let serial = packs::pack_overview_with(&ExperimentRunner::serial(), PAPER_SEED);
    let threaded = packs::pack_overview_with(&ExperimentRunner::new(8), PAPER_SEED);
    assert_eq!(serial, threaded);
}

#[test]
fn fleet_settlement_is_independent_of_site_execution_order() {
    let clock = SlotClock::icdcs13_month();
    let params = SimParams::icdcs13();
    let pack = ScenarioPack::builtin("renewable-drought").unwrap();
    let sites = 3usize;
    let engines: Vec<Engine> = (0..sites)
        .map(|s| {
            Engine::new(
                params,
                pack.generate_site(&clock, PAPER_SEED, 1, s).unwrap(),
            )
            .unwrap()
        })
        .collect();
    let multi = MultiSiteEngine::new(engines)
        .unwrap()
        .with_transfer_cap(Energy::from_mwh(2.0))
        .unwrap();

    let run_site = |s: usize| -> RunReport {
        let engine = &multi.sites()[s];
        let mut ctl =
            dpss_core::SmartDpss::new(SmartDpssConfig::icdcs13(), params, engine.truth().clock)
                .unwrap();
        engine.run(&mut ctl).unwrap()
    };

    // Three execution orders, one settlement each: all must agree.
    let orders: [[usize; 3]; 3] = [[0, 1, 2], [2, 1, 0], [1, 2, 0]];
    let mut fleets = Vec::new();
    for order in orders {
        let mut reports: Vec<Option<RunReport>> = vec![None, None, None];
        for s in order {
            reports[s] = Some(run_site(s));
        }
        let reports: Vec<RunReport> = reports.into_iter().map(Option::unwrap).collect();
        fleets.push(multi.couple(reports).unwrap());
    }
    assert_eq!(fleets[0], fleets[1]);
    assert_eq!(fleets[0], fleets[2]);
}

/// The golden bytes of the canonical multi-site artifact: the first
/// variant's site and fleet rows of `dpss sweep --pack seasonal-calendar
/// --sites 3` at seed 42. Any drift in the pack seed schedule, the shared
/// market split, the controller or the settlement shows up here by name.
#[test]
fn seasonal_calendar_fleet_rows_match_golden_bytes() {
    let pack = ScenarioPack::builtin("seasonal-calendar").unwrap();
    let table = packs::pack_sweep_with(
        &ExperimentRunner::serial(),
        PAPER_SEED,
        &pack,
        3,
        packs::default_transfer_cap(),
    );
    // 4 variants × (3 sites + 1 fleet row).
    assert_eq!(table.rows.len(), 16);
    let golden: [[&str; 8]; 4] = [
        ["winter", "0", "33.304", "22.94", "120.5", "19.9", "-", "-"],
        ["winter", "1", "34.374", "24.88", "127.7", "6.7", "-", "-"],
        ["winter", "2", "35.517", "23.92", "128.8", "22.0", "-", "-"],
        [
            "winter", "fleet", "102.407", "23.94", "377.1", "48.6", "12.49", "586.36",
        ],
    ];
    for (row, want) in table.rows.iter().take(4).zip(&golden) {
        assert_eq!(row, want, "seasonal-calendar golden bytes drifted");
    }
}
