//! Dense-vs-network solver-path parity across the whole builtin roster:
//! for every variant of every builtin scenario pack, a 4-site lossy
//! wheeled mesh settled with [`SolverPath::Dense`] and with
//! [`SolverPath::Network`] must reach the same per-run net value
//! (transfer savings minus wheeling — the settlement LP's objective) to
//! 1e-9. The sent/savings split of a degenerate tie may differ by
//! optimal vertex; the optimum itself may not. Together with the
//! randomized flow property suite in `dpss-lp` this is the acceptance
//! evidence that the sparse network simplex is a drop-in replacement for
//! the dense tableau on fleet settlement work.

use dpss_bench::PAPER_SEED;
use dpss_core::{FleetPlanner, SmartDpss, SmartDpssConfig, SolverPath};
use dpss_sim::{Engine, Interconnect, MultiSiteEngine, RunReport, SimParams};
use dpss_traces::ScenarioPack;
use dpss_units::{Energy, Price, SlotClock};

#[test]
fn network_settlement_matches_dense_on_all_builtin_pack_variants() {
    let clock = SlotClock::icdcs13_month();
    let params = SimParams::icdcs13();
    let sites = 4usize;
    let mut variants_checked = 0usize;
    let mut transferred = Energy::ZERO;
    for &name in ScenarioPack::builtin_names() {
        let pack = ScenarioPack::builtin(name).unwrap();
        for v in 0..pack.len() {
            let label = pack.variant(v).unwrap().0.to_owned();
            let engines: Vec<Engine> = (0..sites)
                .map(|s| {
                    Engine::new(
                        params,
                        pack.generate_site(&clock, PAPER_SEED, v, s).unwrap(),
                    )
                    .unwrap()
                })
                .collect();
            let mesh = Interconnect::mesh(sites, Energy::from_mwh(2.0))
                .unwrap()
                .with_uniform_loss(0.05)
                .unwrap()
                .with_uniform_wheeling(Price::from_dollars_per_mwh(2.0))
                .unwrap();
            let multi = MultiSiteEngine::new(engines)
                .unwrap()
                .with_interconnect(mesh)
                .unwrap();
            let reports: Vec<RunReport> = multi
                .sites()
                .iter()
                .map(|engine| {
                    let mut ctl =
                        SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap();
                    engine.run(&mut ctl).unwrap()
                })
                .collect();
            let dense = FleetPlanner::for_engine(&multi)
                .with_solver_path(SolverPath::Dense)
                .couple(&multi, reports.clone())
                .unwrap();
            let network = FleetPlanner::for_engine(&multi)
                .with_solver_path(SolverPath::Network)
                .couple(&multi, reports)
                .unwrap();
            let dense_net = dense.transfer_savings - dense.wheeling_cost;
            let network_net = network.transfer_savings - network.wheeling_cost;
            assert!(
                (dense_net.dollars() - network_net.dollars()).abs() < 1e-9,
                "{name}/{label}: dense net {} vs network net {}",
                dense_net.dollars(),
                network_net.dollars()
            );
            // The non-settlement aggregates never touch the LP, so the
            // paths must agree on them byte for byte.
            assert_eq!(dense.sites, network.sites, "{name}/{label}");
            transferred += network.energy_transferred;
            variants_checked += 1;
        }
    }
    assert_eq!(
        variants_checked, 20,
        "the builtin roster is the 20-variant acceptance matrix"
    );
    assert!(
        transferred > Energy::ZERO,
        "test premise: the lossy mesh settles energy somewhere in the roster"
    );
}
