//! Threaded-determinism and seed-stability contracts of the experiment
//! runner.
//!
//! * Every figure table must be identical for any `--threads` value —
//!   results land in per-cell slots keyed by cell index, so scheduling
//!   cannot reorder or perturb them. CI runs this suite in release mode.
//! * The runner port must not shift any figure's seed stream: the Fig. 6
//!   V-sweep rows are pinned byte-for-byte to the values the
//!   pre-runner (hand-rolled loop) code produced at the canonical seed.

use dpss_bench::{figures, ExperimentRunner, PAPER_SEED};

#[test]
fn fig6_v_threads_1_and_8_are_identical() {
    let serial = figures::fig6_v_with(
        &ExperimentRunner::serial(),
        PAPER_SEED,
        &figures::FIG6_V_GRID,
        true,
    );
    let threaded = figures::fig6_v_with(
        &ExperimentRunner::new(8),
        PAPER_SEED,
        &figures::FIG6_V_GRID,
        true,
    );
    assert_eq!(serial, threaded);
}

#[test]
fn fig6_t_threads_1_and_8_are_identical() {
    // Small-T subset: each cell regenerates traces on its own calendar,
    // which is exactly where a scheduling-dependent seed stream would
    // show up.
    let ts = [3usize, 6, 12];
    let serial = figures::fig6_t_with(&ExperimentRunner::serial(), PAPER_SEED, &ts, 6);
    let threaded = figures::fig6_t_with(&ExperimentRunner::new(8), PAPER_SEED, &ts, 6);
    assert_eq!(serial, threaded);
}

#[test]
fn fig8_and_fig9_threads_1_and_8_are_identical() {
    let serial = ExperimentRunner::serial();
    let threaded = ExperimentRunner::new(8);
    let (pen_s, var_s) = figures::fig8_with(&serial, PAPER_SEED, &[0.0, 0.5, 1.0], &[0.5, 1.5]);
    let (pen_t, var_t) = figures::fig8_with(&threaded, PAPER_SEED, &[0.0, 0.5, 1.0], &[0.5, 1.5]);
    assert_eq!(pen_s, pen_t);
    assert_eq!(var_s, var_t);
    let nine_s = figures::fig9_with(&serial, PAPER_SEED, 0.5, &[0.25, 1.0]);
    let nine_t = figures::fig9_with(&threaded, PAPER_SEED, 0.5, &[0.25, 1.0]);
    assert_eq!(nine_s, nine_t);
}

#[test]
fn roster_figures_threads_1_and_8_are_identical() {
    let serial = ExperimentRunner::serial();
    let threaded = ExperimentRunner::new(8);
    assert_eq!(
        figures::ablations_with(&serial, PAPER_SEED),
        figures::ablations_with(&threaded, PAPER_SEED)
    );
    assert_eq!(
        figures::fig7_battery_with(&serial, PAPER_SEED, &[0.0, 15.0]),
        figures::fig7_battery_with(&threaded, PAPER_SEED, &[0.0, 15.0])
    );
}

/// The satellite contract of the runner port: no figure's seed stream
/// shifted. These rows are the byte-for-byte output of the pre-runner
/// `fig6_v` implementation (hand-rolled sequential loops, cold LP
/// solves) at the canonical seed on the vendored RNG stream.
#[test]
fn fig6_v_rows_match_pre_runner_golden_bytes() {
    let table = figures::fig6_v_with(
        &ExperimentRunner::serial(),
        PAPER_SEED,
        &figures::FIG6_V_GRID,
        true,
    );
    let golden: [[&str; 7]; 8] = [
        [
            "0.05", "39.033", "1.85", "28.817", "23.66", "42.347", "1.00",
        ],
        ["0.1", "37.824", "3.40", "28.817", "23.66", "42.347", "1.00"],
        [
            "0.25", "35.672", "7.30", "28.817", "23.66", "42.347", "1.00",
        ],
        [
            "0.5", "33.675", "11.45", "28.817", "23.66", "42.347", "1.00",
        ],
        ["1", "31.684", "20.44", "28.817", "23.66", "42.347", "1.00"],
        ["2", "29.267", "48.31", "28.817", "23.66", "42.347", "1.00"],
        ["3", "29.248", "72.42", "28.817", "23.66", "42.347", "1.00"],
        ["5", "28.575", "138.72", "28.817", "23.66", "42.347", "1.00"],
    ];
    assert_eq!(table.rows.len(), golden.len());
    for (row, want) in table.rows.iter().zip(&golden) {
        assert_eq!(row, want, "fig6_v row drifted from the golden bytes");
    }
}
