//! Determinism contracts for the workload-routing layer, run in release
//! mode by CI next to the multi-site determinism job:
//!
//! * the routed comparison table (`dpss sweep --pack … --routing
//!   co-optimized`) is byte-identical for `--threads 1` vs `8`;
//! * the routed lockstep loop is invariant to the within-frame site
//!   order: a hand-driven loop stepping sites in a scrambled order
//!   through the public API (`frame_load` → annotated `outlook_at` →
//!   `direct` → `step_frame` → `exchange_at` → `settle_routed` →
//!   `settle`) reproduces [`MultiSiteEngine::run_routed`] exactly —
//!   per-site reports, settlement aggregates and the workload ledger.

use dpss_bench::{routing, ExperimentRunner, PAPER_SEED};
use dpss_core::{FleetPlanner, RoutingPlanner, SmartDpss, SmartDpssConfig};
use dpss_sim::{
    Controller, Engine, FrameSettlement, MultiSiteEngine, RoutedDispatcher, RoutingConfig,
    RunReport, SimParams,
};
use dpss_traces::ScenarioPack;
use dpss_units::{Energy, SlotClock};

#[test]
fn routed_sweep_threads_1_and_8_are_identical() {
    let pack = ScenarioPack::builtin("traffic-wave").unwrap();
    let ic = routing::routing_interconnect(3);
    let config = RoutingConfig::icdcs13();
    let serial = routing::routing_sweep_with(
        &ExperimentRunner::serial(),
        PAPER_SEED,
        &pack,
        3,
        &ic,
        config,
    );
    let threaded =
        routing::routing_sweep_with(&ExperimentRunner::new(8), PAPER_SEED, &pack, 3, &ic, config);
    assert_eq!(serial, threaded);
}

/// The acceptance fleet: 3 sites on the flash-crowd variant of the
/// traffic-wave pack over the lossy wheeled ring, full paper month.
fn flash_crowd_fleet(clock: &SlotClock) -> MultiSiteEngine {
    let params = SimParams::icdcs13();
    let pack = ScenarioPack::builtin("traffic-wave").unwrap();
    let flash = 2usize;
    let engines: Vec<Engine> = (0..3)
        .map(|s| {
            Engine::new(
                params,
                pack.generate_site(clock, PAPER_SEED, flash, s).unwrap(),
            )
            .unwrap()
        })
        .collect();
    MultiSiteEngine::new(engines)
        .unwrap()
        .with_interconnect(routing::routing_interconnect(3))
        .unwrap()
}

#[test]
fn routed_run_is_invariant_to_within_frame_site_order() {
    let clock = SlotClock::icdcs13_month();
    let params = SimParams::icdcs13();
    let config = RoutingConfig::icdcs13();
    let multi = flash_crowd_fleet(&clock);

    // Canonical: the engine's own routed loop (site order 0, 1, 2).
    let mut canonical_ctls: Vec<Box<dyn Controller>> = (0..3)
        .map(|_| {
            Box::new(SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap())
                as Box<dyn Controller>
        })
        .collect();
    let mut canonical_dispatcher = RoutingPlanner::new(
        FleetPlanner::for_engine(&multi).with_coordination(true),
        config,
    )
    .unwrap();
    let canonical = multi
        .run_routed(&mut canonical_ctls, &mut canonical_dispatcher, config)
        .unwrap();
    assert!(
        canonical.load.arrived > Energy::ZERO,
        "test premise: the flash crowd routes real work"
    );
    assert!(
        canonical.load.absorbed + canonical.load.migrated > Energy::ZERO,
        "test premise: the router absorbs or migrates at least some of it"
    );

    // Manual: the same loop through the public API, sites stepped
    // 2, 0, 1 within every frame.
    let mut workload = multi.workload_ledger(config).unwrap();
    let mut routed = RoutingPlanner::new(
        FleetPlanner::for_engine(&multi).with_coordination(true),
        config,
    )
    .unwrap();
    let mut ctls: Vec<SmartDpss> = (0..3)
        .map(|_| SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap())
        .collect();
    let mut runs: Vec<_> = multi.sites().iter().map(|s| s.begin().unwrap()).collect();
    let mut total = FrameSettlement::default();
    for frame in 0..clock.frames() {
        let load = workload.frame_load(frame);
        let mut outlook = multi.outlook_at(frame, &runs);
        for (site, (avail, due)) in outlook
            .sites
            .iter_mut()
            .zip(load.available.iter().zip(&load.due))
        {
            site.load_backlog = *avail;
            site.load_due = *due;
        }
        let directives = routed.direct(&outlook);
        for &s in &[2usize, 0, 1] {
            if !directives.is_empty() {
                ctls[s].receive_directive(&directives[s]);
            }
            runs[s].step_frame(&mut ctls[s]).unwrap();
        }
        let ex = multi.exchange_at(frame, &runs).unwrap();
        let (settled, plan) = routed.settle_routed(&ex, &load);
        total.sent += settled.sent;
        total.delivered += settled.delivered;
        total.savings += settled.savings;
        total.wheeling += settled.wheeling;
        workload.settle(frame, &ex, &plan, multi.interconnect());
    }
    let manual: Vec<RunReport> = runs.into_iter().map(|r| r.finish().unwrap()).collect();
    let manual_load = workload.finish();
    assert_eq!(manual, canonical.sites);
    assert_eq!(manual_load, canonical.load);
    assert_eq!(total.sent, canonical.energy_transferred);
    assert_eq!(total.delivered, canonical.energy_delivered);
    assert_eq!(total.savings, canonical.transfer_savings);
    assert_eq!(total.wheeling, canonical.wheeling_cost);
}
