//! The CI scaling smoke gates: coordinated fleet months at 64, 256 and
//! 512 sites must complete inside hard wall-clock budgets in release
//! mode. The meshes are the worst-case topology (n × (n−1) directed
//! links in the settlement LP every frame), the 512-site ring is the
//! breadth canary (1024 links but a 1024-row basis). Together they keep
//! the fleet-scale path — factorized network simplex, eta-file warm
//! re-solves, threaded stepping — honest: a regression to dense-tableau
//! cost, quadratic rebuild work, or per-solve allocation churn blows a
//! budget long before it blows anyone's laptop.
//!
//! The budgets are deliberately loose (a shared CI runner is not a
//! bench rig): each release run takes a small fraction of its budget on
//! a warm container. In debug builds the tests are ignored — a
//! wall-clock contract on an unoptimized build measures the compiler,
//! not the code.

// audit:allow-file(wall-clock): this gate exists to bound wall-clock time; the timing is asserted against a budget, never fed into results

use std::time::Instant;

use dpss_bench::PAPER_SEED;
use dpss_core::{FleetPlanner, SmartDpss, SmartDpssConfig};
use dpss_sim::{Controller, Engine, Interconnect, MultiSiteEngine, SimParams};
use dpss_traces::ScenarioPack;
use dpss_units::{Energy, Price, SlotClock};

/// Runs one coordinated month of the price-spike stressed variant over
/// `topology` and asserts it fits `budget_secs`.
fn assert_month_fits(sites: usize, topology: Interconnect, budget_secs: f64, label: &str) {
    let clock = SlotClock::icdcs13_month();
    let params = SimParams::icdcs13();
    let pack = ScenarioPack::builtin("price-spike").unwrap();
    let stressed = 3usize;
    let engines: Vec<Engine> = (0..sites)
        .map(|s| {
            Engine::new(
                params,
                pack.generate_site(&clock, PAPER_SEED, stressed, s).unwrap(),
            )
            .unwrap()
        })
        .collect();
    let multi = MultiSiteEngine::new(engines)
        .unwrap()
        .with_interconnect(topology)
        .unwrap()
        .with_threads(8);
    let mut ctls: Vec<Box<dyn Controller>> = (0..sites)
        .map(|_| {
            Box::new(SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap())
                as Box<dyn Controller>
        })
        .collect();
    let mut dispatcher = FleetPlanner::for_engine(&multi).with_coordination(true);
    let start = Instant::now();
    let report = multi.run_with(&mut ctls, &mut dispatcher).unwrap();
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(report.sites.len(), sites);
    assert!(
        elapsed < budget_secs,
        "{label} coordinated month took {elapsed:.1}s (budget {budget_secs}s): \
         the fleet-scale path has regressed"
    );
}

fn lossy_wheeled(base: Interconnect) -> Interconnect {
    base.with_uniform_loss(0.05)
        .unwrap()
        .with_uniform_wheeling(Price::from_dollars_per_mwh(2.0))
        .unwrap()
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "wall-clock smoke gate is a release-mode contract"
)]
fn mesh_64_coordinated_month_fits_the_wall_clock_budget() {
    let mesh = lossy_wheeled(Interconnect::mesh(64, Energy::from_mwh(2.0)).unwrap());
    assert_month_fits(64, mesh, 120.0, "64-site mesh");
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "wall-clock smoke gate is a release-mode contract"
)]
fn mesh_256_coordinated_month_fits_the_wall_clock_budget() {
    // 256 × 255 = 65 280 directed links per settlement LP: the link-count
    // stress axis the factorized basis was built for.
    let mesh = lossy_wheeled(Interconnect::mesh(256, Energy::from_mwh(2.0)).unwrap());
    assert_month_fits(256, mesh, 300.0, "256-site mesh");
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "wall-clock smoke gate is a release-mode contract"
)]
fn ring_512_coordinated_month_fits_the_wall_clock_budget() {
    // 1024 links but a 1024-row basis: the row-count stress axis — the
    // eta file and refactorization cadence carry this one.
    let ring = lossy_wheeled(Interconnect::ring(512, Energy::from_mwh(2.0)).unwrap());
    assert_month_fits(512, ring, 300.0, "512-site ring");
}
