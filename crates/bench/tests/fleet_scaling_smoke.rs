//! The CI scaling smoke gate: a 64-site full-mesh coordinated month must
//! complete inside a hard wall-clock budget in release mode. The mesh is
//! the worst-case topology (64 × 63 = 4032 directed links in the
//! settlement LP every frame), so this is the canary that keeps the
//! fleet-scale path — sparse network simplex + threaded stepping —
//! honest: a regression to dense-tableau cost or quadratic rebuild work
//! blows the budget long before it blows anyone's laptop.
//!
//! The budget is deliberately loose (a shared CI runner is not a bench
//! rig): the release run takes well under ten seconds on a warm
//! container, the gate allows 120. In debug builds the test is ignored —
//! a wall-clock contract on an unoptimized build measures the compiler,
//! not the code.

// audit:allow-file(wall-clock): this gate exists to bound wall-clock time; the timing is asserted against a budget, never fed into results

use std::time::Instant;

use dpss_bench::PAPER_SEED;
use dpss_core::{FleetPlanner, SmartDpss, SmartDpssConfig};
use dpss_sim::{Controller, Engine, Interconnect, MultiSiteEngine, SimParams};
use dpss_traces::ScenarioPack;
use dpss_units::{Energy, Price, SlotClock};

const SITES: usize = 64;
const BUDGET_SECS: f64 = 120.0;

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "wall-clock smoke gate is a release-mode contract"
)]
fn mesh_64_coordinated_month_fits_the_wall_clock_budget() {
    let clock = SlotClock::icdcs13_month();
    let params = SimParams::icdcs13();
    let pack = ScenarioPack::builtin("price-spike").unwrap();
    let stressed = 3usize;
    let engines: Vec<Engine> = (0..SITES)
        .map(|s| {
            Engine::new(
                params,
                pack.generate_site(&clock, PAPER_SEED, stressed, s).unwrap(),
            )
            .unwrap()
        })
        .collect();
    let mesh = Interconnect::mesh(SITES, Energy::from_mwh(2.0))
        .unwrap()
        .with_uniform_loss(0.05)
        .unwrap()
        .with_uniform_wheeling(Price::from_dollars_per_mwh(2.0))
        .unwrap();
    let multi = MultiSiteEngine::new(engines)
        .unwrap()
        .with_interconnect(mesh)
        .unwrap()
        .with_threads(8);
    let mut ctls: Vec<Box<dyn Controller>> = (0..SITES)
        .map(|_| {
            Box::new(SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap())
                as Box<dyn Controller>
        })
        .collect();
    let mut dispatcher = FleetPlanner::for_engine(&multi).with_coordination(true);
    let start = Instant::now();
    let report = multi.run_with(&mut ctls, &mut dispatcher).unwrap();
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(report.sites.len(), SITES);
    assert!(
        elapsed < BUDGET_SECS,
        "64-site mesh coordinated month took {elapsed:.1}s (budget {BUDGET_SECS}s): \
         the fleet-scale path has regressed"
    );
}
