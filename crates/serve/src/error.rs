//! Hard failures of the serve layer.
//!
//! Protocol-level problems (malformed lines, out-of-order ticks, commands
//! sent in the wrong session state) never surface here — they become
//! [`Response::Error`](crate::protocol::Response::Error) lines on the wire
//! and the session keeps running. [`ServeError`] is reserved for conditions
//! that end (or refuse to start) a serve process: bad invocation, broken
//! I/O, and unusable snapshot state under `--resume`.

use std::error::Error;
use std::fmt;

/// A failure that terminates (or refuses to start) a serve process.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The caller's invocation was malformed (maps to exit code 2).
    Usage(String),
    /// An operating-system I/O operation failed (maps to exit code 1).
    Io {
        /// What the process was doing when the I/O failed.
        context: String,
        /// The operating system's description of the failure.
        message: String,
    },
    /// `--resume` was requested but the state directory holds no
    /// snapshot files at all.
    NoSnapshot {
        /// The state directory that was scanned.
        dir: String,
    },
    /// Every snapshot candidate in the state directory failed integrity
    /// checks (truncated writes, checksum mismatches, unparseable JSON).
    CorruptSnapshot {
        /// What was scanned and why nothing survived.
        message: String,
    },
    /// A snapshot passed its integrity check but was written by a
    /// different crate version or schema revision. Stale state is never
    /// silently reinterpreted; delete the state directory (or rerun with
    /// the matching binary) to proceed.
    StaleSnapshot {
        /// Schema revision recorded in the snapshot.
        found_schema: u32,
        /// Version salt recorded in the snapshot (hex).
        found_salt: String,
        /// Schema revision this binary writes.
        expected_schema: u32,
        /// Version salt this binary writes (hex).
        expected_salt: String,
    },
    /// A snapshot was intact on disk but its payload no longer describes
    /// a session this binary can reconstruct.
    InvalidSnapshot {
        /// Why reconstruction was refused.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Usage(message) => write!(f, "{message}"),
            ServeError::Io { context, message } => {
                write!(f, "i/o failure while {context}: {message}")
            }
            ServeError::NoSnapshot { dir } => {
                write!(f, "no snapshot found in state dir {dir}")
            }
            ServeError::CorruptSnapshot { message } => {
                write!(f, "corrupt snapshot state: {message}")
            }
            ServeError::StaleSnapshot {
                found_schema,
                found_salt,
                expected_schema,
                expected_salt,
            } => write!(
                f,
                "stale snapshot: written by schema v{found_schema} (salt {found_salt}) but this \
                 binary expects schema v{expected_schema} (salt {expected_salt}); delete the \
                 state directory or resume with the binary version that wrote it"
            ),
            ServeError::InvalidSnapshot { message } => {
                write!(f, "snapshot cannot be restored: {message}")
            }
        }
    }
}

impl Error for ServeError {}
