//! The `dpss-serve` binary: the streaming control daemon over
//! stdin/stdout or a Unix-domain socket, plus deterministic log replay.
//!
//! Exit contract: `0` on a clean session (EOF or `shutdown`), `1` on an
//! execution failure (I/O, unusable snapshot state), `2` on a usage
//! error. Diagnostics go to stderr prefixed `dpss-serve: error:`.

use std::io::{BufReader, Write};
use std::path::PathBuf;
use std::process::ExitCode;

use dpss_serve::{replay_file, serve, ServeError, ServeOptions};

const USAGE: &str = "\
usage: dpss-serve [--state-dir DIR] [--resume] [--log FILE] [--socket PATH]
       dpss-serve replay FILE [--state-dir DIR] [--log FILE]

The daemon speaks newline-delimited JSON: one request per line on the
way in, one response per line on the way out. See the crate docs for
the request grammar.

options:
  --state-dir DIR   enable the snapshot command, writing into DIR
  --resume          reconstruct the newest valid snapshot before serving
                    (requires --state-dir)
  --log FILE        append every request line to FILE (the replay log)
  --socket PATH     serve connections on a Unix-domain socket instead of
                    stdin/stdout; serving ends when a client sends
                    shutdown
  --help            print this help

subcommands:
  replay FILE       re-drive a recorded request log deterministically,
                    writing the response transcript to stdout
";

#[derive(Debug, Default)]
struct Args {
    replay: Option<PathBuf>,
    socket: Option<PathBuf>,
    options: ServeOptions,
    help: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.iter();
    let mut positional: Vec<&String> = Vec::new();
    let mut want_replay = false;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => args.help = true,
            "--resume" => args.options.resume = true,
            "--state-dir" => {
                let value = it.next().ok_or("--state-dir needs a directory")?;
                args.options.state_dir = Some(PathBuf::from(value));
            }
            "--log" => {
                let value = it.next().ok_or("--log needs a file path")?;
                args.options.log = Some(PathBuf::from(value));
            }
            "--socket" => {
                let value = it.next().ok_or("--socket needs a path")?;
                args.socket = Some(PathBuf::from(value));
            }
            "replay" if !want_replay && positional.is_empty() => want_replay = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown flag: {other}"));
            }
            _ => positional.push(arg),
        }
    }
    if want_replay {
        match positional.as_slice() {
            [file] => args.replay = Some(PathBuf::from(*file)),
            [] => return Err("replay needs a log file".to_owned()),
            _ => return Err("replay takes exactly one log file".to_owned()),
        }
    } else if let Some(stray) = positional.first() {
        return Err(format!("unexpected argument: {stray}"));
    }
    if args.options.resume && args.options.state_dir.is_none() {
        return Err("--resume requires --state-dir".to_owned());
    }
    if args.replay.is_some() && args.socket.is_some() {
        return Err("replay and --socket are mutually exclusive".to_owned());
    }
    if args.replay.is_some() && args.options.resume {
        return Err("replay re-derives state from the log; drop --resume".to_owned());
    }
    Ok(args)
}

fn serve_stdio(options: &ServeOptions) -> Result<(), ServeError> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = stdin.lock();
    let mut output = stdout.lock();
    serve(&mut input, &mut output, options).map(|_| ())
}

fn serve_socket(path: &PathBuf, options: &ServeOptions) -> Result<(), ServeError> {
    use std::os::unix::net::UnixListener;
    // A previous run's socket file would make bind fail; it cannot be a
    // live listener we care about, since each daemon owns its path.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path).map_err(|e| ServeError::Io {
        context: format!("binding unix socket {}", path.display()),
        message: e.to_string(),
    })?;
    loop {
        let (stream, _) = listener.accept().map_err(|e| ServeError::Io {
            context: "accepting a connection".to_owned(),
            message: e.to_string(),
        })?;
        let writer = stream.try_clone().map_err(|e| ServeError::Io {
            context: "cloning the connection stream".to_owned(),
            message: e.to_string(),
        })?;
        let mut input = BufReader::new(stream);
        let mut output = writer;
        let outcome = serve(&mut input, &mut output, options)?;
        if outcome.shutdown {
            let _ = std::fs::remove_file(path);
            return Ok(());
        }
    }
}

fn run(args: &Args) -> Result<(), ServeError> {
    if let Some(log) = &args.replay {
        let stdout = std::io::stdout();
        let mut output = stdout.lock();
        replay_file(log, &mut output, &args.options).map(|_| ())
    } else if let Some(socket) = &args.socket {
        serve_socket(socket, &args.options)
    } else {
        serve_stdio(&args.options)
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("dpss-serve: error: {message}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.help {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(ServeError::Usage(message)) => {
            eprintln!("dpss-serve: error: {message}");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
        Err(err) => {
            eprintln!("dpss-serve: error: {err}");
            let _ = std::io::stderr().flush();
            ExitCode::from(1)
        }
    }
}
