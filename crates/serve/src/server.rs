//! The request loop: one NDJSON line in, one NDJSON line out.
//!
//! [`serve`] drives a [`SessionServer`] over any `BufRead`/`Write`
//! pair — stdin/stdout, a Unix-socket stream, or in-memory buffers in
//! tests. [`replay_file`] is the same loop fed from a recorded request
//! log, which is what makes every session reproducible: replaying the
//! log deterministically re-derives every response, byte for byte.

use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};

use dpss_sim::RunReport;

use crate::error::ServeError;
use crate::protocol::{Fault, RawRequest, Response};
use crate::session::{Session, SessionConfig, SessionSnapshot, TickData};
use crate::snapshot::SnapshotStore;

/// How a serve loop should run.
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Where snapshots live; `None` disables the `snapshot` command.
    pub state_dir: Option<PathBuf>,
    /// Reconstruct the newest valid snapshot before reading requests.
    pub resume: bool,
    /// Append every request line to this file (the replay log).
    pub log: Option<PathBuf>,
}

/// What a finished serve loop saw.
#[derive(Debug, Clone, Default)]
pub struct ServeOutcome {
    /// Whether the client said `shutdown` (vs. just closing the pipe).
    pub shutdown: bool,
    /// Request lines processed.
    pub requests: u64,
    /// Requests answered with [`Response::Error`].
    pub errors: u64,
    /// The final single-site report, if the session finished.
    pub final_report: Option<RunReport>,
}

/// A stateful request handler: at most one live session plus the
/// snapshot store.
pub struct SessionServer {
    store: Option<SnapshotStore>,
    session: Option<Session>,
    final_report: Option<RunReport>,
}

impl std::fmt::Debug for SessionServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionServer")
            .field("has_session", &self.session.is_some())
            .field("has_store", &self.store.is_some())
            .finish_non_exhaustive()
    }
}

impl SessionServer {
    /// Creates a server, opening the state directory if one is given.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the state directory cannot be created.
    pub fn new(state_dir: Option<&Path>) -> Result<Self, ServeError> {
        let store = match state_dir {
            Some(dir) => Some(SnapshotStore::open(dir)?),
            None => None,
        };
        Ok(SessionServer {
            store,
            session: None,
            final_report: None,
        })
    }

    /// The live session, if any.
    #[must_use]
    pub fn session(&self) -> Option<&Session> {
        self.session.as_ref()
    }

    /// Takes the final report of a finished single-site session.
    pub fn take_final_report(&mut self) -> Option<RunReport> {
        self.final_report.take()
    }

    /// Reconstructs the newest valid snapshot as the live session.
    ///
    /// # Errors
    ///
    /// Hard [`ServeError`]s: no state dir configured, no snapshot, all
    /// candidates corrupt, a stale snapshot, or a payload the session
    /// layer refuses.
    pub fn resume_latest(&mut self) -> Result<Response, ServeError> {
        let Some(store) = &self.store else {
            return Err(ServeError::Usage(
                "--resume requires --state-dir".to_owned(),
            ));
        };
        let loaded = store.load_latest()?;
        let snapshot: SessionSnapshot =
            serde_json::from_str(&loaded.payload).map_err(|e| ServeError::InvalidSnapshot {
                message: format!("payload does not parse: {e}"),
            })?;
        let session = Session::restore(snapshot)
            .map_err(|f| ServeError::InvalidSnapshot { message: f.message })?;
        let response = Response::Resumed {
            frame: session.next_frame(),
            frames: session.frames(),
            discarded: loaded.discarded,
        };
        self.session = Some(session);
        Ok(response)
    }

    /// Handles one request line; returns the response and whether the
    /// client asked to shut down. Never fails: every problem becomes a
    /// [`Response::Error`] and the session survives.
    pub fn handle_line(&mut self, line: &str) -> (Response, bool) {
        match self.dispatch(line) {
            Ok(pair) => pair,
            Err(fault) => (fault.into_response(), false),
        }
    }

    fn dispatch(&mut self, line: &str) -> Result<(Response, bool), Fault> {
        let raw: RawRequest = serde_json::from_str(line)
            .map_err(|e| Fault::new("parse", format!("unparseable request line: {e}")))?;
        let Some(cmd) = raw.cmd.clone() else {
            return Err(Fault::new("protocol", "request is missing the cmd field"));
        };
        match cmd.as_str() {
            "init" => {
                if self.session.is_some() {
                    return Err(Fault::new(
                        "session",
                        "a session is already active; one session per connection",
                    ));
                }
                let config = SessionConfig::from_request(&raw)?;
                let session = Session::new(config)?;
                let response = Response::Started {
                    mode: session.config().mode.clone(),
                    controller: session.config().controller.clone(),
                    frames: session.frames(),
                    slots_per_frame: session.config().slots_per_frame,
                    sites: session.config().sites,
                };
                self.session = Some(session);
                Ok((response, false))
            }
            "tick" => {
                let session = self.session_mut()?;
                let Session::Single(single) = session else {
                    return Err(Fault::new(
                        "protocol",
                        "fleet sessions advance via step, not tick",
                    ));
                };
                let Some(frame) = raw.frame else {
                    return Err(Fault::new("protocol", "tick is missing its frame number"));
                };
                let data = TickData::from_request(&raw, single.config.slots_per_frame)?;
                let step = single.tick(frame, &data)?;
                Ok((
                    Response::Ticked {
                        frame: step.frame,
                        purchased_lt_mwh: step.purchased_lt_mwh,
                        purchased_rt_mwh: step.purchased_rt_mwh,
                        cost_dollars: step.cost_dollars,
                        battery_mwh: step.battery_mwh,
                        backlog_mwh: step.backlog_mwh,
                        done: step.done,
                    },
                    false,
                ))
            }
            "step" => match self.session_mut()? {
                Session::Single(single) => {
                    if single.config.mode == "stream" {
                        return Err(Fault::new(
                            "protocol",
                            "stream sessions advance via tick, not step",
                        ));
                    }
                    let step = single.step()?;
                    Ok((
                        Response::Stepped {
                            frame: step.frame,
                            purchased_lt_mwh: step.purchased_lt_mwh,
                            purchased_rt_mwh: step.purchased_rt_mwh,
                            cost_dollars: step.cost_dollars,
                            battery_mwh: step.battery_mwh,
                            backlog_mwh: step.backlog_mwh,
                            done: step.done,
                        },
                        false,
                    ))
                }
                Session::Fleet(fleet) => {
                    let step = fleet.step()?;
                    Ok((
                        Response::FleetStepped {
                            frame: step.frame,
                            cost_dollars: step.cost_dollars,
                            transferred_mwh: step.transferred_mwh,
                            savings_dollars: step.savings_dollars,
                            directives: step.directives,
                            done: step.done,
                        },
                        false,
                    ))
                }
            },
            "snapshot" => {
                let Some(store) = self.store.clone() else {
                    return Err(Fault::new(
                        "state",
                        "snapshots are disabled; start the daemon with --state-dir",
                    ));
                };
                let session = self.session_ref()?;
                let payload = serde_json::to_string(&session.snapshot()).map_err(|e| {
                    Fault::new("state", format!("snapshot serialization failed: {e}"))
                })?;
                let frame = session.next_frame();
                let (path, checksum) = store
                    .write(frame, &payload)
                    .map_err(|e| Fault::new("io", e.to_string()))?;
                Ok((
                    Response::Snapshotted {
                        frame,
                        path: path.display().to_string(),
                        checksum,
                    },
                    false,
                ))
            }
            "status" => {
                let session = self.session_ref()?;
                Ok((
                    Response::Status {
                        mode: session.config().mode.clone(),
                        controller: session.config().controller.clone(),
                        frame: session.next_frame(),
                        frames: session.frames(),
                        sites: session.config().sites,
                        done: session.is_done(),
                    },
                    false,
                ))
            }
            "finish" => match self.session_ref()? {
                Session::Single(single) => {
                    let report = single.finish()?;
                    self.final_report = Some(report.clone());
                    Ok((Response::Finished { report }, false))
                }
                Session::Fleet(fleet) => {
                    let report = fleet.finish()?;
                    Ok((
                        Response::FleetFinished {
                            transferred_mwh: report.energy_transferred.mwh(),
                            delivered_mwh: report.energy_delivered.mwh(),
                            savings_dollars: report.transfer_savings.dollars(),
                            wheeling_dollars: report.wheeling_cost.dollars(),
                            total_cost_dollars: report.total_cost().dollars(),
                            sites: report.sites,
                        },
                        false,
                    ))
                }
            },
            "shutdown" => Ok((
                Response::Bye {
                    reason: "client shutdown".to_owned(),
                },
                true,
            )),
            other => Err(Fault::new(
                "protocol",
                format!("unknown message type: {other}"),
            )),
        }
    }

    fn session_mut(&mut self) -> Result<&mut Session, Fault> {
        self.session
            .as_mut()
            .ok_or_else(|| Fault::new("session", "no session; send init first"))
    }

    fn session_ref(&self) -> Result<&Session, Fault> {
        self.session
            .as_ref()
            .ok_or_else(|| Fault::new("session", "no session; send init first"))
    }
}

fn emit(output: &mut dyn Write, response: &Response) -> Result<(), ServeError> {
    let text = serde_json::to_string(response).map_err(|e| ServeError::Io {
        context: "serializing a response".to_owned(),
        message: e.to_string(),
    })?;
    output
        .write_all(text.as_bytes())
        .and_then(|()| output.write_all(b"\n"))
        .and_then(|()| output.flush())
        .map_err(|e| ServeError::Io {
            context: "writing a response".to_owned(),
            message: e.to_string(),
        })
}

/// Runs the request loop until the input closes or the client says
/// `shutdown`.
///
/// The first output line is always [`Response::hello`]; with
/// `options.resume` the second is the `Resumed` acknowledgment. Blank
/// input lines are skipped. Every non-blank request line is appended to
/// `options.log` (when set) *before* it is handled, so the log replays
/// the session even if handling crashes the process.
///
/// # Errors
///
/// Hard failures only: unopenable state dir or log, resume failures
/// ([`ServeError::NoSnapshot`] / [`ServeError::CorruptSnapshot`] /
/// [`ServeError::StaleSnapshot`] / [`ServeError::InvalidSnapshot`]),
/// and output I/O errors. Request-level problems are answered on the
/// wire instead.
pub fn serve(
    input: &mut dyn BufRead,
    output: &mut dyn Write,
    options: &ServeOptions,
) -> Result<ServeOutcome, ServeError> {
    let mut server = SessionServer::new(options.state_dir.as_deref())?;
    let mut log = match &options.log {
        Some(path) => Some(
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| ServeError::Io {
                    context: format!("opening request log {}", path.display()),
                    message: e.to_string(),
                })?,
        ),
        None => None,
    };
    let mut outcome = ServeOutcome::default();
    emit(output, &Response::hello())?;
    if options.resume {
        let response = server.resume_latest()?;
        emit(output, &response)?;
    }
    let mut line = String::new();
    loop {
        line.clear();
        let n = input.read_line(&mut line).map_err(|e| ServeError::Io {
            context: "reading a request".to_owned(),
            message: e.to_string(),
        })?;
        if n == 0 {
            break;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(log) = &mut log {
            log.write_all(trimmed.as_bytes())
                .and_then(|()| log.write_all(b"\n"))
                .map_err(|e| ServeError::Io {
                    context: "appending to the request log".to_owned(),
                    message: e.to_string(),
                })?;
        }
        outcome.requests += 1;
        let (response, quit) = server.handle_line(trimmed);
        if matches!(response, Response::Error { .. }) {
            outcome.errors += 1;
        }
        emit(output, &response)?;
        if quit {
            outcome.shutdown = true;
            break;
        }
    }
    outcome.final_report = server.take_final_report();
    Ok(outcome)
}

/// Replays a recorded request log deterministically.
///
/// # Errors
///
/// [`ServeError::Io`] if the log cannot be opened, plus everything
/// [`serve`] can return.
pub fn replay_file(
    path: &Path,
    output: &mut dyn Write,
    options: &ServeOptions,
) -> Result<ServeOutcome, ServeError> {
    let file = std::fs::File::open(path).map_err(|e| ServeError::Io {
        context: format!("opening replay log {}", path.display()),
        message: e.to_string(),
    })?;
    let mut reader = std::io::BufReader::new(file);
    serve(&mut reader, output, options)
}
