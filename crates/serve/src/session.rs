//! Resumable control sessions.
//!
//! A session wraps the batch engines in a *transient-resume* loop: the
//! durable state is a plain-data [`EngineRunState`] (plus controller and
//! dispatcher state), and every step rehydrates an
//! [`EngineRun`] from it, advances one coarse frame,
//! and stores the state back. Because `Engine::resume` reconstructs the
//! exact mid-month state, a session that is snapshotted, killed and
//! resumed finishes with a report byte-identical to an uninterrupted
//! [`Engine::run`](dpss_sim::Engine::run) — the property the
//! `resume_equivalence` suite pins for every built-in pack variant.
//!
//! Two shapes exist: [`SingleSession`] (one datacenter; `scenario`,
//! `pack` or tick-driven `stream` traces) and [`FleetSession`] (several
//! sites stepped in lockstep over an interconnect, replicating
//! [`dpss_sim::MultiSiteEngine::run_with`] frame by frame with the dispatcher in
//! the loop).

use std::fmt;

use serde::{Deserialize, Serialize};

use dpss_core::{FleetPlanner, FleetPlannerState, RecedingHorizon, SmartDpss, SmartDpssConfig};
use dpss_sim::{
    Controller, ControllerState, Engine, EngineRun, EngineRunState, FleetDispatcher,
    FrameDirective, FrameSettlement, Interconnect, MultiSiteReport, RunReport, SimParams,
};
use dpss_traces::{Scenario, ScenarioPack, TraceSet};
use dpss_units::{Energy, Money, Price, SlotClock};

use crate::protocol::{Fault, RawRequest};

/// Interconnect capacity per pooled link in the default fleet topology,
/// MWh per frame (mirrors the bench sweep's default).
const DEFAULT_LINK_CAP_MWH: f64 = 2.0;

/// Everything needed to rebuild a session's engines from scratch:
/// the deterministic trace recipe, the plant, and the control roster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Trace source: `scenario`, `pack` or `stream`.
    pub mode: String,
    /// Controller kind: `smart` or `receding`.
    pub controller: String,
    /// Master seed for trace generation.
    pub seed: u64,
    /// Coarse frames in the horizon (daily frames in the paper).
    pub days: usize,
    /// Fine slots per coarse frame.
    pub slots_per_frame: usize,
    /// Duration of a fine slot, hours.
    pub slot_hours: f64,
    /// Battery capacity in minutes of peak demand.
    pub battery_min: f64,
    /// Built-in scenario pack (`pack` mode only).
    pub pack: Option<String>,
    /// Variant index within the pack.
    pub variant: usize,
    /// Number of datacenter sites; `>1` selects fleet mode.
    pub sites: usize,
    /// Fleet dispatch mode: `post-hoc`, `planned` or `coordinated`.
    pub dispatch: String,
}

impl SessionConfig {
    /// Builds a config from an `init` request, applying the documented
    /// defaults and validating every field.
    ///
    /// # Errors
    ///
    /// Returns a `protocol` [`Fault`] for unknown modes, controllers,
    /// packs, dispatch modes, or out-of-range numeric fields.
    pub fn from_request(req: &RawRequest) -> Result<Self, Fault> {
        let mode = match &req.mode {
            Some(m) => m.clone(),
            None => {
                if req.pack.is_some() {
                    "pack".to_owned()
                } else {
                    "scenario".to_owned()
                }
            }
        };
        let config = SessionConfig {
            mode,
            controller: req.controller.clone().unwrap_or_else(|| "smart".to_owned()),
            seed: req.seed.unwrap_or(42),
            days: req.days.unwrap_or(31),
            slots_per_frame: req.slots_per_frame.unwrap_or(24),
            slot_hours: req.slot_hours.unwrap_or(1.0),
            battery_min: req.battery_min.unwrap_or(15.0),
            pack: req.pack.clone(),
            variant: req.variant.unwrap_or(0),
            sites: req.sites.unwrap_or(1),
            dispatch: req.dispatch.clone().unwrap_or_else(|| "planned".to_owned()),
        };
        config.validate()?;
        Ok(config)
    }

    /// Checks every field against the protocol's documented domain.
    ///
    /// # Errors
    ///
    /// Returns a `protocol` [`Fault`] naming the offending field.
    pub fn validate(&self) -> Result<(), Fault> {
        match self.mode.as_str() {
            "scenario" | "pack" | "stream" => {}
            other => {
                return Err(Fault::new(
                    "protocol",
                    format!("unknown mode: {other} (expected scenario|pack|stream)"),
                ))
            }
        }
        match self.controller.as_str() {
            "smart" | "receding" => {}
            other => {
                return Err(Fault::new(
                    "protocol",
                    format!("unknown controller: {other} (expected smart|receding)"),
                ))
            }
        }
        match self.dispatch.as_str() {
            "post-hoc" | "planned" | "coordinated" => {}
            other => {
                return Err(Fault::new(
                    "protocol",
                    format!(
                        "unknown dispatch mode: {other} (expected post-hoc|planned|coordinated)"
                    ),
                ))
            }
        }
        if self.mode == "pack" {
            let Some(name) = &self.pack else {
                return Err(Fault::new("protocol", "pack mode requires a pack name"));
            };
            let Some(pack) = ScenarioPack::builtin(name) else {
                return Err(Fault::new(
                    "protocol",
                    format!(
                        "unknown scenario pack: {name} (expected {})",
                        ScenarioPack::builtin_names().join("|")
                    ),
                ));
            };
            if self.variant >= pack.len() {
                return Err(Fault::new(
                    "protocol",
                    format!(
                        "variant {} out of range for pack {name} ({} variants)",
                        self.variant,
                        pack.len()
                    ),
                ));
            }
        }
        if self.sites == 0 {
            return Err(Fault::new("protocol", "sites must be at least 1"));
        }
        if self.sites > 1 && self.mode != "pack" {
            return Err(Fault::new(
                "protocol",
                "fleet sessions (sites > 1) are pack-sourced; set mode=pack",
            ));
        }
        if self.sites > 512 {
            return Err(Fault::new(
                "protocol",
                format!("sites {} exceeds the protocol cap of 512", self.sites),
            ));
        }
        self.clock().map(|_| ())
    }

    /// The session's calendar.
    ///
    /// # Errors
    ///
    /// Returns a `protocol` [`Fault`] for a degenerate calendar.
    pub fn clock(&self) -> Result<SlotClock, Fault> {
        SlotClock::new(self.days, self.slots_per_frame, self.slot_hours)
            .map_err(|e| Fault::new("protocol", format!("invalid calendar: {e}")))
    }

    /// The session's plant parameters.
    #[must_use]
    pub fn params(&self) -> SimParams {
        SimParams::icdcs13_with_battery(self.battery_min)
    }
}

/// Builds the controller roster entry named by `kind`.
fn build_controller(
    kind: &str,
    params: SimParams,
    clock: SlotClock,
) -> Result<Box<dyn Controller>, Fault> {
    match kind {
        "smart" => {
            let ctl = SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock)
                .map_err(|e| Fault::new("protocol", format!("controller rejected: {e}")))?;
            Ok(Box::new(ctl))
        }
        "receding" => {
            let ctl = RecedingHorizon::new(params)
                .map_err(|e| Fault::new("protocol", format!("controller rejected: {e}")))?
                .with_warm_start(true);
            Ok(Box::new(ctl))
        }
        other => Err(Fault::new(
            "protocol",
            format!("unknown controller: {other} (expected smart|receding)"),
        )),
    }
}

/// One frame's worth of tick data in a stream session.
#[derive(Debug, Clone, PartialEq)]
pub struct TickData {
    /// Long-term market price for the frame, $/MWh.
    pub price_lt: f64,
    /// Per-slot real-time prices, $/MWh.
    pub price_rt: Vec<f64>,
    /// Per-slot delay-sensitive demand, MWh.
    pub demand_ds: Vec<f64>,
    /// Per-slot delay-tolerant demand, MWh.
    pub demand_dt: Vec<f64>,
    /// Per-slot renewable generation, MWh.
    pub renewable: Vec<f64>,
}

impl TickData {
    /// Extracts and validates tick data from a `tick` request.
    ///
    /// # Errors
    ///
    /// Returns a `protocol` [`Fault`] for missing fields, wrong series
    /// lengths, or non-finite / negative values.
    pub fn from_request(req: &RawRequest, slots_per_frame: usize) -> Result<Self, Fault> {
        fn series(field: &str, values: &Option<Vec<f64>>, want: usize) -> Result<Vec<f64>, Fault> {
            let Some(values) = values else {
                return Err(Fault::new("protocol", format!("tick is missing {field}")));
            };
            if values.len() != want {
                return Err(Fault::new(
                    "protocol",
                    format!("{field} has {} slots, expected {want}", values.len()),
                ));
            }
            for v in values {
                if !v.is_finite() || *v < 0.0 {
                    return Err(Fault::new(
                        "protocol",
                        format!("{field} contains a non-finite or negative value"),
                    ));
                }
            }
            Ok(values.clone())
        }
        let Some(price_lt) = req.price_lt else {
            return Err(Fault::new("protocol", "tick is missing price_lt"));
        };
        if !price_lt.is_finite() || price_lt < 0.0 {
            return Err(Fault::new(
                "protocol",
                "price_lt must be finite and non-negative",
            ));
        }
        Ok(TickData {
            price_lt,
            price_rt: series("price_rt", &req.price_rt, slots_per_frame)?,
            demand_ds: series("demand_ds", &req.demand_ds, slots_per_frame)?,
            demand_dt: series("demand_dt", &req.demand_dt, slots_per_frame)?,
            renewable: series("renewable", &req.renewable, slots_per_frame)?,
        })
    }
}

/// What one stepped frame looked like, for the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameStep {
    /// The coarse frame that was stepped.
    pub frame: usize,
    /// Long-term energy purchased this frame, MWh.
    pub purchased_lt_mwh: f64,
    /// Real-time energy purchased this frame, MWh.
    pub purchased_rt_mwh: f64,
    /// Cumulative cost so far, dollars.
    pub cost_dollars: f64,
    /// Battery level after the frame, MWh.
    pub battery_mwh: f64,
    /// Delay-tolerant backlog after the frame, MWh.
    pub backlog_mwh: f64,
    /// Whether every frame of the horizon has now been stepped.
    pub done: bool,
}

/// What one stepped fleet frame looked like, for the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStep {
    /// The coarse frame that was stepped.
    pub frame: usize,
    /// Cumulative fleet cost so far (pre-settlement), dollars.
    pub cost_dollars: f64,
    /// Cumulative energy sent over the interconnect, MWh.
    pub transferred_mwh: f64,
    /// Cumulative real-time cost displaced by transfers, dollars.
    pub savings_dollars: f64,
    /// Directives applied to the sites before this frame.
    pub directives: Vec<FrameDirective>,
    /// Whether every frame of the horizon has now been stepped.
    pub done: bool,
}

/// Durable image of a single-site session (the snapshot payload body).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SingleSnapshot {
    /// The engine-side mid-month state.
    pub run_state: EngineRunState,
    /// The controller's internal state.
    pub controller: ControllerState,
    /// Frames whose trace data has been supplied (stream mode).
    pub filled: usize,
    /// The accumulated truth traces — present iff the session streams.
    pub truth: Option<TraceSet>,
}

/// Durable image of a fleet session (the snapshot payload body).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSnapshot {
    /// Per-site engine states, in site order.
    pub run_states: Vec<EngineRunState>,
    /// Per-site controller states, in site order.
    pub controllers: Vec<ControllerState>,
    /// The fleet planner's state (planned/coordinated dispatch only).
    pub planner: Option<FleetPlannerState>,
    /// Next coarse frame to step.
    pub next_frame: usize,
    /// Cumulative energy sent by donors, MWh.
    pub sent_mwh: f64,
    /// Cumulative energy delivered after losses, MWh.
    pub delivered_mwh: f64,
    /// Cumulative displaced real-time cost, dollars.
    pub savings_dollars: f64,
    /// Cumulative wheeling charges, dollars.
    pub wheeling_dollars: f64,
}

/// The full snapshot payload: config plus exactly one session image.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// The session's rebuild recipe.
    pub config: SessionConfig,
    /// Single-site image (mutually exclusive with `fleet`).
    pub single: Option<SingleSnapshot>,
    /// Fleet image (mutually exclusive with `single`).
    pub fleet: Option<FleetSnapshot>,
}

/// A live session of either shape.
pub enum Session {
    /// One datacenter.
    Single(Box<SingleSession>),
    /// Several sites in lockstep over an interconnect.
    Fleet(Box<FleetSession>),
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Session::Single(s) => s.fmt(f),
            Session::Fleet(s) => s.fmt(f),
        }
    }
}

impl Session {
    /// Creates a fresh session from a validated config.
    ///
    /// # Errors
    ///
    /// Propagates configuration faults from the underlying engines.
    pub fn new(config: SessionConfig) -> Result<Self, Fault> {
        if config.sites > 1 {
            Ok(Session::Fleet(Box::new(FleetSession::new(config)?)))
        } else {
            Ok(Session::Single(Box::new(SingleSession::new(config)?)))
        }
    }

    /// Reconstructs a session from a decoded snapshot payload.
    ///
    /// # Errors
    ///
    /// Returns a `snapshot` [`Fault`] when the payload does not describe
    /// a state the engines accept.
    pub fn restore(snapshot: SessionSnapshot) -> Result<Self, Fault> {
        snapshot.config.validate()?;
        match (snapshot.single, snapshot.fleet) {
            (Some(single), None) => Ok(Session::Single(Box::new(SingleSession::restore(
                snapshot.config,
                single,
            )?))),
            (None, Some(fleet)) => Ok(Session::Fleet(Box::new(FleetSession::restore(
                snapshot.config,
                fleet,
            )?))),
            _ => Err(Fault::new(
                "snapshot",
                "snapshot must carry exactly one of single/fleet state",
            )),
        }
    }

    /// Captures the session as a snapshot payload.
    #[must_use]
    pub fn snapshot(&self) -> SessionSnapshot {
        match self {
            Session::Single(s) => s.snapshot(),
            Session::Fleet(s) => s.snapshot(),
        }
    }

    /// The session's config.
    #[must_use]
    pub fn config(&self) -> &SessionConfig {
        match self {
            Session::Single(s) => &s.config,
            Session::Fleet(s) => &s.config,
        }
    }

    /// Next coarse frame the session will step.
    #[must_use]
    pub fn next_frame(&self) -> usize {
        match self {
            Session::Single(s) => s.run_state.next_frame,
            Session::Fleet(s) => s.next_frame,
        }
    }

    /// Coarse frames in the horizon.
    #[must_use]
    pub fn frames(&self) -> usize {
        match self {
            Session::Single(s) => s.clock.frames(),
            Session::Fleet(s) => s.clock.frames(),
        }
    }

    /// Whether every frame has been stepped.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.next_frame() >= self.frames()
    }
}

/// A single-datacenter session.
pub struct SingleSession {
    /// The rebuild recipe.
    pub config: SessionConfig,
    clock: SlotClock,
    truth: TraceSet,
    engine: Engine,
    controller: Box<dyn Controller>,
    run_state: EngineRunState,
    /// Frames whose trace data has been supplied. Stream sessions grow
    /// this one tick at a time; scenario/pack sessions start full.
    filled: usize,
}

impl fmt::Debug for SingleSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SingleSession")
            .field("config", &self.config)
            .field("next_frame", &self.run_state.next_frame)
            .field("filled", &self.filled)
            .finish_non_exhaustive()
    }
}

/// Builds the zero-filled trace shell a stream session grows into.
fn empty_traces(clock: SlotClock) -> Result<TraceSet, Fault> {
    TraceSet::new(
        clock,
        vec![Energy::ZERO; clock.total_slots()],
        vec![Energy::ZERO; clock.total_slots()],
        vec![Energy::ZERO; clock.total_slots()],
        vec![Price::ZERO; clock.frames()],
        vec![Price::ZERO; clock.total_slots()],
    )
    .map_err(|e| Fault::new("protocol", format!("invalid calendar: {e}")))
}

/// Generates the session's truth traces per the config's mode.
fn source_traces(config: &SessionConfig, clock: SlotClock) -> Result<TraceSet, Fault> {
    match config.mode.as_str() {
        "stream" => empty_traces(clock),
        "scenario" => Scenario::icdcs13()
            .generate(&clock, config.seed)
            .map_err(|e| Fault::new("protocol", format!("trace generation failed: {e}"))),
        _ => {
            let name = config.pack.as_deref().unwrap_or_default();
            let pack = ScenarioPack::builtin(name)
                .ok_or_else(|| Fault::new("protocol", format!("unknown scenario pack: {name}")))?;
            pack.generate(&clock, config.seed, config.variant)
                .map_err(|e| Fault::new("protocol", format!("trace generation failed: {e}")))
        }
    }
}

impl SingleSession {
    /// Creates a fresh single-site session.
    ///
    /// # Errors
    ///
    /// Propagates configuration faults from the engine and controller.
    pub fn new(config: SessionConfig) -> Result<Self, Fault> {
        let clock = config.clock()?;
        let params = config.params();
        let truth = source_traces(&config, clock)?;
        let engine = Engine::new(params, truth.clone())
            .map_err(|e| Fault::new("protocol", format!("engine rejected traces: {e}")))?;
        let controller = build_controller(&config.controller, params, clock)?;
        let run_state = engine
            .begin()
            .map_err(|e| Fault::new("protocol", format!("engine could not start: {e}")))?
            .state();
        let filled = if config.mode == "stream" {
            0
        } else {
            clock.frames()
        };
        Ok(SingleSession {
            config,
            clock,
            truth,
            engine,
            controller,
            run_state,
            filled,
        })
    }

    /// Reconstructs a single-site session from its snapshot image.
    fn restore(config: SessionConfig, image: SingleSnapshot) -> Result<Self, Fault> {
        let mut session = SingleSession::new(config)?;
        if session.config.mode == "stream" {
            let Some(truth) = image.truth else {
                return Err(Fault::new(
                    "snapshot",
                    "stream snapshot is missing its trace state",
                ));
            };
            truth
                .validate()
                .map_err(|e| Fault::new("snapshot", format!("snapshot traces invalid: {e}")))?;
            if truth.clock != session.clock {
                return Err(Fault::new(
                    "snapshot",
                    "snapshot traces disagree with the session calendar",
                ));
            }
            session.engine = Engine::new(session.config.params(), truth.clone())
                .map_err(|e| Fault::new("snapshot", format!("snapshot traces invalid: {e}")))?;
            session.truth = truth;
            if image.filled != image.run_state.next_frame {
                return Err(Fault::new(
                    "snapshot",
                    "stream snapshot filled/next_frame mismatch",
                ));
            }
        } else if image.truth.is_some() {
            return Err(Fault::new(
                "snapshot",
                "non-stream snapshot unexpectedly carries trace state",
            ));
        }
        // Let the engine vet the run state before adopting it.
        session
            .engine
            .resume(image.run_state.clone())
            .map_err(|e| Fault::new("snapshot", format!("run state rejected: {e}")))?;
        session.run_state = image.run_state;
        session
            .controller
            .load_state(&image.controller)
            .map_err(|e| Fault::new("snapshot", format!("controller state rejected: {e}")))?;
        session.filled = image.filled.min(session.clock.frames());
        Ok(session)
    }

    /// Captures the session as a snapshot image.
    #[must_use]
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            config: self.config.clone(),
            single: Some(SingleSnapshot {
                run_state: self.run_state.clone(),
                controller: self.controller.save_state(),
                filled: self.filled,
                truth: if self.config.mode == "stream" {
                    Some(self.truth.clone())
                } else {
                    None
                },
            }),
            fleet: None,
        }
    }

    /// Absorbs one stream tick: records frame `frame`'s trace data and
    /// steps that frame.
    ///
    /// # Errors
    ///
    /// `protocol` faults for non-stream sessions and malformed data;
    /// `order` faults for out-of-order frames.
    pub fn tick(&mut self, frame: usize, data: &TickData) -> Result<FrameStep, Fault> {
        if self.config.mode != "stream" {
            return Err(Fault::new(
                "protocol",
                "tick is only valid in stream sessions; use step",
            ));
        }
        if frame != self.filled {
            return Err(Fault::new(
                "order",
                format!(
                    "out-of-order tick: expected frame {}, got {frame}",
                    self.filled
                ),
            ));
        }
        if frame >= self.clock.frames() {
            return Err(Fault::new(
                "order",
                format!("tick past the horizon ({} frames)", self.clock.frames()),
            ));
        }
        let t = self.clock.slots_per_frame();
        let start = frame * t;
        let set = |dst: &mut Vec<Energy>, src: &[f64]| {
            for (slot, v) in dst.iter_mut().skip(start).take(t).zip(src) {
                *slot = Energy::from_mwh(*v);
            }
        };
        set(&mut self.truth.demand_ds, &data.demand_ds);
        set(&mut self.truth.demand_dt, &data.demand_dt);
        set(&mut self.truth.renewable, &data.renewable);
        for (slot, v) in self
            .truth
            .price_rt
            .iter_mut()
            .skip(start)
            .take(t)
            .zip(&data.price_rt)
        {
            *slot = Price::from_dollars_per_mwh(*v);
        }
        if let Some(slot) = self.truth.price_lt.get_mut(frame) {
            *slot = Price::from_dollars_per_mwh(data.price_lt);
        }
        self.engine = Engine::new(self.config.params(), self.truth.clone())
            .map_err(|e| Fault::new("protocol", format!("tick data rejected: {e}")))?;
        self.filled += 1;
        self.step()
    }

    /// Advances one coarse frame.
    ///
    /// # Errors
    ///
    /// `order` faults when the horizon is complete or (stream mode) the
    /// frame's data has not been supplied; `state` faults when the
    /// engine rejects the stored state.
    pub fn step(&mut self) -> Result<FrameStep, Fault> {
        if self.run_state.next_frame >= self.clock.frames() {
            return Err(Fault::new(
                "order",
                "all frames already stepped; send finish",
            ));
        }
        if self.config.mode == "stream" && self.filled <= self.run_state.next_frame {
            return Err(Fault::new(
                "order",
                format!(
                    "frame {} has no data yet; send its tick first",
                    self.run_state.next_frame
                ),
            ));
        }
        let before_lt = self.run_state.report.energy_lt;
        let before_rt = self.run_state.report.energy_rt;
        let mut run = self
            .engine
            .resume(self.run_state.clone())
            .map_err(|e| Fault::new("state", format!("run state rejected: {e}")))?;
        let frame = run.frames_completed();
        run.step_frame(self.controller.as_mut())
            .map_err(|e| Fault::new("state", format!("frame step failed: {e}")))?;
        self.run_state = run.state();
        Ok(FrameStep {
            frame,
            purchased_lt_mwh: (self.run_state.report.energy_lt - before_lt).mwh(),
            purchased_rt_mwh: (self.run_state.report.energy_rt - before_rt).mwh(),
            cost_dollars: self.run_state.report.total_cost().dollars(),
            battery_mwh: self.run_state.battery.level.mwh(),
            backlog_mwh: self.run_state.queue.backlog.mwh(),
            done: self.run_state.next_frame >= self.clock.frames(),
        })
    }

    /// Closes the month and produces the final report.
    ///
    /// # Errors
    ///
    /// `order` faults when frames remain; `state` faults when the
    /// engine rejects the stored state.
    pub fn finish(&self) -> Result<RunReport, Fault> {
        if self.run_state.next_frame < self.clock.frames() {
            return Err(Fault::new(
                "order",
                format!(
                    "cannot finish: {} of {} frames stepped",
                    self.run_state.next_frame,
                    self.clock.frames()
                ),
            ));
        }
        self.engine
            .resume(self.run_state.clone())
            .map_err(|e| Fault::new("state", format!("run state rejected: {e}")))?
            .finish()
            .map_err(|e| Fault::new("state", format!("finish failed: {e}")))
    }
}

/// The fleet dispatcher roster: the post-hoc greedy settlement or the
/// LP-backed planner (optionally coordinating).
enum FleetDispatch {
    /// Greedy per-frame settlement over the raw topology.
    Greedy(Interconnect),
    /// The warm-started flow-LP planner.
    Planner(Box<FleetPlanner>),
}

impl FleetDispatch {
    fn direct(&mut self, outlook: &dpss_sim::FrameOutlook) -> Vec<FrameDirective> {
        match self {
            FleetDispatch::Greedy(ic) => FleetDispatcher::direct(ic, outlook),
            FleetDispatch::Planner(p) => FleetDispatcher::direct(p.as_mut(), outlook),
        }
    }

    fn settle(&mut self, exchange: &dpss_sim::FrameExchange) -> FrameSettlement {
        match self {
            FleetDispatch::Greedy(ic) => FleetDispatcher::settle(ic, exchange),
            FleetDispatch::Planner(p) => FleetDispatcher::settle(p.as_mut(), exchange),
        }
    }
}

/// A multi-site session stepping every site in lockstep, with the
/// dispatcher in the loop exactly as [`MultiSiteEngine::run_with`]
/// places it.
///
/// [`MultiSiteEngine::run_with`]: dpss_sim::MultiSiteEngine::run_with
pub struct FleetSession {
    /// The rebuild recipe.
    pub config: SessionConfig,
    clock: SlotClock,
    fleet: dpss_sim::MultiSiteEngine,
    controllers: Vec<Box<dyn Controller>>,
    dispatcher: FleetDispatch,
    run_states: Vec<EngineRunState>,
    totals: FrameSettlement,
    next_frame: usize,
}

impl fmt::Debug for FleetSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FleetSession")
            .field("config", &self.config)
            .field("next_frame", &self.next_frame)
            .finish_non_exhaustive()
    }
}

impl FleetSession {
    /// Creates a fresh fleet session.
    ///
    /// # Errors
    ///
    /// Propagates configuration faults from the engines, interconnect
    /// and controllers.
    pub fn new(config: SessionConfig) -> Result<Self, Fault> {
        let clock = config.clock()?;
        let params = config.params();
        let name = config.pack.as_deref().unwrap_or_default();
        let pack = ScenarioPack::builtin(name)
            .ok_or_else(|| Fault::new("protocol", format!("unknown scenario pack: {name}")))?;
        let mut engines = Vec::with_capacity(config.sites);
        for site in 0..config.sites {
            let traces = pack
                .generate_site(&clock, config.seed, config.variant, site)
                .map_err(|e| Fault::new("protocol", format!("trace generation failed: {e}")))?;
            let engine = Engine::new(params, traces)
                .map_err(|e| Fault::new("protocol", format!("engine rejected traces: {e}")))?;
            engines.push(engine);
        }
        let ic = Interconnect::pooled(config.sites, Energy::from_mwh(DEFAULT_LINK_CAP_MWH))
            .map_err(|e| Fault::new("protocol", format!("interconnect rejected: {e}")))?;
        let fleet = dpss_sim::MultiSiteEngine::new(engines)
            .map_err(|e| Fault::new("protocol", format!("fleet rejected sites: {e}")))?
            .with_interconnect(ic)
            .map_err(|e| Fault::new("protocol", format!("interconnect rejected: {e}")))?;
        let dispatcher = match config.dispatch.as_str() {
            "post-hoc" => FleetDispatch::Greedy(fleet.interconnect().clone()),
            "coordinated" => FleetDispatch::Planner(Box::new(
                FleetPlanner::for_engine(&fleet).with_coordination(true),
            )),
            _ => FleetDispatch::Planner(Box::new(FleetPlanner::for_engine(&fleet))),
        };
        let mut controllers = Vec::with_capacity(config.sites);
        for _ in 0..config.sites {
            controllers.push(build_controller(&config.controller, params, clock)?);
        }
        let mut run_states = Vec::with_capacity(config.sites);
        for engine in fleet.sites() {
            let state = engine
                .begin()
                .map_err(|e| Fault::new("protocol", format!("engine could not start: {e}")))?
                .state();
            run_states.push(state);
        }
        Ok(FleetSession {
            config,
            clock,
            fleet,
            controllers,
            dispatcher,
            run_states,
            totals: FrameSettlement::default(),
            next_frame: 0,
        })
    }

    /// Reconstructs a fleet session from its snapshot image.
    fn restore(config: SessionConfig, image: FleetSnapshot) -> Result<Self, Fault> {
        let mut session = FleetSession::new(config)?;
        if image.run_states.len() != session.config.sites
            || image.controllers.len() != session.config.sites
        {
            return Err(Fault::new(
                "snapshot",
                "snapshot site roster differs from the session config",
            ));
        }
        for (engine, state) in session.fleet.sites().iter().zip(&image.run_states) {
            engine
                .resume(state.clone())
                .map_err(|e| Fault::new("snapshot", format!("run state rejected: {e}")))?;
            if state.next_frame != image.next_frame {
                return Err(Fault::new(
                    "snapshot",
                    "snapshot sites disagree on the next frame",
                ));
            }
        }
        for (ctl, state) in session.controllers.iter_mut().zip(&image.controllers) {
            ctl.load_state(state)
                .map_err(|e| Fault::new("snapshot", format!("controller state rejected: {e}")))?;
        }
        match (&mut session.dispatcher, &image.planner) {
            (FleetDispatch::Planner(p), Some(state)) => {
                p.import_state(state)
                    .map_err(|e| Fault::new("snapshot", format!("planner state rejected: {e}")))?;
            }
            (FleetDispatch::Planner(_), None) => {
                return Err(Fault::new(
                    "snapshot",
                    "snapshot is missing the planner state its dispatch mode requires",
                ));
            }
            (FleetDispatch::Greedy(_), Some(_)) => {
                return Err(Fault::new(
                    "snapshot",
                    "snapshot carries planner state but the dispatch mode is post-hoc",
                ));
            }
            (FleetDispatch::Greedy(_), None) => {}
        }
        for v in [
            image.sent_mwh,
            image.delivered_mwh,
            image.savings_dollars,
            image.wheeling_dollars,
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(Fault::new(
                    "snapshot",
                    "snapshot settlement totals are not finite non-negative numbers",
                ));
            }
        }
        session.run_states = image.run_states;
        session.totals = FrameSettlement {
            sent: Energy::from_mwh(image.sent_mwh),
            delivered: Energy::from_mwh(image.delivered_mwh),
            savings: Money::from_dollars(image.savings_dollars),
            wheeling: Money::from_dollars(image.wheeling_dollars),
        };
        session.next_frame = image.next_frame;
        Ok(session)
    }

    /// Captures the session as a snapshot image.
    #[must_use]
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            config: self.config.clone(),
            single: None,
            fleet: Some(FleetSnapshot {
                run_states: self.run_states.clone(),
                controllers: self.controllers.iter().map(|c| c.save_state()).collect(),
                planner: match &self.dispatcher {
                    FleetDispatch::Planner(p) => Some(p.export_state()),
                    FleetDispatch::Greedy(_) => None,
                },
                next_frame: self.next_frame,
                sent_mwh: self.totals.sent.mwh(),
                delivered_mwh: self.totals.delivered.mwh(),
                savings_dollars: self.totals.savings.dollars(),
                wheeling_dollars: self.totals.wheeling.dollars(),
            }),
        }
    }

    /// Advances every site one coarse frame in lockstep, with the
    /// dispatcher directing before and settling after, exactly as the
    /// batch fleet loop does.
    ///
    /// # Errors
    ///
    /// `order` faults when the horizon is complete; `state` faults when
    /// an engine rejects its stored state or a step fails.
    pub fn step(&mut self) -> Result<FleetStep, Fault> {
        if self.next_frame >= self.clock.frames() {
            return Err(Fault::new(
                "order",
                "all frames already stepped; send finish",
            ));
        }
        let mut runs: Vec<EngineRun<'_>> = Vec::with_capacity(self.run_states.len());
        for (engine, state) in self.fleet.sites().iter().zip(&self.run_states) {
            let run = engine
                .resume(state.clone())
                .map_err(|e| Fault::new("state", format!("run state rejected: {e}")))?;
            runs.push(run);
        }
        let silent = self.fleet.interconnect().is_silent();
        let mut applied = Vec::new();
        if !silent {
            let outlook = self.fleet.outlook_at(self.next_frame, &runs);
            let directives = self.dispatcher.direct(&outlook);
            if !directives.is_empty() {
                if directives.len() != self.run_states.len() {
                    return Err(Fault::new(
                        "state",
                        "directive roster length differs from site roster",
                    ));
                }
                for (ctl, directive) in self.controllers.iter_mut().zip(&directives) {
                    ctl.receive_directive(directive);
                }
                applied = directives;
            }
        }
        for (run, ctl) in runs.iter_mut().zip(self.controllers.iter_mut()) {
            run.step_frame(ctl.as_mut())
                .map_err(|e| Fault::new("state", format!("frame step failed: {e}")))?;
        }
        if !silent {
            let ex = self
                .fleet
                .exchange_at(self.next_frame, &runs)
                .map_err(|e| Fault::new("state", format!("exchange failed: {e}")))?;
            let s = self.dispatcher.settle(&ex);
            self.totals.sent += s.sent;
            self.totals.delivered += s.delivered;
            self.totals.savings += s.savings;
            self.totals.wheeling += s.wheeling;
        }
        self.run_states = runs.iter().map(EngineRun::state).collect();
        let frame = self.next_frame;
        self.next_frame += 1;
        let cost: Money = self.run_states.iter().map(|s| s.report.total_cost()).sum();
        Ok(FleetStep {
            frame,
            cost_dollars: cost.dollars(),
            transferred_mwh: self.totals.sent.mwh(),
            savings_dollars: self.totals.savings.dollars(),
            directives: applied,
            done: self.next_frame >= self.clock.frames(),
        })
    }

    /// Closes the month and assembles the fleet report — identical to
    /// what the batch loop would have produced over the same frames.
    ///
    /// # Errors
    ///
    /// `order` faults when frames remain; `state` faults when an engine
    /// rejects its stored state.
    pub fn finish(&self) -> Result<MultiSiteReport, Fault> {
        if self.next_frame < self.clock.frames() {
            return Err(Fault::new(
                "order",
                format!(
                    "cannot finish: {} of {} frames stepped",
                    self.next_frame,
                    self.clock.frames()
                ),
            ));
        }
        let mut reports = Vec::with_capacity(self.run_states.len());
        for (engine, state) in self.fleet.sites().iter().zip(&self.run_states) {
            let report = engine
                .resume(state.clone())
                .map_err(|e| Fault::new("state", format!("run state rejected: {e}")))?
                .finish()
                .map_err(|e| Fault::new("state", format!("finish failed: {e}")))?;
            reports.push(report);
        }
        Ok(MultiSiteReport {
            sites: reports,
            frames: self.clock.frames(),
            slots: self.clock.total_slots(),
            interconnect: self.fleet.interconnect().clone(),
            energy_transferred: self.totals.sent,
            energy_delivered: self.totals.delivered,
            transfer_savings: self.totals.savings,
            wheeling_cost: self.totals.wheeling,
            load: dpss_sim::LoadTotals::default(),
        })
    }
}
