//! The newline-delimited JSON wire protocol.
//!
//! Every request is one JSON object on one line; every request produces
//! exactly one response line. Requests are dispatched on their `cmd`
//! field; all other fields are flat, optional, and only read by the
//! commands that need them (unknown fields are ignored, so the grammar
//! is forward-extensible).
//!
//! # Request grammar
//!
//! | `cmd`      | fields                                                                  |
//! |------------|-------------------------------------------------------------------------|
//! | `init`     | `mode` (`scenario`\|`pack`\|`stream`), `controller` (`smart`\|`receding`), `seed`, `days`, `slots_per_frame`, `slot_hours`, `battery_min`, `pack`, `variant`, `sites`, `dispatch` — all optional |
//! | `tick`     | `frame`, `price_lt`, `price_rt`, `demand_ds`, `demand_dt`, `renewable` (stream sessions; supplies frame data and steps it) |
//! | `step`     | — (scenario/pack/fleet sessions; advances one coarse frame)             |
//! | `snapshot` | — (persists the session under `--state-dir`)                            |
//! | `status`   | —                                                                       |
//! | `finish`   | — (closes the month and emits the final report)                         |
//! | `shutdown` | — (ends the connection politely)                                        |
//!
//! # Error discipline
//!
//! A malformed or mistimed request yields an [`Response::Error`] line with
//! a machine-readable `kind` — the session survives and the next request
//! is processed normally. Error kinds form a closed set:
//!
//! * `parse` — the line was not a JSON object this protocol understands;
//! * `protocol` — the object was well-formed but the request is invalid
//!   (unknown `cmd`, missing field, bad value);
//! * `order` — the request is valid but arrived at the wrong time
//!   (out-of-order tick, `finish` before the month is complete);
//! * `state` — the daemon cannot honor the request in its configuration
//!   (e.g. `snapshot` without `--state-dir`);
//! * `session` — session lifecycle misuse (`init` twice, commands before
//!   `init`);
//! * `io` — a snapshot write failed at the operating-system level.

use serde::{Deserialize, Serialize};

use dpss_sim::{FrameDirective, RunReport};

/// Snapshot/wire schema revision; bumped on any incompatible change.
pub const SCHEMA_VERSION: u32 = 1;

/// A request line, decoded as a flat bag of optional fields.
///
/// The `cmd` field selects the command; each command reads only the
/// fields it documents and ignores the rest.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RawRequest {
    /// Which command this line carries.
    pub cmd: Option<String>,
    /// `init`: trace source (`scenario`, `pack` or `stream`).
    pub mode: Option<String>,
    /// `init`: controller kind (`smart` or `receding`).
    pub controller: Option<String>,
    /// `init`: master seed for trace generation.
    pub seed: Option<u64>,
    /// `init`: number of coarse frames (daily frames in the paper).
    pub days: Option<usize>,
    /// `init`: fine slots per coarse frame.
    pub slots_per_frame: Option<usize>,
    /// `init`: duration of a fine slot in hours.
    pub slot_hours: Option<f64>,
    /// `init`: battery capacity in minutes of peak demand.
    pub battery_min: Option<f64>,
    /// `init`: built-in scenario pack name (`pack` mode).
    pub pack: Option<String>,
    /// `init`: variant index within the pack.
    pub variant: Option<usize>,
    /// `init`: number of datacenter sites (>1 selects fleet mode).
    pub sites: Option<usize>,
    /// `init`: fleet dispatch mode (`post-hoc`, `planned`, `coordinated`).
    pub dispatch: Option<String>,
    /// `tick`: which coarse frame this tick carries data for.
    pub frame: Option<usize>,
    /// `tick`: long-term market price for the frame, $/MWh.
    pub price_lt: Option<f64>,
    /// `tick`: per-slot real-time prices for the frame, $/MWh.
    pub price_rt: Option<Vec<f64>>,
    /// `tick`: per-slot delay-sensitive demand, MWh.
    pub demand_ds: Option<Vec<f64>>,
    /// `tick`: per-slot delay-tolerant demand, MWh.
    pub demand_dt: Option<Vec<f64>>,
    /// `tick`: per-slot renewable generation, MWh.
    pub renewable: Option<Vec<f64>>,
}

/// A response line. Externally tagged: `{"Ticked":{...}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// First line of every connection: who is serving and at what schema.
    Hello {
        /// Always `"dpss-serve"`.
        service: String,
        /// Crate version of the serving binary.
        version: String,
        /// Snapshot/wire schema revision.
        schema: u32,
    },
    /// A session was created by `init`.
    Started {
        /// Trace source mode.
        mode: String,
        /// Controller kind driving each site.
        controller: String,
        /// Coarse frames in the horizon.
        frames: usize,
        /// Fine slots per coarse frame.
        slots_per_frame: usize,
        /// Number of sites (1 = single-datacenter session).
        sites: usize,
    },
    /// A session was reconstructed from the newest valid snapshot.
    Resumed {
        /// Next coarse frame the session will step.
        frame: usize,
        /// Coarse frames in the horizon.
        frames: usize,
        /// Snapshot candidates skipped as corrupt during the scan.
        discarded: usize,
    },
    /// A stream tick was absorbed and its frame stepped.
    Ticked {
        /// The coarse frame that was stepped.
        frame: usize,
        /// Long-term energy purchased this frame, MWh.
        purchased_lt_mwh: f64,
        /// Real-time energy purchased this frame, MWh.
        purchased_rt_mwh: f64,
        /// Cumulative cost so far, dollars.
        cost_dollars: f64,
        /// Battery level after the frame, MWh.
        battery_mwh: f64,
        /// Delay-tolerant backlog after the frame, MWh.
        backlog_mwh: f64,
        /// Whether every frame of the horizon has now been stepped.
        done: bool,
    },
    /// A scenario/pack frame was stepped (single-site session).
    Stepped {
        /// The coarse frame that was stepped.
        frame: usize,
        /// Long-term energy purchased this frame, MWh.
        purchased_lt_mwh: f64,
        /// Real-time energy purchased this frame, MWh.
        purchased_rt_mwh: f64,
        /// Cumulative cost so far, dollars.
        cost_dollars: f64,
        /// Battery level after the frame, MWh.
        battery_mwh: f64,
        /// Delay-tolerant backlog after the frame, MWh.
        backlog_mwh: f64,
        /// Whether every frame of the horizon has now been stepped.
        done: bool,
    },
    /// A fleet frame was stepped across every site in lockstep.
    FleetStepped {
        /// The coarse frame that was stepped.
        frame: usize,
        /// Cumulative fleet cost so far (pre-settlement), dollars.
        cost_dollars: f64,
        /// Cumulative energy sent over the interconnect, MWh.
        transferred_mwh: f64,
        /// Cumulative real-time cost displaced by transfers, dollars.
        savings_dollars: f64,
        /// Directives applied to the sites before this frame.
        directives: Vec<FrameDirective>,
        /// Whether every frame of the horizon has now been stepped.
        done: bool,
    },
    /// A snapshot was written and fsync-renamed into place.
    Snapshotted {
        /// Next coarse frame recorded in the snapshot.
        frame: usize,
        /// Path of the snapshot file.
        path: String,
        /// Keyed checksum of the payload (hex).
        checksum: String,
    },
    /// Current session position.
    Status {
        /// Trace source mode.
        mode: String,
        /// Controller kind driving each site.
        controller: String,
        /// Next coarse frame to step.
        frame: usize,
        /// Coarse frames in the horizon.
        frames: usize,
        /// Number of sites.
        sites: usize,
        /// Whether every frame has been stepped.
        done: bool,
    },
    /// The month closed on a single-site session.
    Finished {
        /// The final report — byte-identical to an uninterrupted
        /// [`Engine::run`](dpss_sim::Engine::run) over the same traces.
        report: RunReport,
    },
    /// The month closed on a fleet session.
    FleetFinished {
        /// Per-site final reports, in site order.
        sites: Vec<RunReport>,
        /// Energy sent by donors over the month, MWh.
        transferred_mwh: f64,
        /// Energy delivered after line losses, MWh.
        delivered_mwh: f64,
        /// Real-time cost displaced by transfers, dollars.
        savings_dollars: f64,
        /// Wheeling charges on transfers, dollars.
        wheeling_dollars: f64,
        /// Fleet total cost net of settlement, dollars.
        total_cost_dollars: f64,
    },
    /// The connection is closing at the client's request.
    Bye {
        /// Why the connection is closing.
        reason: String,
    },
    /// The request could not be honored; the session survives.
    Error {
        /// Machine-readable error class (see the module docs).
        kind: String,
        /// Human-readable explanation.
        message: String,
    },
}

impl Response {
    /// The greeting emitted as the first line of every connection.
    #[must_use]
    pub fn hello() -> Self {
        Response::Hello {
            service: "dpss-serve".to_owned(),
            version: env!("CARGO_PKG_VERSION").to_owned(),
            schema: SCHEMA_VERSION,
        }
    }
}

/// A recoverable request failure, reported on the wire as
/// [`Response::Error`] without ending the session.
#[derive(Debug, Clone, PartialEq)]
pub struct Fault {
    /// Machine-readable error class (see the module docs).
    pub kind: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Fault {
    /// Creates a fault of the given class.
    #[must_use]
    pub fn new(kind: &'static str, message: impl Into<String>) -> Self {
        Fault {
            kind,
            message: message.into(),
        }
    }

    /// Converts the fault into its wire representation.
    #[must_use]
    pub fn into_response(self) -> Response {
        Response::Error {
            kind: self.kind.to_owned(),
            message: self.message,
        }
    }
}
