//! `dpss-serve`: a crash-resumable streaming control daemon for the
//! SmartDPSS reproduction.
//!
//! The batch crates answer "what would the month have cost"; this crate
//! runs the same engines as a *service*. A session ingests price/demand
//! ticks frame by frame over newline-delimited JSON (stdin/stdout or a
//! Unix-domain socket), drives a resumable run of the single-site
//! [`Engine`](dpss_sim::Engine) or the multi-site lockstep loop with a
//! fleet dispatcher in the loop, and emits per-frame purchase decisions
//! and [`FrameDirective`](dpss_sim::FrameDirective)s as they happen.
//!
//! Three properties are load-bearing and pinned by the conformance
//! suites in `tests/`:
//!
//! 1. **Resume equivalence** — a session snapshotted at any frame,
//!    killed, and resumed finishes with a report byte-identical to an
//!    uninterrupted batch run over the same traces.
//! 2. **Crash safety** — snapshots are versioned, checksummed and
//!    written atomically; `--resume` falls back to the newest *intact*
//!    snapshot past truncated writes, and refuses stale-version state
//!    with a typed error instead of silently reinterpreting it.
//! 3. **Replayability** — every session can log its request stream, and
//!    replaying the log re-derives every response deterministically.
//!
//! # A complete in-memory session
//!
//! ```
//! use std::io::BufReader;
//! use dpss_serve::{serve, ServeOptions};
//!
//! let mut requests = String::new();
//! requests.push_str("{\"cmd\":\"init\",\"mode\":\"scenario\",\"days\":3}\n");
//! for _ in 0..3 {
//!     requests.push_str("{\"cmd\":\"step\"}\n");
//! }
//! requests.push_str("{\"cmd\":\"finish\"}\n{\"cmd\":\"shutdown\"}\n");
//!
//! let mut input = BufReader::new(requests.as_bytes());
//! let mut transcript = Vec::new();
//! let outcome = serve(&mut input, &mut transcript, &ServeOptions::default()).unwrap();
//! assert!(outcome.shutdown);
//! assert!(outcome.final_report.is_some());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod error;
pub mod protocol;
pub mod server;
pub mod session;
pub mod snapshot;

pub use error::ServeError;
pub use protocol::{Fault, RawRequest, Response, SCHEMA_VERSION};
pub use server::{replay_file, serve, ServeOptions, ServeOutcome, SessionServer};
pub use session::{FleetSession, Session, SessionConfig, SessionSnapshot, SingleSession, TickData};
pub use snapshot::{snapshot_salt, LoadedSnapshot, SnapshotFile, SnapshotStore, SNAPSHOT_MAGIC};
