//! Versioned, checksummed, atomically-written snapshots.
//!
//! # On-disk layout
//!
//! A state directory holds one JSON file per snapshot, named
//! `snap-NNNNNN.json` where `NNNNNN` is the zero-padded next frame.
//! Each file is a [`SnapshotFile`] envelope:
//!
//! ```json
//! {"magic":"dpss-serve-snapshot","schema":1,"salt":"…16 hex…",
//!  "frame":12,"payload":"<session JSON>","checksum":"…16 hex…"}
//! ```
//!
//! * **Atomicity** — the envelope is written to `snap-NNNNNN.json.tmp`
//!   and renamed into place, so a crash mid-write leaves either the old
//!   file or a `.tmp` orphan the scan ignores — never a half-snapshot
//!   under the real name.
//! * **Integrity** — `checksum` is `splitmix64(fnv1a(payload) ^ salt)`.
//!   A truncated or bit-flipped payload fails the check and the scan
//!   falls back to the next-newest candidate.
//! * **Versioning** — `salt` keys the checksum to
//!   `splitmix64(schema ^ fnv1a(crate_version))`. A snapshot whose salt
//!   or schema differs from the running binary is *stale*: it passes its
//!   own integrity check (so it is not mistaken for corruption) but
//!   resuming from it is refused with [`ServeError::StaleSnapshot`]
//!   rather than silently reinterpreted.

use std::fs;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use dpss_traces::seed::{fnv1a, splitmix64};

use crate::error::ServeError;
use crate::protocol::SCHEMA_VERSION;

/// Marker identifying snapshot files written by this daemon.
pub const SNAPSHOT_MAGIC: &str = "dpss-serve-snapshot";

/// The version salt the running binary stamps into (and expects from)
/// every snapshot: schema revision crossed with the crate version.
#[must_use]
pub fn snapshot_salt() -> u64 {
    splitmix64(u64::from(SCHEMA_VERSION) ^ fnv1a(env!("CARGO_PKG_VERSION")))
}

/// Keyed integrity checksum of a snapshot payload.
#[must_use]
pub fn payload_checksum(payload: &str, salt: u64) -> u64 {
    splitmix64(fnv1a(payload) ^ salt)
}

/// Renders a 64-bit word as fixed-width lowercase hex. JSON numbers are
/// `f64` on this wire, so 64-bit words always travel as strings.
#[must_use]
pub fn hex64(value: u64) -> String {
    format!("{value:016x}")
}

fn parse_hex64(text: &str) -> Option<u64> {
    if text.len() != 16 {
        return None;
    }
    u64::from_str_radix(text, 16).ok()
}

/// The on-disk snapshot envelope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotFile {
    /// Always [`SNAPSHOT_MAGIC`].
    pub magic: String,
    /// Schema revision of the writer.
    pub schema: u32,
    /// Version salt of the writer, hex.
    pub salt: String,
    /// Next coarse frame recorded in the payload.
    pub frame: usize,
    /// The serialized [`SessionSnapshot`](crate::session::SessionSnapshot).
    pub payload: String,
    /// `splitmix64(fnv1a(payload) ^ salt)`, hex.
    pub checksum: String,
}

/// A snapshot that survived the resume scan.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedSnapshot {
    /// Next coarse frame recorded in the snapshot.
    pub frame: usize,
    /// The serialized session payload.
    pub payload: String,
    /// Newer candidates skipped as corrupt before this one.
    pub discarded: usize,
}

/// A directory of snapshots.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    dir: PathBuf,
}

impl SnapshotStore {
    /// Opens (creating if needed) a state directory.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the directory cannot be created.
    pub fn open(dir: &Path) -> Result<Self, ServeError> {
        fs::create_dir_all(dir).map_err(|e| ServeError::Io {
            context: format!("creating state dir {}", dir.display()),
            message: e.to_string(),
        })?;
        Ok(SnapshotStore {
            dir: dir.to_path_buf(),
        })
    }

    /// The state directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The canonical path of frame `frame`'s snapshot.
    #[must_use]
    pub fn snapshot_path(&self, frame: usize) -> PathBuf {
        self.dir.join(format!("snap-{frame:06}.json"))
    }

    /// Writes a snapshot atomically (tmp file + rename) and returns its
    /// path and hex checksum.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the write or rename fails.
    pub fn write(&self, frame: usize, payload: &str) -> Result<(PathBuf, String), ServeError> {
        let salt = snapshot_salt();
        let checksum = hex64(payload_checksum(payload, salt));
        let file = SnapshotFile {
            magic: SNAPSHOT_MAGIC.to_owned(),
            schema: SCHEMA_VERSION,
            salt: hex64(salt),
            frame,
            payload: payload.to_owned(),
            checksum: checksum.clone(),
        };
        let text = serde_json::to_string(&file).map_err(|e| ServeError::Io {
            context: "serializing snapshot envelope".to_owned(),
            message: e.to_string(),
        })?;
        let path = self.snapshot_path(frame);
        let tmp = self.dir.join(format!("snap-{frame:06}.json.tmp"));
        fs::write(&tmp, &text).map_err(|e| ServeError::Io {
            context: format!("writing {}", tmp.display()),
            message: e.to_string(),
        })?;
        fs::rename(&tmp, &path).map_err(|e| ServeError::Io {
            context: format!("renaming {} into place", tmp.display()),
            message: e.to_string(),
        })?;
        Ok((path, checksum))
    }

    /// Decodes and verifies one snapshot envelope.
    ///
    /// # Errors
    ///
    /// [`ServeError::CorruptSnapshot`] for unparseable, mislabeled or
    /// checksum-failing envelopes; [`ServeError::StaleSnapshot`] for
    /// intact envelopes written by a different version or schema.
    pub fn decode(text: &str) -> Result<(usize, String), ServeError> {
        let file: SnapshotFile =
            serde_json::from_str(text).map_err(|e| ServeError::CorruptSnapshot {
                message: format!("unparseable envelope: {e}"),
            })?;
        if file.magic != SNAPSHOT_MAGIC {
            return Err(ServeError::CorruptSnapshot {
                message: format!("unexpected magic {:?}", file.magic),
            });
        }
        let Some(file_salt) = parse_hex64(&file.salt) else {
            return Err(ServeError::CorruptSnapshot {
                message: format!("malformed salt {:?}", file.salt),
            });
        };
        // Integrity first, against the *writer's* salt, so a truncated
        // stale file reads as corrupt while an intact one reads as stale.
        if hex64(payload_checksum(&file.payload, file_salt)) != file.checksum {
            return Err(ServeError::CorruptSnapshot {
                message: "checksum mismatch (truncated or corrupted write)".to_owned(),
            });
        }
        let expected_salt = snapshot_salt();
        if file.schema != SCHEMA_VERSION || file_salt != expected_salt {
            return Err(ServeError::StaleSnapshot {
                found_schema: file.schema,
                found_salt: file.salt,
                expected_schema: SCHEMA_VERSION,
                expected_salt: hex64(expected_salt),
            });
        }
        Ok((file.frame, file.payload))
    }

    /// Loads the newest usable snapshot, skipping corrupt candidates.
    ///
    /// The scan walks `snap-*.json` newest-first. Corrupt candidates
    /// (truncated writes, checksum mismatches) are counted and skipped;
    /// a *stale* candidate stops the scan with a hard
    /// [`ServeError::StaleSnapshot`] — mixing binary versions in one
    /// state directory is an operator error this refuses to paper over.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoSnapshot`] for an empty directory,
    /// [`ServeError::CorruptSnapshot`] when every candidate fails,
    /// [`ServeError::StaleSnapshot`] as above, and [`ServeError::Io`]
    /// if the directory cannot be read.
    pub fn load_latest(&self) -> Result<LoadedSnapshot, ServeError> {
        let entries = fs::read_dir(&self.dir).map_err(|e| ServeError::Io {
            context: format!("scanning state dir {}", self.dir.display()),
            message: e.to_string(),
        })?;
        let mut names: Vec<String> = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| ServeError::Io {
                context: format!("scanning state dir {}", self.dir.display()),
                message: e.to_string(),
            })?;
            if let Some(name) = entry.file_name().to_str() {
                if name.starts_with("snap-") && name.ends_with(".json") {
                    names.push(name.to_owned());
                }
            }
        }
        if names.is_empty() {
            return Err(ServeError::NoSnapshot {
                dir: self.dir.display().to_string(),
            });
        }
        // Zero-padded frame numbers sort lexicographically; newest first.
        names.sort();
        names.reverse();
        let candidates = names.len();
        let mut discarded = 0;
        for name in names {
            let path = self.dir.join(&name);
            let text = match fs::read_to_string(&path) {
                Ok(text) => text,
                Err(_) => {
                    discarded += 1;
                    continue;
                }
            };
            match Self::decode(&text) {
                Ok((frame, payload)) => {
                    return Ok(LoadedSnapshot {
                        frame,
                        payload,
                        discarded,
                    })
                }
                Err(stale @ ServeError::StaleSnapshot { .. }) => return Err(stale),
                Err(_) => discarded += 1,
            }
        }
        Err(ServeError::CorruptSnapshot {
            message: format!(
                "no usable snapshot among {candidates} candidates in {} ({discarded} corrupt)",
                self.dir.display()
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dpss-serve-snap-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_write_load() {
        let dir = temp_dir("roundtrip");
        let store = SnapshotStore::open(&dir).unwrap();
        store.write(3, "payload-three").unwrap();
        store.write(7, "payload-seven").unwrap();
        let loaded = store.load_latest().unwrap();
        assert_eq!(loaded.frame, 7);
        assert_eq!(loaded.payload, "payload-seven");
        assert_eq!(loaded.discarded, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_falls_back_to_older() {
        let dir = temp_dir("fallback");
        let store = SnapshotStore::open(&dir).unwrap();
        store.write(2, "good-old").unwrap();
        store.write(9, "good-new").unwrap();
        // Simulate a crash mid-write: truncate the newest file.
        let text = fs::read_to_string(store.snapshot_path(9)).unwrap();
        fs::write(store.snapshot_path(9), &text[..text.len() / 2]).unwrap();
        let loaded = store.load_latest().unwrap();
        assert_eq!(loaded.frame, 2);
        assert_eq!(loaded.payload, "good-old");
        assert_eq!(loaded.discarded, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn orphan_tmp_files_are_ignored() {
        let dir = temp_dir("tmp-orphan");
        let store = SnapshotStore::open(&dir).unwrap();
        store.write(4, "real").unwrap();
        fs::write(dir.join("snap-000008.json.tmp"), "half-written garbage").unwrap();
        let loaded = store.load_latest().unwrap();
        assert_eq!(loaded.frame, 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checksum_mismatch_is_corrupt() {
        let dir = temp_dir("checksum");
        let store = SnapshotStore::open(&dir).unwrap();
        store.write(5, "authentic payload").unwrap();
        let text = fs::read_to_string(store.snapshot_path(5)).unwrap();
        let tampered = text.replace("authentic", "tampered!!");
        assert!(matches!(
            SnapshotStore::decode(&tampered),
            Err(ServeError::CorruptSnapshot { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_salt_is_rejected_not_skipped() {
        let dir = temp_dir("stale");
        let store = SnapshotStore::open(&dir).unwrap();
        // Forge an internally-consistent envelope from a "different
        // version": its checksum verifies under its own salt, so it is
        // intact — but the salt is not ours.
        let foreign_salt = snapshot_salt() ^ 0xdead_beef;
        let file = SnapshotFile {
            magic: SNAPSHOT_MAGIC.to_owned(),
            schema: SCHEMA_VERSION,
            salt: hex64(foreign_salt),
            frame: 6,
            payload: "from another version".to_owned(),
            checksum: hex64(payload_checksum("from another version", foreign_salt)),
        };
        fs::write(
            store.snapshot_path(6),
            serde_json::to_string(&file).unwrap(),
        )
        .unwrap();
        let err = store.load_latest().unwrap_err();
        match &err {
            ServeError::StaleSnapshot { expected_salt, .. } => {
                assert_eq!(*expected_salt, hex64(snapshot_salt()));
            }
            other => panic!("expected StaleSnapshot, got {other:?}"),
        }
        // The message names both versions so the operator knows what to do.
        assert!(err.to_string().contains("stale snapshot"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_schema_is_rejected() {
        let salt = snapshot_salt();
        let file = SnapshotFile {
            magic: SNAPSHOT_MAGIC.to_owned(),
            schema: SCHEMA_VERSION + 1,
            salt: hex64(salt),
            frame: 0,
            payload: "future schema".to_owned(),
            checksum: hex64(payload_checksum("future schema", salt)),
        };
        assert!(matches!(
            SnapshotStore::decode(&serde_json::to_string(&file).unwrap()),
            Err(ServeError::StaleSnapshot { .. })
        ));
    }

    #[test]
    fn empty_dir_reports_no_snapshot() {
        let dir = temp_dir("empty");
        let store = SnapshotStore::open(&dir).unwrap();
        assert!(matches!(
            store.load_latest(),
            Err(ServeError::NoSnapshot { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn salt_depends_on_schema_and_version() {
        // The salt must move if either input moves.
        let here = snapshot_salt();
        let other_schema =
            splitmix64(u64::from(SCHEMA_VERSION + 1) ^ fnv1a(env!("CARGO_PKG_VERSION")));
        let other_version = splitmix64(u64::from(SCHEMA_VERSION) ^ fnv1a("99.99.99"));
        assert_ne!(here, other_schema);
        assert_ne!(here, other_version);
    }
}
