//! Resume/replay equivalence conformance suite.
//!
//! The contract pinned here is the daemon's reason to exist: a session
//! that is snapshotted mid-month, killed, and resumed from disk must
//! finish with a [`dpss_sim::RunReport`] that is **byte-identical**
//! (after JSON serialization) to an uninterrupted batch run over the
//! same inputs. Every built-in scenario-pack variant is exercised with
//! both controller kinds at the paper seed, with snapshots taken at the
//! first frame, mid-month, and the penultimate frame.

use std::fs;
use std::path::{Path, PathBuf};

use dpss_core::{FleetPlanner, RecedingHorizon, SmartDpss, SmartDpssConfig};
use dpss_serve::{Response, SessionServer};
use dpss_sim::{Controller, Engine, Interconnect, MultiSiteEngine, SimParams};
use dpss_traces::ScenarioPack;
use dpss_units::{Energy, SlotClock};

/// Master seed shared by every run in the suite (the paper's seed).
const SEED: u64 = 42;
/// Coarse frames in the horizon — the paper's January month.
const DAYS: usize = 31;
/// Snapshot cut points: first frame, mid-month, penultimate frame.
const CUTS: [usize; 3] = [1, DAYS / 2, DAYS - 1];

fn clock() -> SlotClock {
    SlotClock::new(DAYS, 24, 1.0).expect("valid calendar")
}

fn params() -> SimParams {
    SimParams::icdcs13_with_battery(15.0)
}

/// Mirrors the daemon's controller roster exactly.
fn build_controller(kind: &str) -> Box<dyn Controller> {
    match kind {
        "smart" => Box::new(
            SmartDpss::new(SmartDpssConfig::icdcs13(), params(), clock())
                .expect("valid configuration"),
        ),
        "receding" => Box::new(
            RecedingHorizon::new(params())
                .expect("valid parameters")
                .with_warm_start(true),
        ),
        other => panic!("unknown controller kind {other}"),
    }
}

/// The uninterrupted batch run this whole suite is measured against.
fn batch_golden(pack_name: &str, variant: usize, controller: &str) -> String {
    let pack = ScenarioPack::builtin(pack_name).expect("builtin pack");
    let truth = pack
        .generate(&clock(), SEED, variant)
        .expect("traces generate");
    let engine = Engine::new(params(), truth).expect("valid engine");
    let mut ctl = build_controller(controller);
    let report = engine.run(ctl.as_mut()).expect("batch run succeeds");
    serde_json::to_string(&report).expect("report serializes")
}

/// A fresh scratch directory under the cargo-managed test tmpdir.
fn scratch(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(tag);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir is creatable");
    dir
}

fn init_line(pack: &str, variant: usize, controller: &str) -> String {
    format!(
        "{{\"cmd\":\"init\",\"mode\":\"pack\",\"pack\":\"{pack}\",\
         \"variant\":{variant},\"controller\":\"{controller}\"}}"
    )
}

/// Sends one request and fails the test on any `Error` response.
fn expect_ok(server: &mut SessionServer, line: &str) -> Response {
    let (resp, shutdown) = server.handle_line(line);
    assert!(!shutdown, "unexpected shutdown for {line}");
    if let Response::Error { kind, message } = &resp {
        panic!("unexpected {kind} error for {line}: {message}");
    }
    resp
}

fn finish_report(server: &mut SessionServer) -> String {
    match expect_ok(server, "{\"cmd\":\"finish\"}") {
        Response::Finished { report } => serde_json::to_string(&report).expect("report serializes"),
        other => panic!("expected Finished, got {other:?}"),
    }
}

/// One full equivalence check: batch golden, uninterrupted serve run
/// emitting snapshots at every cut, then one cold resume per cut — all
/// four byte-compared against the golden.
fn check_variant(pack: &str, variant: usize, controller: &str) {
    let golden = batch_golden(pack, variant, controller);
    let tag = format!("resume-{pack}-{variant}-{controller}");
    let dir = scratch(&tag);

    let mut server = SessionServer::new(Some(&dir)).expect("state dir opens");
    expect_ok(&mut server, &init_line(pack, variant, controller));
    for frame in 0..DAYS {
        if CUTS.contains(&frame) {
            match expect_ok(&mut server, "{\"cmd\":\"snapshot\"}") {
                Response::Snapshotted { frame: at, .. } => {
                    assert_eq!(at, frame, "snapshot taken at the wrong frame")
                }
                other => panic!("expected Snapshotted, got {other:?}"),
            }
        }
        expect_ok(&mut server, "{\"cmd\":\"step\"}");
    }
    let streamed = finish_report(&mut server);
    assert_eq!(
        streamed, golden,
        "uninterrupted serve run diverged from batch: {pack}/{variant}/{controller}"
    );

    for cut in CUTS {
        let resume_dir = scratch(&format!("{tag}-cut{cut}"));
        let snap = format!("snap-{cut:06}.json");
        fs::copy(dir.join(&snap), resume_dir.join(&snap)).expect("snapshot copies");

        let mut resumed = SessionServer::new(Some(&resume_dir)).expect("state dir opens");
        match resumed.resume_latest().expect("resume succeeds") {
            Response::Resumed {
                frame,
                frames,
                discarded,
            } => {
                assert_eq!(frame, cut, "resumed at the wrong frame");
                assert_eq!(frames, DAYS);
                assert_eq!(discarded, 0, "no corrupt snapshots were planted");
            }
            other => panic!("expected Resumed, got {other:?}"),
        }
        for _ in cut..DAYS {
            expect_ok(&mut resumed, "{\"cmd\":\"step\"}");
        }
        let restored = finish_report(&mut resumed);
        assert_eq!(
            restored, golden,
            "resume at frame {cut} diverged from batch: {pack}/{variant}/{controller}"
        );
    }
}

/// All four variants of one builtin pack under one controller.
fn check_pack(pack: &str, controller: &str) {
    let variants = ScenarioPack::builtin(pack).expect("builtin pack").len();
    assert_eq!(variants, 4, "builtin packs ship four variants each");
    for variant in 0..variants {
        check_variant(pack, variant, controller);
    }
}

#[test]
fn seasonal_calendar_smart_resumes_are_byte_identical() {
    check_pack("seasonal-calendar", "smart");
}

#[test]
fn price_spike_smart_resumes_are_byte_identical() {
    check_pack("price-spike", "smart");
}

#[test]
fn renewable_drought_smart_resumes_are_byte_identical() {
    check_pack("renewable-drought", "smart");
}

#[test]
fn flat_baseline_smart_resumes_are_byte_identical() {
    check_pack("flat-baseline", "smart");
}

#[test]
fn seasonal_calendar_receding_resumes_are_byte_identical() {
    check_pack("seasonal-calendar", "receding");
}

#[test]
fn price_spike_receding_resumes_are_byte_identical() {
    check_pack("price-spike", "receding");
}

#[test]
fn renewable_drought_receding_resumes_are_byte_identical() {
    check_pack("renewable-drought", "receding");
}

#[test]
fn flat_baseline_receding_resumes_are_byte_identical() {
    check_pack("flat-baseline", "receding");
}

// ---- Fleet sessions -----------------------------------------------------

/// The batch fleet golden, mirroring the daemon's construction recipe:
/// per-site pack traces, a pooled 2 MWh interconnect, and the planned
/// fleet dispatcher.
fn fleet_golden(pack_name: &str, variant: usize, sites: usize) -> (Vec<String>, String) {
    let pack = ScenarioPack::builtin(pack_name).expect("builtin pack");
    let mut engines = Vec::with_capacity(sites);
    for site in 0..sites {
        let traces = pack
            .generate_site(&clock(), SEED, variant, site)
            .expect("traces generate");
        engines.push(Engine::new(params(), traces).expect("valid engine"));
    }
    let ic = Interconnect::pooled(sites, Energy::from_mwh(2.0)).expect("valid interconnect");
    let fleet = MultiSiteEngine::new(engines)
        .expect("valid roster")
        .with_interconnect(ic)
        .expect("compatible interconnect");
    let mut controllers: Vec<Box<dyn Controller>> =
        (0..sites).map(|_| build_controller("smart")).collect();
    let mut planner = FleetPlanner::for_engine(&fleet);
    let report = fleet
        .run_with(&mut controllers, &mut planner)
        .expect("batch fleet run succeeds");
    let sites_json = report
        .sites
        .iter()
        .map(|r| serde_json::to_string(r).expect("report serializes"))
        .collect();
    let totals = format!(
        "{} {} {} {} {}",
        report.energy_transferred.mwh(),
        report.energy_delivered.mwh(),
        report.transfer_savings.dollars(),
        report.wheeling_cost.dollars(),
        report.total_cost().dollars(),
    );
    (sites_json, totals)
}

fn fleet_finish(server: &mut SessionServer) -> (Vec<String>, String) {
    match expect_ok(server, "{\"cmd\":\"finish\"}") {
        Response::FleetFinished {
            sites,
            transferred_mwh,
            delivered_mwh,
            savings_dollars,
            wheeling_dollars,
            total_cost_dollars,
        } => {
            let sites_json = sites
                .iter()
                .map(|r| serde_json::to_string(r).expect("report serializes"))
                .collect();
            let totals = format!(
                "{transferred_mwh} {delivered_mwh} {savings_dollars} \
                 {wheeling_dollars} {total_cost_dollars}"
            );
            (sites_json, totals)
        }
        other => panic!("expected FleetFinished, got {other:?}"),
    }
}

#[test]
fn fleet_session_matches_batch_lockstep_and_survives_resume() {
    const SITES: usize = 3;
    let (golden_sites, golden_totals) = fleet_golden("seasonal-calendar", 0, SITES);

    // Uninterrupted fleet session, snapshotted mid-month.
    let dir = scratch("resume-fleet-planned");
    let mut server = SessionServer::new(Some(&dir)).expect("state dir opens");
    expect_ok(
        &mut server,
        "{\"cmd\":\"init\",\"mode\":\"pack\",\"pack\":\"seasonal-calendar\",\
         \"variant\":0,\"sites\":3}",
    );
    let cut = DAYS / 2;
    for frame in 0..DAYS {
        if frame == cut {
            expect_ok(&mut server, "{\"cmd\":\"snapshot\"}");
        }
        match expect_ok(&mut server, "{\"cmd\":\"step\"}") {
            Response::FleetStepped { frame: at, .. } => assert_eq!(at, frame),
            other => panic!("expected FleetStepped, got {other:?}"),
        }
    }
    let (streamed_sites, streamed_totals) = fleet_finish(&mut server);
    assert_eq!(streamed_sites, golden_sites, "per-site reports diverged");
    assert_eq!(streamed_totals, golden_totals, "settlement totals diverged");

    // Cold resume from the mid-month snapshot.
    let mut resumed = SessionServer::new(Some(&dir)).expect("state dir opens");
    match resumed.resume_latest().expect("resume succeeds") {
        Response::Resumed { frame, .. } => assert_eq!(frame, cut),
        other => panic!("expected Resumed, got {other:?}"),
    }
    for _ in cut..DAYS {
        expect_ok(&mut resumed, "{\"cmd\":\"step\"}");
    }
    let (resumed_sites, resumed_totals) = fleet_finish(&mut resumed);
    assert_eq!(
        resumed_sites, golden_sites,
        "resumed per-site reports diverged"
    );
    assert_eq!(
        resumed_totals, golden_totals,
        "resumed settlement totals diverged"
    );
}
