//! Crash-injection conformance suite.
//!
//! A control daemon earns its keep at the worst moment: the process
//! dies mid-month, possibly mid-write. This suite pins what `--resume`
//! does with every kind of wreckage — a truncated newest snapshot falls
//! back to the last complete checksummed one, total corruption and
//! version skew are *typed* hard errors, and a genuinely killed process
//! picks the month back up byte-identically.
//!
//! The damaged envelopes under `tests/fixtures/` are committed verbatim
//! so the classification of each wreck is pinned against drift: their
//! checksums are keyed to forged salts, which makes the fixtures valid
//! under their own declared version forever and stale under every real
//! binary version.

use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

use dpss_serve::{Response, ServeError, SessionServer};

/// A fresh scratch directory under the cargo-managed test tmpdir.
fn scratch(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(tag);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir is creatable");
    dir
}

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Plants a fixture into `dir` under a real snapshot name.
fn plant(dir: &Path, fixture_name: &str, frame: usize) {
    fs::copy(
        fixture(fixture_name),
        dir.join(format!("snap-{frame:06}.json")),
    )
    .expect("fixture copies");
}

fn expect_ok(server: &mut SessionServer, line: &str) -> Response {
    let (resp, _) = server.handle_line(line);
    if let Response::Error { kind, message } = &resp {
        panic!("unexpected {kind} error for {line}: {message}");
    }
    resp
}

/// Drives a 4-day scenario session to completion, snapshotting at the
/// requested frames; returns the serialized final report.
fn run_session(dir: &Path, snapshot_at: &[usize]) -> String {
    let mut server = SessionServer::new(Some(dir)).expect("state dir opens");
    expect_ok(
        &mut server,
        "{\"cmd\":\"init\",\"mode\":\"scenario\",\"days\":4}",
    );
    for frame in 0..4 {
        if snapshot_at.contains(&frame) {
            expect_ok(&mut server, "{\"cmd\":\"snapshot\"}");
        }
        expect_ok(&mut server, "{\"cmd\":\"step\"}");
    }
    match expect_ok(&mut server, "{\"cmd\":\"finish\"}") {
        Response::Finished { report } => serde_json::to_string(&report).expect("report serializes"),
        other => panic!("expected Finished, got {other:?}"),
    }
}

// ---- Fallback and hard-error classification ------------------------------

#[test]
fn truncated_newest_snapshot_falls_back_to_last_complete_one() {
    let dir = scratch("crash-truncated-fallback");
    let golden = run_session(&dir, &[1, 3]);

    // Crash injection: the newest snapshot died mid-write.
    let newest = dir.join("snap-000003.json");
    let text = fs::read_to_string(&newest).expect("snapshot reads");
    fs::write(&newest, &text[..text.len() / 2]).expect("truncation writes");

    let mut resumed = SessionServer::new(Some(&dir)).expect("state dir opens");
    match resumed.resume_latest().expect("resume falls back") {
        Response::Resumed {
            frame,
            frames,
            discarded,
        } => {
            assert_eq!(frame, 1, "fell back to the last complete snapshot");
            assert_eq!(frames, 4);
            assert_eq!(discarded, 1, "the wreck is counted, not hidden");
        }
        other => panic!("expected Resumed, got {other:?}"),
    }
    for _ in 1..4 {
        expect_ok(&mut resumed, "{\"cmd\":\"step\"}");
    }
    match expect_ok(&mut resumed, "{\"cmd\":\"finish\"}") {
        Response::Finished { report } => assert_eq!(
            serde_json::to_string(&report).expect("report serializes"),
            golden,
            "the fallback resume still reproduces the uninterrupted month"
        ),
        other => panic!("expected Finished, got {other:?}"),
    }
}

#[test]
fn empty_state_dir_is_a_typed_no_snapshot_error() {
    let dir = scratch("crash-empty");
    let err = SessionServer::new(Some(&dir))
        .expect("state dir opens")
        .resume_latest()
        .expect_err("nothing to resume");
    assert!(matches!(err, ServeError::NoSnapshot { .. }), "got {err:?}");
}

#[test]
fn pinned_wrecks_are_classified_as_corruption() {
    for name in [
        "truncated-mid-write.json",
        "bad-checksum.json",
        "wrong-magic.json",
    ] {
        let dir = scratch(&format!("crash-fixture-{name}"));
        plant(&dir, name, 3);
        let err = SessionServer::new(Some(&dir))
            .expect("state dir opens")
            .resume_latest()
            .expect_err("wreck must not resume");
        assert!(
            matches!(err, ServeError::CorruptSnapshot { .. }),
            "{name} must read as corruption, got {err:?}"
        );
    }
}

#[test]
fn pinned_stale_snapshots_are_rejected_not_reinterpreted() {
    let dir = scratch("crash-fixture-stale-salt");
    plant(&dir, "stale-salt.json", 3);
    let err = SessionServer::new(Some(&dir))
        .expect("state dir opens")
        .resume_latest()
        .expect_err("stale must not resume");
    match err {
        ServeError::StaleSnapshot {
            found_schema,
            found_salt,
            expected_schema,
            ..
        } => {
            assert_eq!(found_schema, 1);
            assert_eq!(found_salt, "deadbeefdeadbeef");
            assert_eq!(expected_schema, 1);
        }
        other => panic!("expected StaleSnapshot, got {other:?}"),
    }

    let dir = scratch("crash-fixture-stale-schema");
    plant(&dir, "stale-schema.json", 3);
    let err = SessionServer::new(Some(&dir))
        .expect("state dir opens")
        .resume_latest()
        .expect_err("stale must not resume");
    match err {
        ServeError::StaleSnapshot { found_schema, .. } => assert_eq!(found_schema, 0),
        other => panic!("expected StaleSnapshot, got {other:?}"),
    }
}

#[test]
fn stale_snapshot_behind_a_wreck_still_stops_the_scan() {
    // Newest is corrupt (skippable), the one behind it is stale: the
    // scan must hard-stop on the version skew, never silently skip it.
    let dir = scratch("crash-stale-behind-wreck");
    plant(&dir, "bad-checksum.json", 5);
    plant(&dir, "stale-salt.json", 2);
    let err = SessionServer::new(Some(&dir))
        .expect("state dir opens")
        .resume_latest()
        .expect_err("version skew must surface");
    assert!(
        matches!(err, ServeError::StaleSnapshot { .. }),
        "got {err:?}"
    );
}

#[test]
fn a_directory_of_nothing_but_wrecks_is_a_corruption_error() {
    let dir = scratch("crash-all-wrecks");
    plant(&dir, "truncated-mid-write.json", 4);
    plant(&dir, "bad-checksum.json", 2);
    let err = SessionServer::new(Some(&dir))
        .expect("state dir opens")
        .resume_latest()
        .expect_err("no usable snapshot");
    match err {
        ServeError::CorruptSnapshot { message } => {
            assert!(
                message.contains("2 corrupt"),
                "counts the wrecks: {message}"
            )
        }
        other => panic!("expected CorruptSnapshot, got {other:?}"),
    }
}

// ---- A real kill, through the spawned binary -----------------------------

#[test]
fn killed_daemon_resumes_byte_identically_through_the_binary() {
    let dir = scratch("crash-kill-binary");
    let dir_str = dir.to_str().expect("tmpdir path is UTF-8");
    let golden = run_session(&scratch("crash-kill-golden"), &[]);

    // First life: two frames, a snapshot, then SIGKILL mid-session.
    let mut first = Command::new(env!("CARGO_BIN_EXE_dpss-serve"))
        .args(["--state-dir", dir_str])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon spawns");
    let mut stdin = first.stdin.take().expect("stdin is piped");
    let mut stdout = BufReader::new(first.stdout.take().expect("stdout is piped"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("greeting arrives");
    assert!(line.starts_with("{\"Hello\":"), "greeting first: {line}");
    let mut send = |req: &str, line: &mut String| {
        stdin.write_all(req.as_bytes()).expect("request writes");
        stdin.write_all(b"\n").expect("request writes");
        line.clear();
        stdout.read_line(line).expect("response arrives");
    };
    assert!(line.starts_with("{\"Hello\":"), "greeting first: {line}");
    send(
        "{\"cmd\":\"init\",\"mode\":\"scenario\",\"days\":4}",
        &mut line,
    );
    assert!(
        line.starts_with("{\"Started\":"),
        "init acknowledged: {line}"
    );
    send("{\"cmd\":\"step\"}", &mut line);
    send("{\"cmd\":\"step\"}", &mut line);
    send("{\"cmd\":\"snapshot\"}", &mut line);
    assert!(
        line.starts_with("{\"Snapshotted\":"),
        "snapshot landed: {line}"
    );
    first.kill().expect("daemon dies");
    first.wait().expect("daemon reaped");

    // Second life: resume from disk and finish the month.
    let second = Command::new(env!("CARGO_BIN_EXE_dpss-serve"))
        .args(["--state-dir", dir_str, "--resume"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    second
        .stdin
        .as_ref()
        .expect("stdin is piped")
        .write_all(b"{\"cmd\":\"step\"}\n{\"cmd\":\"step\"}\n{\"cmd\":\"finish\"}\n{\"cmd\":\"shutdown\"}\n")
        .expect("requests write");
    let out = second.wait_with_output().expect("daemon exits");
    assert_eq!(out.status.code(), Some(0), "clean exit after resume");
    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    let resumed = stdout
        .lines()
        .nth(1)
        .expect("resume acknowledgment is the second line");
    assert!(
        resumed.starts_with("{\"Resumed\":"),
        "resume acknowledged: {resumed}"
    );
    let finished = stdout
        .lines()
        .find(|l| l.starts_with("{\"Finished\":"))
        .expect("final report reaches stdout");
    let report: Response = serde_json::from_str(finished).expect("report parses");
    match report {
        Response::Finished { report } => assert_eq!(
            serde_json::to_string(&report).expect("report serializes"),
            golden,
            "the killed-and-resumed month matches the uninterrupted one"
        ),
        other => panic!("expected Finished, got {other:?}"),
    }
}
