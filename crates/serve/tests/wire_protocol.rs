//! Wire-protocol conformance suite.
//!
//! Pins the NDJSON contract three ways: golden transcripts for a
//! well-behaved session (exact bytes where the output is closed-form,
//! structural assertions where it is engine-computed), malformed-input
//! recovery (every bad line earns a typed `Error` response and the
//! session survives), and the spawned binary's 0/1/2 exit contract.

use std::io::{BufReader, Write};
use std::process::{Command, Stdio};

use dpss_serve::{serve, Response, ServeOptions, SessionServer};

/// Runs a request log through an in-memory serve loop and returns the
/// transcript lines plus the outcome.
fn run_log(log: &str) -> (Vec<String>, dpss_serve::ServeOutcome) {
    let mut input = BufReader::new(log.as_bytes());
    let mut output = Vec::new();
    let outcome = serve(&mut input, &mut output, &ServeOptions::default())
        .expect("in-memory serve loop succeeds");
    let text = String::from_utf8(output).expect("transcript is UTF-8");
    (text.lines().map(str::to_owned).collect(), outcome)
}

fn parse(line: &str) -> Response {
    serde_json::from_str(line).unwrap_or_else(|e| panic!("unparseable response {line}: {e}"))
}

// ---- Golden transcripts -------------------------------------------------

#[test]
fn hello_and_started_lines_are_golden_bytes() {
    let (lines, outcome) = run_log(
        "{\"cmd\":\"init\",\"mode\":\"scenario\",\"days\":3}\n\
         {\"cmd\":\"status\"}\n\
         {\"cmd\":\"shutdown\"}\n",
    );
    // The greeting and the acknowledgments are closed-form: pin bytes.
    assert_eq!(
        lines[0],
        format!(
            "{{\"Hello\":{{\"service\":\"dpss-serve\",\"version\":\"{}\",\"schema\":1}}}}",
            env!("CARGO_PKG_VERSION")
        )
    );
    assert_eq!(
        lines[1],
        "{\"Started\":{\"mode\":\"scenario\",\"controller\":\"smart\",\
         \"frames\":3,\"slots_per_frame\":24,\"sites\":1}}"
    );
    assert_eq!(
        lines[2],
        "{\"Status\":{\"mode\":\"scenario\",\"controller\":\"smart\",\
         \"frame\":0,\"frames\":3,\"sites\":1,\"done\":false}}"
    );
    assert_eq!(lines[3], "{\"Bye\":{\"reason\":\"client shutdown\"}}");
    assert_eq!(lines.len(), 4);
    assert!(outcome.shutdown);
    assert_eq!(outcome.requests, 3);
    assert_eq!(outcome.errors, 0);
}

#[test]
fn full_session_transcript_is_deterministic_and_well_shaped() {
    let log = "{\"cmd\":\"init\",\"mode\":\"scenario\",\"days\":3}\n\
               {\"cmd\":\"step\"}\n\
               {\"cmd\":\"step\"}\n\
               {\"cmd\":\"step\"}\n\
               {\"cmd\":\"finish\"}\n\
               {\"cmd\":\"shutdown\"}\n";
    let (first, outcome) = run_log(log);
    let (second, _) = run_log(log);
    assert_eq!(first, second, "the same log must replay to the same bytes");
    assert!(outcome.final_report.is_some(), "finish caches the report");

    // Lines 2..=4 are Stepped frames 0..=2; the last one flips `done`.
    for (i, line) in first[2..5].iter().enumerate() {
        match parse(line) {
            Response::Stepped {
                frame,
                done,
                cost_dollars,
                battery_mwh,
                ..
            } => {
                assert_eq!(frame, i, "frames arrive in order");
                assert_eq!(done, i == 2, "done flips on the last frame");
                assert!(cost_dollars.is_finite(), "cost is a number: {line}");
                assert!(battery_mwh >= 0.0, "battery level is physical: {line}");
            }
            other => panic!("expected Stepped, got {other:?}"),
        }
    }
    match parse(&first[5]) {
        Response::Finished { report } => {
            assert_eq!(report.slots, 72, "finish returns the full 3-day report")
        }
        other => panic!("expected Finished, got {other:?}"),
    }
}

#[test]
fn blank_lines_are_skipped_without_response() {
    let (lines, outcome) = run_log("\n   \n{\"cmd\":\"status\"}\n");
    // Hello plus exactly one response: the two blank lines are silent.
    assert_eq!(lines.len(), 2);
    assert_eq!(outcome.requests, 1);
    match parse(&lines[1]) {
        Response::Error { kind, .. } => {
            assert_eq!(kind, "session", "status before init is a session error")
        }
        other => panic!("expected Error, got {other:?}"),
    }
}

// ---- Malformed input recovery -------------------------------------------

/// Sends one line and returns the typed error it must earn.
fn expect_error(server: &mut SessionServer, line: &str) -> (String, String) {
    let (resp, shutdown) = server.handle_line(line);
    assert!(!shutdown, "errors never terminate the loop: {line}");
    match resp {
        Response::Error { kind, message } => (kind, message),
        other => panic!("expected Error for {line}, got {other:?}"),
    }
}

fn expect_ok(server: &mut SessionServer, line: &str) -> Response {
    let (resp, _) = server.handle_line(line);
    if let Response::Error { kind, message } = &resp {
        panic!("unexpected {kind} error for {line}: {message}");
    }
    resp
}

#[test]
fn malformed_lines_earn_typed_errors_and_the_session_survives() {
    let mut server = SessionServer::new(None).expect("memory-only server");

    // Before any session exists.
    let (kind, _) = expect_error(&mut server, "{\"cmd\":\"init\"");
    assert_eq!(kind, "parse", "truncated JSON is a parse error");
    let (kind, _) = expect_error(&mut server, "{\"days\":3}");
    assert_eq!(kind, "protocol", "missing cmd is a protocol error");
    let (kind, msg) = expect_error(&mut server, "{\"cmd\":\"frobnicate\"}");
    assert_eq!(kind, "protocol");
    assert!(
        msg.contains("unknown message type"),
        "message names the problem: {msg}"
    );
    let (kind, _) = expect_error(&mut server, "{\"cmd\":\"step\"}");
    assert_eq!(
        kind, "session",
        "stepping without a session is a session error"
    );
    let (kind, _) = expect_error(&mut server, "{\"cmd\":\"init\",\"mode\":\"wormhole\"}");
    assert_eq!(kind, "protocol", "unknown mode is rejected at init");
    let (kind, _) = expect_error(&mut server, "{\"cmd\":\"init\",\"controller\":\"psychic\"}");
    assert_eq!(kind, "protocol", "unknown controller is rejected at init");
    let (kind, _) = expect_error(
        &mut server,
        "{\"cmd\":\"init\",\"mode\":\"pack\",\"pack\":\"no-such\"}",
    );
    assert_eq!(kind, "protocol", "unknown pack is rejected at init");
    let (kind, _) = expect_error(&mut server, "{\"cmd\":\"init\",\"sites\":2}");
    assert_eq!(kind, "protocol", "fleet sessions must be pack-sourced");

    // A stream session, abused in every direction.
    expect_ok(
        &mut server,
        "{\"cmd\":\"init\",\"mode\":\"stream\",\"days\":2,\"slots_per_frame\":2}",
    );
    let (kind, _) = expect_error(&mut server, "{\"cmd\":\"init\",\"mode\":\"scenario\"}");
    assert_eq!(kind, "session", "one session per connection");
    let (kind, _) = expect_error(&mut server, "{\"cmd\":\"step\"}");
    assert_eq!(kind, "protocol", "stream sessions advance via tick");
    let tick_tail = "\"price_lt\":50.0,\"price_rt\":[40.0,60.0],\"demand_ds\":[0.5,0.5],\
                     \"demand_dt\":[0.2,0.2],\"renewable\":[0.1,0.0]";
    let (kind, msg) = expect_error(
        &mut server,
        &format!("{{\"cmd\":\"tick\",\"frame\":1,{tick_tail}}}"),
    );
    assert_eq!(kind, "order", "out-of-order frames are an order error");
    assert!(
        msg.contains("expected frame 0"),
        "message names the expected frame: {msg}"
    );
    let (kind, _) = expect_error(
        &mut server,
        "{\"cmd\":\"tick\",\"frame\":0,\"price_lt\":-1.0,\"price_rt\":[40.0,60.0],\
         \"demand_ds\":[0.5,0.5],\"demand_dt\":[0.2,0.2],\"renewable\":[0.1,0.0]}",
    );
    assert_eq!(kind, "protocol", "negative prices are a protocol error");
    let (kind, _) = expect_error(
        &mut server,
        "{\"cmd\":\"tick\",\"frame\":0,\"price_lt\":50.0,\"price_rt\":[40.0],\
         \"demand_ds\":[0.5,0.5],\"demand_dt\":[0.2,0.2],\"renewable\":[0.1,0.0]}",
    );
    assert_eq!(kind, "protocol", "short slot series are a protocol error");
    let (kind, _) = expect_error(&mut server, "{\"cmd\":\"snapshot\"}");
    assert_eq!(kind, "state", "snapshots need --state-dir");
    let (kind, _) = expect_error(&mut server, "{\"cmd\":\"finish\"}");
    assert_eq!(kind, "order", "finishing early is an order error");

    // After all that abuse the session still works, start to finish.
    for frame in 0..2 {
        match expect_ok(
            &mut server,
            &format!("{{\"cmd\":\"tick\",\"frame\":{frame},{tick_tail}}}"),
        ) {
            Response::Ticked {
                frame: at, done, ..
            } => {
                assert_eq!(at, frame);
                assert_eq!(done, frame == 1);
            }
            other => panic!("expected Ticked, got {other:?}"),
        }
    }
    match expect_ok(&mut server, "{\"cmd\":\"finish\"}") {
        Response::Finished { report } => assert_eq!(report.slots, 4),
        other => panic!("expected Finished, got {other:?}"),
    }
}

#[test]
fn error_count_is_reported_in_the_outcome() {
    let (lines, outcome) = run_log(
        "not json at all\n\
         {\"cmd\":\"status\"}\n\
         {\"cmd\":\"init\",\"mode\":\"scenario\",\"days\":2}\n\
         {\"cmd\":\"step\"}\n",
    );
    assert_eq!(outcome.requests, 4);
    assert_eq!(outcome.errors, 2);
    assert!(
        !outcome.shutdown,
        "EOF without shutdown is a clean exit too"
    );
    for (line, want) in [(&lines[1], "parse"), (&lines[2], "session")] {
        match parse(line) {
            Response::Error { kind, .. } => assert_eq!(kind, want),
            other => panic!("expected Error, got {other:?}"),
        }
    }
}

// ---- Spawned binary: the 0/1/2 exit contract ----------------------------

fn binary() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dpss-serve"))
}

fn run_binary(args: &[&str], stdin: &str) -> (i32, String, String) {
    let mut child = binary()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .take()
        .expect("stdin is piped")
        .write_all(stdin.as_bytes())
        .expect("stdin writes");
    let out = child.wait_with_output().expect("binary exits");
    (
        out.status.code().expect("binary exits with a code"),
        String::from_utf8(out.stdout).expect("stdout is UTF-8"),
        String::from_utf8(out.stderr).expect("stderr is UTF-8"),
    )
}

#[test]
fn clean_session_exits_zero() {
    let (code, stdout, stderr) = run_binary(
        &[],
        "{\"cmd\":\"init\",\"mode\":\"scenario\",\"days\":2}\n\
         {\"cmd\":\"step\"}\n{\"cmd\":\"step\"}\n{\"cmd\":\"finish\"}\n{\"cmd\":\"shutdown\"}\n",
    );
    assert_eq!(code, 0, "stderr: {stderr}");
    let first = stdout.lines().next().expect("greeting is printed");
    assert!(
        first.starts_with("{\"Hello\":"),
        "greeting comes first: {first}"
    );
    assert!(stdout.contains("\"Finished\""), "report reaches stdout");
}

#[test]
fn request_errors_do_not_change_the_exit_code() {
    let (code, stdout, _) = run_binary(&[], "garbage\n{\"cmd\":\"nope\"}\n");
    assert_eq!(code, 0, "request-level errors are answered, not fatal");
    assert_eq!(stdout.matches("\"Error\"").count(), 2);
}

#[test]
fn usage_errors_exit_two_with_usage_text() {
    for args in [
        &["--bogus-flag"][..],
        &["--resume"][..],
        &["--state-dir"][..],
        &["replay"][..],
        &["replay", "log", "--socket", "/tmp/x.sock"][..],
    ] {
        let (code, _, stderr) = run_binary(args, "");
        assert_eq!(code, 2, "usage error for {args:?}; stderr: {stderr}");
        assert!(
            stderr.contains("dpss-serve: error:"),
            "typed prefix: {stderr}"
        );
        assert!(
            stderr.to_lowercase().contains("usage"),
            "usage appended: {stderr}"
        );
    }
}

#[test]
fn execution_errors_exit_one() {
    let empty = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("wire-empty-state");
    let _ = std::fs::remove_dir_all(&empty);
    std::fs::create_dir_all(&empty).expect("scratch dir is creatable");
    let dir = empty.to_str().expect("tmpdir path is UTF-8");

    let (code, _, stderr) = run_binary(&["--state-dir", dir, "--resume"], "");
    assert_eq!(code, 1, "resume with no snapshot is an execution error");
    assert!(
        stderr.contains("dpss-serve: error:"),
        "typed prefix: {stderr}"
    );

    let (code, _, stderr) = run_binary(&["replay", "/definitely/not/a/file.ndjson"], "");
    assert_eq!(code, 1, "unreadable replay log is an execution error");
    assert!(
        stderr.contains("dpss-serve: error:"),
        "typed prefix: {stderr}"
    );
}
