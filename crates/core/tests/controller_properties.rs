//! Property-based checks of the SmartDPSS controller's decision sanity:
//! for arbitrary observations and plant states, decisions must be finite,
//! respect their caps, and the LP and closed-form subproblem paths must
//! agree on realized behaviour.

use dpss_core::{MarketMode, P5Objective, SmartDpss, SmartDpssConfig};
use dpss_sim::{Controller, FrameObservation, SlotObservation, SystemView};
use dpss_units::{Energy, Price, SlotClock, SlotId};
use proptest::prelude::*;

fn obs_strategy() -> impl Strategy<Value = (SlotObservation, SystemView)> {
    (
        0.0..2.0f64,   // demand_ds
        0.0..0.8f64,   // demand_dt
        0.0..3.0f64,   // renewable
        0.0..100.0f64, // price_rt
        0.0..0.5f64,   // battery level
        0.0..10.0f64,  // backlog
        0.0..2.0f64,   // lt allocation
    )
        .prop_map(|(ds, dt, r, prt, level, backlog, lt)| {
            let obs = SlotObservation {
                slot: SlotId {
                    index: 30,
                    frame: 1,
                    offset: 6,
                },
                slot_hours: 1.0,
                price_rt: Price::from_dollars_per_mwh(prt),
                price_lt: Price::from_dollars_per_mwh(36.0),
                demand_ds: Energy::from_mwh(ds),
                demand_dt: Energy::from_mwh(dt),
                renewable: Energy::from_mwh(r),
            };
            let view = SystemView {
                battery_level: Energy::from_mwh(level.max(0.034)),
                battery_headroom: Energy::from_mwh(((0.5 - level) / 0.8).clamp(0.0, 0.5)),
                battery_available: Energy::from_mwh(((level - 0.033) / 1.25).clamp(0.0, 0.5)),
                battery_ops_remaining: None,
                queue_backlog: Energy::from_mwh(backlog),
                lt_allocation: Energy::from_mwh(lt.min(2.0)),
                rt_purchase_cap: Energy::from_mwh((2.0 - lt).max(0.0)),
            };
            (obs, view)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn slot_decisions_are_always_sane(
        (obs, view) in obs_strategy(),
        v in 0.05..5.0f64,
        obj in prop_oneof![Just(P5Objective::Derived), Just(P5Objective::PaperLiteral)],
    ) {
        let params = dpss_sim::SimParams::icdcs13();
        let clock = SlotClock::icdcs13_month();
        let config = SmartDpssConfig::icdcs13().with_v(v).with_p5_objective(obj);
        let mut ctl = SmartDpss::new(config, params, clock).unwrap();
        let d = ctl.plan_slot(&obs, &view);
        prop_assert!(d.purchase_rt.is_finite());
        prop_assert!(d.purchase_rt.mwh() >= 0.0);
        prop_assert!(d.purchase_rt <= view.rt_purchase_cap + Energy::from_mwh(1e-9));
        prop_assert!(d.serve_fraction.is_finite());
        prop_assert!((0.0..=1.0).contains(&d.serve_fraction));
    }

    #[test]
    fn lp_and_closed_form_agree_per_slot(
        (obs, view) in obs_strategy(),
        v in 0.05..5.0f64,
    ) {
        let params = dpss_sim::SimParams::icdcs13();
        let clock = SlotClock::icdcs13_month();
        let mut cf = SmartDpss::new(SmartDpssConfig::icdcs13().with_v(v), params, clock).unwrap();
        let mut lp = SmartDpss::new(
            SmartDpssConfig::icdcs13().with_v(v).with_lp_solver(true),
            params,
            clock,
        )
        .unwrap();
        let d_cf = cf.plan_slot(&obs, &view);
        let d_lp = lp.plan_slot(&obs, &view);
        // The argmin may differ on exact ties; realized (g_rt, s_dt) costs
        // must agree. Compare the decisions' physical effect:
        let served_cf = view.queue_backlog.mwh() * d_cf.serve_fraction;
        let served_lp = view.queue_backlog.mwh() * d_lp.serve_fraction;
        let net_cf = d_cf.purchase_rt.mwh() - served_cf;
        let net_lp = d_lp.purchase_rt.mwh() - served_lp;
        prop_assert!(
            (net_cf - net_lp).abs() < 1e-6
                || (d_cf.purchase_rt.mwh() - d_lp.purchase_rt.mwh()).abs() < 1e-6,
            "cf {d_cf:?} vs lp {d_lp:?}"
        );
    }

    #[test]
    fn frame_decisions_respect_market_mode_and_caps(
        ds in 0.0..2.0f64,
        dt in 0.0..0.8f64,
        r in 0.0..3.0f64,
        plt in 0.0..100.0f64,
        backlog in 0.0..10.0f64,
    ) {
        let params = dpss_sim::SimParams::icdcs13();
        let clock = SlotClock::icdcs13_month();
        let obs = FrameObservation {
            frame: 1,
            slot: 24,
            slots_in_frame: 24,
            slot_hours: 1.0,
            price_lt: Price::from_dollars_per_mwh(plt),
            demand_ds: Energy::from_mwh(ds),
            demand_dt: Energy::from_mwh(dt),
            renewable: Energy::from_mwh(r),
        };
        let view = SystemView {
            battery_level: Energy::from_mwh(0.3),
            battery_headroom: Energy::from_mwh(0.25),
            battery_available: Energy::from_mwh(0.2),
            battery_ops_remaining: None,
            queue_backlog: Energy::from_mwh(backlog),
            lt_allocation: Energy::ZERO,
            rt_purchase_cap: Energy::from_mwh(2.0),
        };
        let mut tm = SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap();
        let d = tm.plan_frame(&obs, &view);
        prop_assert!(d.purchase_lt.is_finite());
        prop_assert!(d.purchase_lt.mwh() >= 0.0);
        prop_assert!(d.purchase_lt.mwh() <= 24.0 * 2.0 + 1e-9, "frame interconnect cap");

        let mut rtm = SmartDpss::new(
            SmartDpssConfig::icdcs13().with_market(MarketMode::RealTimeOnly),
            params,
            clock,
        )
        .unwrap();
        prop_assert_eq!(rtm.plan_frame(&obs, &view).purchase_lt, Energy::ZERO);
    }
}
