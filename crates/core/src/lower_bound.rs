use dpss_sim::SimParams;
use dpss_traces::TraceSet;
use dpss_units::{Energy, Money, Price};

/// A relaxation-based lower bound on the total operating cost of *any*
/// feasible policy (online or offline) over the horizon.
///
/// Relaxations: the battery is treated as a lossless, infinitely large,
/// wear-free store; the interconnect and deadline constraints are dropped;
/// renewable energy is freely shiftable. Under those relaxations every
/// megawatt-hour of net demand (total demand minus total renewables) can
/// be bought at the single cheapest price observed anywhere in the
/// horizon, and no other cost can be avoided below zero — hence
///
/// ```text
/// bound = (Σd − Σr)⁺ · min(all p_lt, all p_rt)
/// ```
///
/// It is intentionally loose; its role is a sanity floor in the benchmark
/// ordering `bound ≤ offline ≤ online`.
///
/// # Examples
///
/// ```
/// use dpss_core::cheapest_window_bound;
/// use dpss_sim::SimParams;
/// use dpss_traces::paper_month_traces;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let truth = paper_month_traces(42)?;
/// let bound = cheapest_window_bound(&truth, &SimParams::icdcs13());
/// assert!(bound.dollars() > 0.0);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn cheapest_window_bound(truth: &TraceSet, _params: &SimParams) -> Money {
    let net_demand = (truth.total_demand() - truth.total_renewable()).positive_part();
    if net_demand <= Energy::ZERO {
        return Money::ZERO;
    }
    let min_price = truth
        .price_lt
        .iter()
        .chain(truth.price_rt.iter())
        .copied()
        .fold(Price::from_dollars_per_mwh(f64::INFINITY), Price::min);
    if !min_price.is_finite() {
        return Money::ZERO;
    }
    net_demand * min_price
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpss_traces::Scenario;
    use dpss_units::SlotClock;

    #[test]
    fn bound_is_positive_for_paper_traces() {
        let t = dpss_traces::paper_month_traces(1).unwrap();
        let b = cheapest_window_bound(&t, &SimParams::icdcs13());
        assert!(b.dollars() > 0.0);
    }

    #[test]
    fn bound_zero_when_renewables_cover_everything() {
        let clock = SlotClock::new(1, 2, 1.0).unwrap();
        let t = TraceSet::new(
            clock,
            vec![Energy::from_mwh(0.1); 2],
            vec![Energy::ZERO; 2],
            vec![Energy::from_mwh(5.0); 2],
            vec![Price::from_dollars_per_mwh(30.0)],
            vec![Price::from_dollars_per_mwh(50.0); 2],
        )
        .unwrap();
        assert_eq!(
            cheapest_window_bound(&t, &SimParams::icdcs13()),
            Money::ZERO
        );
    }

    #[test]
    fn bound_uses_the_global_minimum_price() {
        let clock = SlotClock::new(2, 1, 1.0).unwrap();
        let t = TraceSet::new(
            clock,
            vec![Energy::from_mwh(1.0); 2],
            vec![Energy::ZERO; 2],
            vec![Energy::ZERO; 2],
            vec![
                Price::from_dollars_per_mwh(40.0),
                Price::from_dollars_per_mwh(10.0),
            ],
            vec![Price::from_dollars_per_mwh(60.0); 2],
        )
        .unwrap();
        // 2 MWh at the $10 minimum.
        let b = cheapest_window_bound(&t, &SimParams::icdcs13());
        assert!((b.dollars() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn bound_below_any_real_controller() {
        let clock = SlotClock::new(3, 24, 1.0).unwrap();
        let truth = Scenario::icdcs13().generate(&clock, 9).unwrap();
        let params = SimParams::icdcs13();
        let bound = cheapest_window_bound(&truth, &params);
        let engine = dpss_sim::Engine::new(params, truth).unwrap();
        let r = engine.run(&mut crate::Impatient::two_markets()).unwrap();
        assert!(bound <= r.total_cost());
    }
}
