use dpss_sim::{
    Controller, ControllerState, FrameDecision, FrameDirective, FrameObservation, SimError,
    SimParams, SlotDecision, SlotObservation, SlotOutcome, SystemView,
};
use dpss_units::{Energy, SlotClock};
use serde::{Deserialize, Serialize};

use crate::{p4, p5, CoreError, MarketMode, P4Variant, SmartDpssConfig, TheoremBounds};

/// The SmartDPSS online controller (Algorithm 1).
///
/// State: the delay-aware virtual queue `Y(t)` (Eq. (12)). The demand
/// backlog `Q(t)` lives in the plant and is read from the
/// [`SystemView`]; the availability queue `X(t)` is the battery level
/// shifted by `Umax + Bmin + Bdmax·ηd` (Eq. (14)) and is derived per slot.
///
/// Decisions:
///
/// * at each coarse-frame start, subproblem **P4** picks the long-term
///   purchase `g_bef(t)` from the weight `V·p_lt(t) − Q(t) − Y(t)`;
/// * at each fine slot, subproblem **P5** picks the real-time purchase
///   `g_rt(τ)` and the service fraction `γ(τ)`, trading purchase cost,
///   waste and battery wear against queue reduction (see
///   [`P5Objective`](crate::P5Objective));
/// * after the plant applies the decisions, `Y(t)` is updated with the
///   realized service (`Y ← max{Y − s_dt + ε·1[Q>0], 0}`).
///
/// The controller requires no statistics of the future: everything it
/// sees is the current observation and its own queues, which is the
/// paper's headline property.
///
/// # Examples
///
/// See the crate-level example. For the cost–delay trade-off, sweep `V`:
///
/// ```
/// use dpss_core::{SmartDpss, SmartDpssConfig};
/// use dpss_sim::{Engine, SimParams};
/// use dpss_traces::Scenario;
/// use dpss_units::SlotClock;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let clock = SlotClock::new(4, 24, 1.0)?;
/// let traces = Scenario::icdcs13().generate(&clock, 1)?;
/// let params = SimParams::icdcs13();
/// let engine = Engine::new(params, traces)?;
/// let mut low_v = SmartDpss::new(SmartDpssConfig::icdcs13().with_v(0.05), params, clock)?;
/// let mut high_v = SmartDpss::new(SmartDpssConfig::icdcs13().with_v(5.0), params, clock)?;
/// let r_low = engine.run(&mut low_v)?;
/// let r_high = engine.run(&mut high_v)?;
/// // Larger V defers more aggressively.
/// assert!(r_high.average_delay_slots >= r_low.average_delay_slots);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SmartDpss {
    config: SmartDpssConfig,
    params: SimParams,
    bounds: TheoremBounds,
    /// Delay-aware virtual queue `Y(t)` (MWh-equivalent scalar).
    y: f64,
    /// Backlog observed when the current slot was planned (for the
    /// `1[Q(t)>0]` indicator of Eq. (12)).
    planned_backlog: f64,
    /// Largest `Y(t)` seen (for bound audits).
    y_max_seen: f64,
    /// Fleet dispatch directive for the coming frame, if a coordinated
    /// [`MultiSiteEngine`](dpss_sim::MultiSiteEngine) run delivered one.
    directive: Option<FrameDirective>,
}

impl SmartDpss {
    /// Creates a controller for the given configuration, plant parameters
    /// and calendar.
    ///
    /// # Errors
    ///
    /// Propagates configuration and parameter validation.
    pub fn new(
        config: SmartDpssConfig,
        params: SimParams,
        clock: SlotClock,
    ) -> Result<Self, CoreError> {
        config.validate()?;
        params.validate()?;
        let bounds = TheoremBounds::compute(&config, &params, &clock);
        Ok(SmartDpss {
            config,
            params,
            bounds,
            y: 0.0,
            planned_backlog: 0.0,
            y_max_seen: 0.0,
            directive: None,
        })
    }

    /// Clears the controller's internal state (the virtual queue `Y(t)`
    /// and its statistics) so the instance can be reused for a fresh run.
    ///
    /// The engine builds a fresh plant per run, but controller state is
    /// the controller's own; reusing an instance without resetting would
    /// carry the previous run's delay pressure into the new one.
    pub fn reset(&mut self) {
        self.y = 0.0;
        self.planned_backlog = 0.0;
        self.y_max_seen = 0.0;
        self.directive = None;
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &SmartDpssConfig {
        &self.config
    }

    /// The Theorem 2 bounds for this parameterization.
    #[must_use]
    pub fn bounds(&self) -> &TheoremBounds {
        &self.bounds
    }

    /// Current value of the delay-aware virtual queue `Y(t)`.
    #[must_use]
    pub fn virtual_queue_y(&self) -> f64 {
        self.y
    }

    /// Largest `Y(t)` observed so far (bound audits).
    #[must_use]
    pub fn y_max_seen(&self) -> f64 {
        self.y_max_seen
    }

    /// The availability queue `X(t)` for a given battery level (Eq. (14)).
    #[must_use]
    pub fn x_of(&self, battery_level: Energy) -> f64 {
        self.bounds.x_of_level(&self.params, battery_level.mwh())
    }

    fn p5_inputs(&self, obs: &SlotObservation, view: &SystemView) -> p5::P5Inputs {
        let base = (view.lt_allocation + obs.renewable - obs.demand_ds).mwh();
        let mut g_cap = view.rt_purchase_cap.mwh();
        if let Some(smax) = self.params.supply_cap {
            let fixed = view.lt_allocation + obs.renewable;
            g_cap = g_cap.min((smax - fixed).positive_part().mwh());
        }
        let mut y_cap = view.queue_backlog.mwh();
        if let Some(sdt) = self.params.sdt_max {
            y_cap = y_cap.min(sdt.mwh());
        }
        p5::P5Inputs {
            base,
            g_cap,
            y_cap,
            headroom: view.battery_headroom.mwh(),
            available: view.battery_available.mwh(),
            q: view.queue_backlog.mwh(),
            y_queue: self.y,
            x: self.x_of(view.battery_level),
            v: self.config.v,
            p_rt: obs.price_rt.dollars_per_mwh(),
            cb: self.params.battery.op_cost.dollars(),
            w_pen: self.params.waste_price.dollars_per_mwh(),
            eta_c: self.params.battery.charge_efficiency,
            eta_d: self.params.battery.discharge_efficiency,
            objective: self.config.p5_objective,
        }
    }
}

/// The checkpointable internals of [`SmartDpss`], carried as the
/// [`ControllerState`] payload (JSON).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SmartDpssPayload {
    y: f64,
    planned_backlog: f64,
    y_max_seen: f64,
    directive: Option<FrameDirective>,
}

impl Controller for SmartDpss {
    fn name(&self) -> &str {
        "smart-dpss"
    }

    fn save_state(&self) -> ControllerState {
        let payload = SmartDpssPayload {
            y: self.y,
            planned_backlog: self.planned_backlog,
            y_max_seen: self.y_max_seen,
            directive: self.directive,
        };
        ControllerState {
            payload: serde_json::to_string(&payload).ok(),
            ..ControllerState::empty()
        }
    }

    fn load_state(&mut self, state: &ControllerState) -> Result<(), SimError> {
        let Some(json) = &state.payload else {
            return Err(SimError::InvalidState {
                what: "smart-dpss state must carry a payload",
            });
        };
        let payload: SmartDpssPayload =
            serde_json::from_str(json).map_err(|_| SimError::InvalidState {
                what: "smart-dpss payload is not a valid state record",
            })?;
        let ok = |x: f64| x.is_finite() && x >= 0.0;
        if !ok(payload.y) || !ok(payload.planned_backlog) || !ok(payload.y_max_seen) {
            return Err(SimError::InvalidState {
                what: "smart-dpss queue state must be finite and non-negative",
            });
        }
        self.y = payload.y;
        self.planned_backlog = payload.planned_backlog;
        self.y_max_seen = payload.y_max_seen;
        self.directive = payload.directive;
        Ok(())
    }

    fn receive_directive(&mut self, directive: &FrameDirective) {
        self.directive = Some(*directive);
    }

    fn plan_frame(&mut self, obs: &FrameObservation, view: &SystemView) -> FrameDecision {
        if self.config.market == MarketMode::RealTimeOnly {
            return FrameDecision {
                purchase_lt: Energy::ZERO,
            };
        }
        let slot_cap = self.params.grid_slot_cap(obs.slot_hours).mwh();
        // How much the battery offsets the per-slot demand cover. The
        // printed P4 uses the level `b(t)` as a per-slot resource; the
        // waste-aware variant spreads the battery's deliverable *energy*
        // over the frame (it cannot discharge its capacity every slot).
        let battery_offset = match self.config.p4_variant {
            P4Variant::PaperLiteral => view.battery_available,
            P4Variant::WasteAware => {
                (view.battery_level - self.params.battery.min_level).positive_part()
                    / (self.params.battery.discharge_efficiency * obs.slots_in_frame as f64)
            }
        };
        let need_per_slot = (obs.demand_ds - obs.renewable - battery_offset).mwh();
        let total_cap = match self.config.p4_variant {
            P4Variant::PaperLiteral => f64::INFINITY,
            P4Variant::WasteAware => {
                // Frame absorption: projected net demand of both classes
                // plus the standing backlog. Deliberately buying extra to
                // fill the battery is excluded — round-tripping purchased
                // energy through ηc·ηd < 1 loses more than time-shifting
                // gains; the battery fills from incidental surplus instead.
                let per_slot_net = (obs.demand_ds + obs.demand_dt - obs.renewable).positive_part();
                // audit:allow(unit-cast): slot count scales an Energy, it is not a unit conversion
                (per_slot_net * obs.slots_in_frame as f64 + view.queue_backlog).mwh()
            }
        };
        let inputs = p4::P4Inputs {
            weight: self.config.v * obs.price_lt.dollars_per_mwh()
                - (view.queue_backlog.mwh() + self.y),
            need_per_slot,
            slots: obs.slots_in_frame as f64,
            slot_cap,
            total_cap,
        };
        let total = if self.config.use_lp_solver {
            p4::solve_lp(&inputs).unwrap_or_else(|_| p4::solve_closed_form(&inputs))
        } else {
            p4::solve_closed_form(&inputs)
        };
        // Buy-to-export: a coordinated fleet directive can top the frame
        // purchase off with energy destined for a neighbour (re-checked
        // against the actual quoted p_lt by `economic_top_off`); the
        // engine clamps the sum to the *grid* frame cap `T·Pgrid·Δh` —
        // link caps only bound it indirectly, through the planner's
        // export-headroom input.
        let top_off = self.directive.map_or(Energy::ZERO, |d| {
            d.economic_top_off(obs.frame, obs.price_lt, self.params.waste_price)
        });
        FrameDecision {
            purchase_lt: Energy::from_mwh(total.max(0.0)) + top_off,
        }
    }

    fn plan_slot(&mut self, obs: &SlotObservation, view: &SystemView) -> SlotDecision {
        self.planned_backlog = view.queue_backlog.mwh();
        let inputs = self.p5_inputs(obs, view);
        let sol = if self.config.use_lp_solver {
            p5::solve_lp(&inputs).unwrap_or_else(|_| p5::solve_closed_form(&inputs))
        } else {
            p5::solve_closed_form(&inputs)
        };
        let backlog = view.queue_backlog.mwh();
        let serve_fraction = if backlog > 1e-12 {
            (sol.s_dt / backlog).clamp(0.0, 1.0)
        } else {
            0.0
        };
        SlotDecision {
            purchase_rt: Energy::from_mwh(sol.g_rt.max(0.0)),
            serve_fraction,
        }
    }

    fn end_slot(&mut self, outcome: &SlotOutcome, _view: &SystemView) {
        // Eq. (12): Y(t+1) = max{Y(t) − s_dt(t) + ε·1[Q(t)>0], 0}, with the
        // *realized* service and the backlog as seen at planning time.
        let indicator = if self.planned_backlog > 1e-12 {
            1.0
        } else {
            0.0
        };
        self.y = (self.y - outcome.served_dt.mwh() + self.config.epsilon * indicator).max(0.0);
        self.y_max_seen = self.y_max_seen.max(self.y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpss_sim::Engine;
    use dpss_traces::Scenario;

    fn run_frames(config: SmartDpssConfig, seed: u64, frames: usize) -> dpss_sim::RunReport {
        let clock = SlotClock::new(frames, 24, 1.0).unwrap();
        let traces = Scenario::icdcs13().generate(&clock, seed).unwrap();
        let params = SimParams::icdcs13();
        let engine = Engine::new(params, traces).unwrap();
        let mut ctl = SmartDpss::new(config, params, clock).unwrap();
        engine.run(&mut ctl).unwrap()
    }

    fn run_with(config: SmartDpssConfig, seed: u64) -> dpss_sim::RunReport {
        run_frames(config, seed, 6)
    }

    #[test]
    fn construction_validates() {
        let clock = SlotClock::icdcs13_month();
        let params = SimParams::icdcs13();
        assert!(SmartDpss::new(SmartDpssConfig::icdcs13().with_v(-1.0), params, clock).is_err());
        let ctl = SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap();
        assert_eq!(ctl.name(), "smart-dpss");
        assert_eq!(ctl.virtual_queue_y(), 0.0);
        assert!(ctl.bounds().q_max > 0.0);
    }

    #[test]
    fn serves_all_demand_without_violations() {
        let r = run_with(SmartDpssConfig::icdcs13(), 42);
        assert_eq!(r.unserved_ds, Energy::ZERO);
        assert_eq!(r.availability_violations, 0);
        // Delay-tolerant demand is eventually served (small residue may
        // remain at the horizon edge).
        assert!(r.served_dt.mwh() > 0.0);
    }

    #[test]
    fn real_time_only_mode_buys_nothing_long_term() {
        let r = run_with(
            SmartDpssConfig::icdcs13().with_market(MarketMode::RealTimeOnly),
            42,
        );
        assert_eq!(r.energy_lt, Energy::ZERO);
        assert_eq!(r.cost_lt.dollars(), 0.0);
        assert!(r.energy_rt.mwh() > 0.0);
    }

    #[test]
    fn two_markets_cheaper_than_real_time_only() {
        // The Fig. 7 "TM vs RTM" claim. Two weeks, not six days: the
        // prev-frame-average forecast needs warm-up before the E[p_rt] >
        // E[p_lt] gap dominates per-trace noise; at 14+ frames TM wins on
        // every seed tried, at 6 it is a coin flip.
        let tm = run_frames(SmartDpssConfig::icdcs13(), 42, 14);
        let rtm = run_frames(
            SmartDpssConfig::icdcs13().with_market(MarketMode::RealTimeOnly),
            42,
            14,
        );
        assert!(
            tm.total_cost() < rtm.total_cost(),
            "tm {} vs rtm {}",
            tm.total_cost(),
            rtm.total_cost()
        );
    }

    #[test]
    fn lp_and_closed_form_paths_agree_end_to_end() {
        let cf = run_with(SmartDpssConfig::icdcs13(), 7);
        let lp = run_with(SmartDpssConfig::icdcs13().with_lp_solver(true), 7);
        assert!(
            (cf.total_cost().dollars() - lp.total_cost().dollars()).abs()
                < 1e-6 * cf.total_cost().dollars().abs().max(1.0),
            "cf {} vs lp {}",
            cf.total_cost(),
            lp.total_cost()
        );
        assert!((cf.average_delay_slots - lp.average_delay_slots).abs() < 1e-6);
    }

    #[test]
    fn y_queue_updates_follow_eq_12() {
        let clock = SlotClock::new(2, 4, 1.0).unwrap();
        let params = SimParams::icdcs13();
        let mut ctl =
            SmartDpss::new(SmartDpssConfig::icdcs13().with_epsilon(0.5), params, clock).unwrap();
        // Simulate an end_slot with backlog present and no service.
        ctl.planned_backlog = 1.0;
        let outcome = fake_outcome(0.0);
        ctl.end_slot(&outcome, &fake_view());
        assert!((ctl.virtual_queue_y() - 0.5).abs() < 1e-12);
        // Service shrinks Y; floor at zero.
        ctl.planned_backlog = 1.0;
        let outcome = fake_outcome(5.0);
        ctl.end_slot(&outcome, &fake_view());
        assert_eq!(ctl.virtual_queue_y(), 0.0);
        // Empty backlog → no growth.
        ctl.planned_backlog = 0.0;
        let outcome = fake_outcome(0.0);
        ctl.end_slot(&outcome, &fake_view());
        assert_eq!(ctl.virtual_queue_y(), 0.0);
        assert!((ctl.y_max_seen() - 0.5).abs() < 1e-12);
    }

    fn fake_outcome(served_dt: f64) -> SlotOutcome {
        SlotOutcome {
            slot: dpss_units::SlotId {
                index: 0,
                frame: 0,
                offset: 0,
            },
            supply_lt: Energy::ZERO,
            purchase_rt: Energy::ZERO,
            emergency_rt: Energy::ZERO,
            renewable: Energy::ZERO,
            served_ds: Energy::ZERO,
            served_dt: Energy::from_mwh(served_dt),
            charge: Energy::ZERO,
            discharge: Energy::ZERO,
            waste: Energy::ZERO,
            unserved_ds: Energy::ZERO,
            battery_level_after: Energy::ZERO,
            queue_after: Energy::ZERO,
            battery_op: false,
            cost: dpss_sim::SlotCost::default(),
        }
    }

    fn fake_view() -> SystemView {
        SystemView {
            battery_level: Energy::ZERO,
            battery_headroom: Energy::ZERO,
            battery_available: Energy::ZERO,
            battery_ops_remaining: None,
            queue_backlog: Energy::ZERO,
            lt_allocation: Energy::ZERO,
            rt_purchase_cap: Energy::ZERO,
        }
    }

    #[test]
    fn directives_top_off_the_frame_purchase_only_when_economic() {
        let clock = SlotClock::new(2, 4, 1.0).unwrap();
        let params = SimParams::icdcs13();
        let mut ctl = SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap();
        let obs = FrameObservation {
            frame: 0,
            slot: 0,
            slots_in_frame: 4,
            slot_hours: 1.0,
            price_lt: dpss_units::Price::from_dollars_per_mwh(30.0),
            demand_ds: Energy::from_mwh(0.5),
            demand_dt: Energy::from_mwh(0.2),
            renewable: Energy::from_mwh(0.1),
        };
        let base = ctl.plan_frame(&obs, &fake_view()).purchase_lt;

        // A profitable export directive (delivered value beats
        // p_lt + waste penalty) tops the purchase off by exactly the
        // procure amount.
        ctl.receive_directive(&FrameDirective {
            frame: 0,
            procure_for_export: Energy::from_mwh(2.0),
            export_quota: Energy::from_mwh(2.0),
            import_expectation: Energy::ZERO,
            export_value: 60.0,
        });
        let directed = ctl.plan_frame(&obs, &fake_view()).purchase_lt;
        assert!((directed.mwh() - base.mwh() - 2.0).abs() < 1e-12);

        // Uneconomic value ($30 < $30 + $1 waste): ignored.
        ctl.receive_directive(&FrameDirective {
            export_value: 30.0,
            ..FrameDirective {
                frame: 0,
                procure_for_export: Energy::from_mwh(2.0),
                export_quota: Energy::from_mwh(2.0),
                import_expectation: Energy::ZERO,
                export_value: 0.0,
            }
        });
        assert_eq!(ctl.plan_frame(&obs, &fake_view()).purchase_lt, base);

        // Stale directive (wrong frame): ignored.
        ctl.receive_directive(&FrameDirective {
            frame: 1,
            procure_for_export: Energy::from_mwh(2.0),
            export_quota: Energy::from_mwh(2.0),
            import_expectation: Energy::ZERO,
            export_value: 60.0,
        });
        assert_eq!(ctl.plan_frame(&obs, &fake_view()).purchase_lt, base);

        // Inert directives never change the decision, and reset clears
        // any stored one.
        ctl.receive_directive(&FrameDirective::inert(0));
        assert_eq!(ctl.plan_frame(&obs, &fake_view()).purchase_lt, base);
        ctl.receive_directive(&FrameDirective {
            frame: 0,
            procure_for_export: Energy::from_mwh(2.0),
            export_quota: Energy::from_mwh(2.0),
            import_expectation: Energy::ZERO,
            export_value: 60.0,
        });
        ctl.reset();
        assert_eq!(ctl.plan_frame(&obs, &fake_view()).purchase_lt, base);
    }

    #[test]
    fn waste_aware_p4_never_exceeds_paper_literal_waste() {
        let literal = run_with(SmartDpssConfig::icdcs13(), 11);
        let aware = run_with(
            SmartDpssConfig::icdcs13().with_p4_variant(P4Variant::WasteAware),
            11,
        );
        assert!(
            aware.energy_wasted.mwh() <= literal.energy_wasted.mwh() + 1e-9,
            "aware {} vs literal {}",
            aware.energy_wasted,
            literal.energy_wasted
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_with(SmartDpssConfig::icdcs13(), 3);
        let b = run_with(SmartDpssConfig::icdcs13(), 3);
        assert_eq!(a, b);
    }

    #[test]
    fn save_load_state_resumes_byte_identically() {
        let clock = SlotClock::new(6, 24, 1.0).unwrap();
        let traces = Scenario::icdcs13().generate(&clock, 42).unwrap();
        let params = SimParams::icdcs13();
        let engine = Engine::new(params, traces).unwrap();
        let mut full_ctl = SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap();
        let full = engine.run(&mut full_ctl).unwrap();

        // Step 3 frames, checkpoint engine + controller, restore both
        // into fresh instances, finish: the report must be identical.
        let mut ctl = SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap();
        let mut run = engine.begin().unwrap();
        for _ in 0..3 {
            run.step_frame(&mut ctl).unwrap();
        }
        let engine_state = run.state();
        let ctl_state = ctl.save_state();
        assert!(!ctl_state.is_empty());

        let mut restored = SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap();
        restored.load_state(&ctl_state).unwrap();
        assert_eq!(restored.virtual_queue_y(), ctl.virtual_queue_y());
        let mut resumed = engine.resume(engine_state).unwrap();
        while !resumed.is_done() {
            resumed.step_frame(&mut restored).unwrap();
        }
        assert_eq!(resumed.finish().unwrap(), full);
    }

    #[test]
    fn load_state_rejects_garbage() {
        let clock = SlotClock::new(2, 4, 1.0).unwrap();
        let params = SimParams::icdcs13();
        let mut ctl = SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap();
        // Missing payload.
        assert!(ctl.load_state(&dpss_sim::ControllerState::empty()).is_err());
        // Unparseable payload.
        let bad = dpss_sim::ControllerState {
            payload: Some("not json".to_owned()),
            ..dpss_sim::ControllerState::empty()
        };
        assert!(ctl.load_state(&bad).is_err());
        // Negative virtual queue.
        let bad = dpss_sim::ControllerState {
            payload: Some(
                "{\"y\":-1.0,\"planned_backlog\":0.0,\"y_max_seen\":0.0,\"directive\":null}"
                    .to_owned(),
            ),
            ..dpss_sim::ControllerState::empty()
        };
        assert!(ctl.load_state(&bad).is_err());
    }

    #[test]
    fn reset_makes_an_instance_reusable() {
        let clock = SlotClock::new(4, 24, 1.0).unwrap();
        let traces = Scenario::icdcs13().generate(&clock, 5).unwrap();
        let params = SimParams::icdcs13();
        let engine = Engine::new(params, traces).unwrap();
        let mut ctl = SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap();
        let first = engine.run(&mut ctl).unwrap();
        assert!(ctl.virtual_queue_y() > 0.0, "run leaves Y state behind");
        // Without reset the second run differs; with reset it reproduces.
        ctl.reset();
        assert_eq!(ctl.virtual_queue_y(), 0.0);
        assert_eq!(ctl.y_max_seen(), 0.0);
        let second = engine.run(&mut ctl).unwrap();
        assert_eq!(first, second);
    }
}
