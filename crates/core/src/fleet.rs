//! The fleet export planner: per-coarse-frame linear programs over the
//! interconnect topology.
//!
//! The post-hoc settlement in `dpss-sim`
//! ([`Interconnect::settle_greedy`]) matches curtailment to expensive
//! real-time purchases link by link — a myopic fold that is optimal for
//! the legacy pooled lossless topology but not in general: with per-pair
//! caps, line losses or wheeling prices, serving the most expensive
//! recipient first can strand cheap capacity that a joint plan would
//! route differently. [`FleetPlanner`] closes that gap by *planning* each
//! frame's exports as a linear program:
//!
//! * one flow variable per open directed link `i → j`, bounded by the
//!   pair cap (tightened each frame to the donor's curtailment — the
//!   frame-to-frame bound edits the warm-start layer's dual phase was
//!   built for);
//! * per-site donor rows (`Σⱼ f(i,j) ≤` curtailed `i`) and recipient
//!   rows (`Σᵢ (1−loss)·f(i,j) ≤` real-time need `j`), plus the pooled
//!   cap row when the topology has one;
//! * objective: maximize delivered value minus wheeling
//!   (`min Σ f·(wheel − p_rt·(1−loss))`).
//!
//! Consecutive frames share the constraint structure, so the planner
//! edits objective, bounds and right-hand sides in place
//! ([`Problem::set_objective`] / [`set_bounds`](Problem::set_bounds) /
//! [`set_rhs`](Problem::set_rhs)) and re-solves through one
//! [`LpWorkspace`], warm-starting from the previous frame's basis.
//!
//! The greedy settlement is always a feasible point of this LP, so the
//! planned fleet cost is never worse than the post-hoc one — the
//! acceptance property `interconnect_physics.rs` pins across every
//! built-in scenario pack.

use dpss_lp::{ConstraintId, LpWorkspace, Problem, Relation, Sense, Variable};
use dpss_sim::{
    FrameExchange, FrameSettlement, Interconnect, MultiSiteEngine, MultiSiteReport, RunReport,
    SimError,
};
use dpss_units::{Energy, Money};

/// Plans each coarse frame's inter-site export flows as an LP over an
/// [`Interconnect`] topology (see the module docs for the formulation).
///
/// # Examples
///
/// ```
/// use dpss_core::FleetPlanner;
/// use dpss_sim::{FrameExchange, Interconnect};
/// use dpss_units::Energy;
///
/// # fn main() -> Result<(), dpss_sim::SimError> {
/// let ic = Interconnect::uniform(2, Energy::from_mwh(5.0))?;
/// let mut planner = FleetPlanner::new(ic);
/// let s = planner.plan(&FrameExchange {
///     frame: 0,
///     curtailed: vec![Energy::from_mwh(3.0), Energy::ZERO],
///     rt_energy: vec![Energy::ZERO, Energy::from_mwh(2.0)],
///     rt_price: vec![0.0, 60.0],
/// });
/// assert!((s.delivered.mwh() - 2.0).abs() < 1e-9);
/// assert!((s.savings.dollars() - 120.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FleetPlanner {
    ic: Interconnect,
    /// The flow LP template; only objective, bounds and right-hand sides
    /// change between frames.
    problem: Problem,
    /// `(from, to, flow variable)` per open link, donor-major.
    flows: Vec<(usize, usize, Variable)>,
    /// Donor budget row per site (`None` when the site has no open
    /// outgoing link).
    donor_rows: Vec<Option<ConstraintId>>,
    /// Recipient need row per site (`None` without open incoming links).
    need_rows: Vec<Option<ConstraintId>>,
    workspace: LpWorkspace,
}

impl FleetPlanner {
    /// Builds the planner (and its LP template) for a topology.
    #[must_use]
    pub fn new(ic: Interconnect) -> Self {
        let n = ic.sites();
        let mut problem = Problem::new(Sense::Minimize);
        let flows: Vec<(usize, usize, Variable)> = ic
            .open_links()
            .map(|(i, j)| {
                let var = problem
                    .add_var(format!("f{i}_{j}"), 0.0, ic.cap(i, j).mwh(), 0.0)
                    .expect("caps are validated finite");
                (i, j, var)
            })
            .collect();
        let mut donor_rows = vec![None; n];
        let mut need_rows = vec![None; n];
        if !flows.is_empty() {
            for s in 0..n {
                let outgoing: Vec<(Variable, f64)> = flows
                    .iter()
                    .filter(|&&(i, _, _)| i == s)
                    .map(|&(_, _, v)| (v, 1.0))
                    .collect();
                if !outgoing.is_empty() {
                    donor_rows[s] = Some(
                        problem
                            .add_constraint(&outgoing, Relation::Le, 0.0)
                            .expect("template rows are well-formed"),
                    );
                }
                let incoming: Vec<(Variable, f64)> = flows
                    .iter()
                    .filter(|&&(_, j, _)| j == s)
                    .map(|&(i, _, v)| (v, 1.0 - ic.loss(i, s)))
                    .collect();
                if !incoming.is_empty() {
                    need_rows[s] = Some(
                        problem
                            .add_constraint(&incoming, Relation::Le, 0.0)
                            .expect("template rows are well-formed"),
                    );
                }
            }
            if let Some(pool) = ic.pool_cap() {
                let all: Vec<(Variable, f64)> = flows.iter().map(|&(_, _, v)| (v, 1.0)).collect();
                problem
                    .add_constraint(&all, Relation::Le, pool.mwh())
                    .expect("template rows are well-formed");
            }
        }
        FleetPlanner {
            ic,
            problem,
            flows,
            donor_rows,
            need_rows,
            workspace: LpWorkspace::new(),
        }
    }

    /// The planner built for a fleet's configured topology.
    #[must_use]
    pub fn for_engine(engine: &MultiSiteEngine) -> Self {
        FleetPlanner::new(engine.interconnect().clone())
    }

    /// The topology the planner routes over.
    #[must_use]
    pub fn interconnect(&self) -> &Interconnect {
        &self.ic
    }

    /// Plans one frame's export flows and returns the settlement they
    /// realize. Deterministic in the planner's *history*: the same
    /// sequence of exchanges through the same planner always yields the
    /// same settlements. The net value (`savings − wheeling`) is the LP
    /// optimum regardless of history, but on degenerate frames (two
    /// links of equal net value) a warm solve can land on a different
    /// optimal vertex than a cold one, splitting `sent`/`savings`
    /// differently — so callers that publish tables settle each variant
    /// through a *fresh* planner (as `pack_sweep_with` does) rather than
    /// sharing one across unrelated frame sequences.
    ///
    /// # Panics
    ///
    /// Panics if the exchange's site rosters do not match the topology
    /// (a programming error — `couple` validates rosters up front).
    #[must_use]
    pub fn plan(&mut self, ex: &FrameExchange) -> FrameSettlement {
        let n = self.ic.sites();
        assert!(
            ex.curtailed.len() == n && ex.rt_energy.len() == n && ex.rt_price.len() == n,
            "exchange covers a different site roster than the topology"
        );
        let mut out = FrameSettlement::default();
        if self.flows.is_empty() || self.ic.is_silent() {
            return out;
        }
        for &(i, j, var) in &self.flows {
            let loss = self.ic.loss(i, j);
            let value = ex.rt_price[j] * (1.0 - loss) - self.ic.wheeling(i, j).dollars_per_mwh();
            self.problem
                .set_objective(var, -value)
                .expect("template variables stay valid");
            // The frame-to-frame cap update: a pair can never carry more
            // than its donor curtailed this frame.
            let ub = self.ic.cap(i, j).min(ex.curtailed[i]).mwh();
            self.problem
                .set_bounds(var, 0.0, ub.max(0.0))
                .expect("caps and curtailment are non-negative");
        }
        for s in 0..n {
            if let Some(row) = self.donor_rows[s] {
                self.problem
                    .set_rhs(row, ex.curtailed[s].mwh().max(0.0))
                    .expect("template rows stay valid");
            }
            if let Some(row) = self.need_rows[s] {
                self.problem
                    .set_rhs(row, ex.rt_energy[s].mwh().max(0.0))
                    .expect("template rows stay valid");
            }
        }
        let sol = self
            .problem
            .solve_with(&mut self.workspace)
            .expect("the flow LP is feasible (zero flow) and box-bounded");
        for &(i, j, var) in &self.flows {
            let sent = sol.value(var).max(0.0);
            if sent <= 0.0 {
                continue;
            }
            let loss = self.ic.loss(i, j);
            let delivered = sent * (1.0 - loss);
            out.sent += Energy::from_mwh(sent);
            out.delivered += Energy::from_mwh(delivered);
            out.savings += Money::from_dollars(delivered * ex.rt_price[j]);
            out.wheeling += Money::from_dollars(sent * self.ic.wheeling(i, j).dollars_per_mwh());
        }
        out
    }

    /// Settles already-computed per-site reports through the planner:
    /// [`MultiSiteEngine::couple_with`] with [`plan`](Self::plan) as the
    /// per-frame settlement. The planner's topology must equal the
    /// fleet's.
    ///
    /// # Errors
    ///
    /// [`SimError::SiteMismatch`] if the planner and fleet topologies
    /// differ, the report roster is misshapen, or a report lacks slot
    /// outcomes.
    pub fn couple(
        &mut self,
        engine: &MultiSiteEngine,
        reports: Vec<RunReport>,
    ) -> Result<MultiSiteReport, SimError> {
        if engine.interconnect() != &self.ic {
            return Err(SimError::SiteMismatch {
                site: self.ic.sites(),
                what: "planner topology differs from the fleet's interconnect",
            });
        }
        engine.couple_with(reports, |ex| self.plan(ex))
    }

    /// Warm-start diagnostics of the underlying workspace: `(warm, cold)`
    /// solve counts so far.
    #[must_use]
    pub fn solve_counts(&self) -> (u64, u64) {
        (self.workspace.warm_solves(), self.workspace.cold_solves())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpss_units::Price;

    fn exchange(curtailed: &[f64], rt: &[f64], price: &[f64]) -> FrameExchange {
        FrameExchange {
            frame: 0,
            curtailed: curtailed.iter().map(|&e| Energy::from_mwh(e)).collect(),
            rt_energy: rt.iter().map(|&e| Energy::from_mwh(e)).collect(),
            rt_price: price.to_vec(),
        }
    }

    #[test]
    fn decoupled_topologies_plan_nothing() {
        let mut p = FleetPlanner::new(Interconnect::decoupled(3).unwrap());
        let ex = exchange(&[5.0, 5.0, 0.0], &[0.0, 0.0, 9.0], &[0.0, 0.0, 80.0]);
        assert_eq!(p.plan(&ex), FrameSettlement::default());
    }

    #[test]
    fn planner_matches_greedy_on_pooled_lossless_topologies() {
        // The pooled lossless case is where greedy is optimal: the LP must
        // find the same value.
        let ic = Interconnect::pooled(3, Energy::from_mwh(2.0)).unwrap();
        let mut p = FleetPlanner::new(ic.clone());
        let ex = exchange(&[3.0, 0.0, 0.5], &[0.0, 1.5, 2.0], &[0.0, 80.0, 40.0]);
        let planned = p.plan(&ex);
        let greedy = ic.settle_greedy(&ex);
        assert!(
            (planned.savings.dollars() - greedy.savings.dollars()).abs() < 1e-9,
            "planned {} vs greedy {}",
            planned.savings.dollars(),
            greedy.savings.dollars()
        );
        assert_eq!(planned.wheeling, Money::ZERO);
    }

    #[test]
    fn planner_beats_greedy_when_pair_caps_constrain_routing() {
        // Donor 0 can only reach the expensive site 1 through a thin line,
        // while donor 2 reaches it at full width. Greedy spends donor 0's
        // thin line first and donor 2's width on the *expensive* site too,
        // leaving site 2's need unmet; the planner routes donor 2 to
        // site 1 and keeps donor 0 for the cheap site it can still reach.
        let ic = Interconnect::decoupled(4)
            .unwrap()
            .with_link(0, 1, Energy::from_mwh(0.5))
            .unwrap()
            .with_link(0, 3, Energy::from_mwh(2.0))
            .unwrap()
            .with_link(2, 1, Energy::from_mwh(2.0))
            .unwrap();
        let ex = exchange(
            &[2.0, 0.0, 1.0, 0.0],
            &[0.0, 1.0, 0.0, 2.0],
            &[0.0, 80.0, 0.0, 40.0],
        );
        let greedy = ic.settle_greedy(&ex);
        let planned = FleetPlanner::new(ic).plan(&ex);
        // Greedy: site 1 takes 0.5 from donor 0 + 0.5 from donor 2
        //         (thin line spent), site 3 takes 1.5 from donor 0.
        assert!((greedy.savings.dollars() - (80.0 + 1.5 * 40.0)).abs() < 1e-9);
        // Planner: donor 2 covers site 1 alone; donor 0 sends 2.0 to
        //          site 3 — strictly more displaced cost.
        assert!((planned.savings.dollars() - (80.0 + 2.0 * 40.0)).abs() < 1e-9);
        assert!(planned.savings > greedy.savings);
    }

    #[test]
    fn planner_never_routes_uneconomic_flows() {
        let ic = Interconnect::uniform(2, Energy::from_mwh(10.0))
            .unwrap()
            .with_uniform_loss(0.5)
            .unwrap()
            .with_uniform_wheeling(Price::from_dollars_per_mwh(30.0))
            .unwrap();
        let ex = exchange(&[4.0, 0.0], &[0.0, 2.0], &[0.0, 50.0]);
        let s = FleetPlanner::new(ic).plan(&ex);
        assert_eq!(s, FrameSettlement::default());
    }

    #[test]
    fn frame_chain_reuses_the_warm_path() {
        let ic = Interconnect::uniform(3, Energy::from_mwh(2.0)).unwrap();
        let mut p = FleetPlanner::new(ic);
        for k in 0..6 {
            let bump = 0.1 * f64::from(k);
            let ex = exchange(
                &[2.0 + bump, 0.3, 0.0],
                &[0.0, 1.0, 1.5 + bump],
                &[0.0, 55.0 + bump, 70.0],
            );
            let s = p.plan(&ex);
            assert!(s.savings.dollars() > 0.0);
        }
        let (warm, cold) = p.solve_counts();
        assert_eq!(warm + cold, 6);
        assert!(
            warm >= 3,
            "frame-to-frame re-solves must warm-start: {warm} warm / {cold} cold"
        );
    }

    #[test]
    fn couple_rejects_mismatched_topologies() {
        use dpss_sim::{Engine, SimParams};
        use dpss_units::SlotClock;
        let clock = SlotClock::new(2, 24, 1.0).unwrap();
        let engines: Vec<Engine> = (0..2)
            .map(|s| {
                Engine::new(
                    SimParams::icdcs13(),
                    dpss_traces::Scenario::icdcs13()
                        .generate(&clock, 10 + s)
                        .unwrap(),
                )
                .unwrap()
            })
            .collect();
        let multi = MultiSiteEngine::new(engines)
            .unwrap()
            .with_transfer_cap(Energy::from_mwh(1.0))
            .unwrap();
        let mut planner =
            FleetPlanner::new(Interconnect::pooled(2, Energy::from_mwh(9.0)).unwrap());
        let reports: Vec<RunReport> = multi
            .sites()
            .iter()
            .map(|s| s.run(&mut crate::Impatient::two_markets()).unwrap())
            .collect();
        assert!(matches!(
            planner.couple(&multi, reports.clone()),
            Err(SimError::SiteMismatch { .. })
        ));
        // The matching planner settles at least as well as the greedy fold.
        let mut matching = FleetPlanner::for_engine(&multi);
        let planned = matching.couple(&multi, reports.clone()).unwrap();
        let posthoc = multi.couple(reports).unwrap();
        assert!(planned.total_cost() <= posthoc.total_cost() + Money::from_dollars(1e-9));
    }
}
