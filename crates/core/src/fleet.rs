//! The fleet export planner: per-coarse-frame linear programs over the
//! interconnect topology.
//!
//! The post-hoc settlement in `dpss-sim`
//! ([`Interconnect::settle_greedy`]) matches curtailment to expensive
//! real-time purchases link by link — a myopic fold that is optimal for
//! the legacy pooled lossless topology but not in general: with per-pair
//! caps, line losses or wheeling prices, serving the most expensive
//! recipient first can strand cheap capacity that a joint plan would
//! route differently. [`FleetPlanner`] closes that gap by *planning* each
//! frame's exports as a linear program:
//!
//! * one flow variable per open directed link `i → j`, bounded by the
//!   pair cap (tightened each frame to the donor's curtailment — the
//!   frame-to-frame bound edits the warm-start layer's dual phase was
//!   built for);
//! * per-site donor rows (`Σⱼ f(i,j) ≤` curtailed `i`) and recipient
//!   rows (`Σᵢ (1−loss)·f(i,j) ≤` real-time need `j`), plus the pooled
//!   cap row when the topology has one;
//! * objective: maximize delivered value minus wheeling
//!   (`min Σ f·(wheel − p_rt·(1−loss))`).
//!
//! Consecutive frames share the constraint structure, so the planner
//! edits objective, bounds and right-hand sides in place
//! ([`Problem::set_objective`] / [`set_bounds`](Problem::set_bounds) /
//! [`set_rhs`](Problem::set_rhs)) and re-solves through one
//! [`LpWorkspace`], warm-starting from the previous frame's basis.
//!
//! The greedy settlement is always a feasible point of this LP, so the
//! planned fleet cost is never worse than the post-hoc one — the
//! acceptance property `interconnect_physics.rs` pins across every
//! built-in scenario pack.
//!
//! # Solver paths
//!
//! Both planner LPs are *packing form* (every row `≤` with non-negative
//! rhs, every variable in `[0, u]`), so they are eligible for `dpss-lp`'s
//! sparse revised-simplex network path. The planner picks per
//! [`SolverPath`]:
//!
//! * **`Dense`** — the historical dense-tableau route. Small fleets stay
//!   here under `Auto` so published tables keep their exact bytes (warm
//!   and cold dense solves can land on different optimal *vertices* of a
//!   degenerate frame, and the network path has the same license — the
//!   objective is pinned to 1e-9, the split of a tie is not).
//! * **`Network`** — [`Problem::solve_network_with`] for the settlement
//!   LP, plus an **aggregated** prospective template: the per-link
//!   `f_free`/`f_buy` split is immaterial given each donor's totals
//!   (the buy penalty depends only on the donor), so the network form
//!   carries one total-flow variable per link and one bought-energy
//!   variable per donor — `O(sites)` rows instead of `O(links)`, which
//!   on an `n`-site mesh is the difference between a `3n+1`-row and an
//!   `n² + 3n`-row system. Objective-equivalent to the split form by
//!   construction (`tests/network_equivalence.rs` pins both shapes
//!   against dense simplex).
//! * **`Auto`** (default) — `Dense` up to
//!   [`NETWORK_AUTO_SITE_THRESHOLD`] sites, `Network` above.

// The fleet planner mints every LP variable/constraint id it later edits
// or reads, in the same template build pass; site/pair vectors are sized
// from the engine roster it plans for. Solver errors are propagated as
// `CoreError` — expects here assert template invariants (finite caps,
// well-formed rows), not runtime conditions.
// audit:allow-file(panic-unwrap): expects assert invariants of the LP template this module itself builds; solver errors propagate as CoreError
// audit:allow-file(slice-index): variable/constraint ids are minted by the same template build pass; rosters are sized from the engine fleet

use dpss_lp::{
    BasisSnapshot, ConstraintId, LpWorkspace, Problem, Relation, Sense, SolverStats, Variable,
};
use dpss_sim::{
    FleetDispatcher, FrameDirective, FrameExchange, FrameOutlook, FrameSettlement, Interconnect,
    MultiSiteEngine, MultiSiteReport, RunReport, SimError,
};
use dpss_units::{Energy, Money};
use serde::{Deserialize, Serialize};

/// The checkpointable state of a [`FleetPlanner`]: the warm-start bases
/// of its settlement and prospective workspaces. The LP *templates* are
/// pure functions of the topology and are rebuilt deterministically on
/// [`import_state`](FleetPlanner::import_state); only the bases — which
/// steer a warm solve to the same optimal vertex the uninterrupted run
/// would have reached — must survive a restart.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetPlannerState {
    /// Settlement-LP workspace basis.
    pub settlement: BasisSnapshot,
    /// Dense-path prospective workspace basis (present iff the template
    /// had been built).
    pub prospective: Option<BasisSnapshot>,
    /// Network-path prospective workspace basis (present iff the
    /// template had been built).
    pub prospective_net: Option<BasisSnapshot>,
}

/// Fleet size above which [`SolverPath::Auto`] switches the planner from
/// the dense tableau to the sparse network path. Small fleets keep the
/// dense route so published golden tables stay byte-identical; beyond
/// this the dense prospective tableau grows as `O(links²)` memory and
/// the network path wins outright.
pub const NETWORK_AUTO_SITE_THRESHOLD: usize = 8;

/// Which simplex route a [`FleetPlanner`] solves its frame LPs on (see
/// the module docs for the trade-offs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverPath {
    /// Dense up to [`NETWORK_AUTO_SITE_THRESHOLD`] sites, network above.
    #[default]
    Auto,
    /// Always the dense two-phase tableau (the historical route).
    Dense,
    /// Always the sparse revised-simplex network path with the
    /// aggregated prospective template.
    Network,
}

impl SolverPath {
    /// The CLI spellings, in display order.
    pub const NAMES: [&'static str; 3] = ["auto", "dense", "network"];

    /// Parses a CLI spelling, with the canonical error message.
    ///
    /// # Errors
    ///
    /// `unknown solver path: <name> (expected auto|dense|network)`.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "auto" => Ok(SolverPath::Auto),
            "dense" => Ok(SolverPath::Dense),
            "network" => Ok(SolverPath::Network),
            other => Err(format!(
                "unknown solver path: {other} (expected {})",
                Self::NAMES.join("|")
            )),
        }
    }

    /// Resolves `Auto` against a fleet size.
    #[must_use]
    fn resolve(self, sites: usize) -> SolverPath {
        match self {
            SolverPath::Auto if sites > NETWORK_AUTO_SITE_THRESHOLD => SolverPath::Network,
            SolverPath::Auto => SolverPath::Dense,
            other => other,
        }
    }
}

impl std::fmt::Display for SolverPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SolverPath::Auto => "auto",
            SolverPath::Dense => "dense",
            SolverPath::Network => "network",
        })
    }
}

/// Plans each coarse frame's inter-site export flows as an LP over an
/// [`Interconnect`] topology (see the module docs for the formulation).
///
/// # Examples
///
/// ```
/// use dpss_core::FleetPlanner;
/// use dpss_sim::{FrameExchange, Interconnect};
/// use dpss_units::Energy;
///
/// # fn main() -> Result<(), dpss_sim::SimError> {
/// let ic = Interconnect::uniform(2, Energy::from_mwh(5.0))?;
/// let mut planner = FleetPlanner::new(ic);
/// let s = planner.plan(&FrameExchange {
///     frame: 0,
///     curtailed: vec![Energy::from_mwh(3.0), Energy::ZERO],
///     rt_energy: vec![Energy::ZERO, Energy::from_mwh(2.0)],
///     rt_price: vec![0.0, 60.0],
/// });
/// assert!((s.delivered.mwh() - 2.0).abs() < 1e-9);
/// assert!((s.savings.dollars() - 120.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FleetPlanner {
    ic: Interconnect,
    /// The flow LP template; only objective, bounds and right-hand sides
    /// change between frames.
    problem: Problem,
    /// `(from, to, flow variable)` per open link, donor-major.
    flows: Vec<(usize, usize, Variable)>,
    /// Donor budget row per site (`None` when the site has no open
    /// outgoing link).
    donor_rows: Vec<Option<ConstraintId>>,
    /// Recipient need row per site (`None` without open incoming links).
    need_rows: Vec<Option<ConstraintId>>,
    workspace: LpWorkspace,
    /// Whether [`FleetDispatcher::direct`] plans prospective directives
    /// (coordinated mode) or stays silent (planned mode).
    coordinate: bool,
    /// Safety margin on the buy-to-export economics: a prospective buy
    /// flow must clear `procure_cost × (1 + margin)`, so forecast error
    /// has to be this large before a directed purchase can lose money.
    procure_margin: f64,
    /// The prospective dispatch LP, built on first use (coordinated
    /// runs only, dense path).
    prospective: Option<ProspectiveLp>,
    /// The aggregated prospective LP, built on first use (coordinated
    /// runs only, network path).
    prospective_net: Option<ProspectiveNetLp>,
    /// Which simplex route the frame LPs solve on.
    path: SolverPath,
}

/// The buy-aware prospective flow LP of coordinated dispatch: two
/// variables per open link — `f_free` (export of forecast curtailment,
/// costless) and `f_buy` (deliberately procured export energy, costed at
/// the donor's long-term price plus waste penalty) — sharing the link
/// cap. Same template/edit/re-solve shape as the settlement LP, with its
/// own warm-started workspace.
#[derive(Debug, Clone)]
struct ProspectiveLp {
    problem: Problem,
    /// `(from, to, f_free, f_buy)` per open link, donor-major.
    flows: Vec<(usize, usize, Variable, Variable)>,
    /// Shared pair-cap row per open link (`f_free + f_buy ≤ cap_at`).
    link_rows: Vec<ConstraintId>,
    /// Donor surplus budget row per site.
    free_rows: Vec<Option<ConstraintId>>,
    /// Donor procurable budget row per site.
    buy_rows: Vec<Option<ConstraintId>>,
    /// Recipient forecast-need row per site.
    need_rows: Vec<Option<ConstraintId>>,
    workspace: LpWorkspace,
}

/// The network-path prospective template: the buy penalty depends only
/// on the *donor*, so the per-link free/buy split is immaterial given
/// each donor's totals. One total-flow variable per open link plus one
/// bought-energy variable per donor reproduce the split form's optimum
/// exactly, with `O(sites)` rows instead of `O(links)`:
///
/// * free-budget rows `Σ_l t_l − z_s ≤ surplus_s` (whatever exceeds the
///   forecast surplus must be procured);
/// * total-budget rows `Σ_l t_l ≤ surplus_s + procurable_s`;
/// * recipient need rows `Σ (1−loss)·t_l ≤ need_j` and the pool row;
/// * objective `min Σ −value_l·t_l + Σ procure_cost_s·(1+margin)·z_s`.
///
/// Per-frame link caps bind through the `t_l` bounds (no per-link rows
/// at all). Solved via [`Problem::solve_network_with`].
#[derive(Debug, Clone)]
struct ProspectiveNetLp {
    problem: Problem,
    /// `(from, to, total-flow variable)` per open link, donor-major.
    flows: Vec<(usize, usize, Variable)>,
    /// Bought-energy variable per site (`None` without outgoing links).
    bought: Vec<Option<Variable>>,
    /// Donor free-budget row per site.
    free_rows: Vec<Option<ConstraintId>>,
    /// Donor total-budget row per site.
    total_rows: Vec<Option<ConstraintId>>,
    /// Recipient forecast-need row per site.
    need_rows: Vec<Option<ConstraintId>>,
    workspace: LpWorkspace,
}

impl FleetPlanner {
    /// Builds the planner (and its LP template) for a topology.
    #[must_use]
    pub fn new(ic: Interconnect) -> Self {
        let n = ic.sites();
        let mut problem = Problem::new(Sense::Minimize);
        let flows: Vec<(usize, usize, Variable)> = ic
            .open_links()
            .map(|(i, j)| {
                let var = problem
                    .add_var(format!("f{i}_{j}"), 0.0, ic.cap(i, j).mwh(), 0.0)
                    .expect("caps are validated finite");
                (i, j, var)
            })
            .collect();
        let mut donor_rows = vec![None; n];
        let mut need_rows = vec![None; n];
        if !flows.is_empty() {
            for s in 0..n {
                let outgoing: Vec<(Variable, f64)> = flows
                    .iter()
                    .filter(|&&(i, _, _)| i == s)
                    .map(|&(_, _, v)| (v, 1.0))
                    .collect();
                if !outgoing.is_empty() {
                    donor_rows[s] = Some(
                        problem
                            .add_constraint(&outgoing, Relation::Le, 0.0)
                            .expect("template rows are well-formed"),
                    );
                }
                let incoming: Vec<(Variable, f64)> = flows
                    .iter()
                    .filter(|&&(_, j, _)| j == s)
                    .map(|&(i, _, v)| (v, 1.0 - ic.loss(i, s)))
                    .collect();
                if !incoming.is_empty() {
                    need_rows[s] = Some(
                        problem
                            .add_constraint(&incoming, Relation::Le, 0.0)
                            .expect("template rows are well-formed"),
                    );
                }
            }
            if let Some(pool) = ic.pool_cap() {
                let all: Vec<(Variable, f64)> = flows.iter().map(|&(_, _, v)| (v, 1.0)).collect();
                problem
                    .add_constraint(&all, Relation::Le, pool.mwh())
                    .expect("template rows are well-formed");
            }
        }
        FleetPlanner {
            ic,
            problem,
            flows,
            donor_rows,
            need_rows,
            workspace: LpWorkspace::new(),
            coordinate: false,
            procure_margin: 0.6,
            prospective: None,
            prospective_net: None,
            path: SolverPath::Auto,
        }
    }

    /// Selects the simplex route the frame LPs solve on (default
    /// [`SolverPath::Auto`]: dense for small fleets, network above
    /// [`NETWORK_AUTO_SITE_THRESHOLD`] sites).
    #[must_use]
    pub fn with_solver_path(mut self, path: SolverPath) -> Self {
        self.path = path;
        self
    }

    /// The configured (unresolved) solver path.
    #[must_use]
    pub fn solver_path(&self) -> SolverPath {
        self.path
    }

    /// The path [`SolverPath::Auto`] resolves to for this topology.
    #[must_use]
    pub fn resolved_solver_path(&self) -> SolverPath {
        self.path.resolve(self.ic.sites())
    }

    /// Drops every workspace's saved basis so the next solves start
    /// cold, exactly as a freshly built planner would — the reuse hook
    /// for sweeps that settle many independent variants over one
    /// topology without letting warm-start history leak between them.
    /// Warm/cold counters are preserved (they accumulate across the
    /// sweep).
    pub fn clear_basis(&mut self) {
        self.workspace.clear_basis();
        if let Some(lp) = &mut self.prospective {
            lp.workspace.clear_basis();
        }
        if let Some(lp) = &mut self.prospective_net {
            lp.workspace.clear_basis();
        }
    }

    /// Captures the planner's warm-start bases for checkpointing.
    #[must_use]
    pub fn export_state(&self) -> FleetPlannerState {
        FleetPlannerState {
            settlement: self.workspace.export_basis(),
            prospective: self
                .prospective
                .as_ref()
                .map(|lp| lp.workspace.export_basis()),
            prospective_net: self
                .prospective_net
                .as_ref()
                .map(|lp| lp.workspace.export_basis()),
        }
    }

    /// Reinstates checkpointed warm-start bases on a freshly built
    /// planner for the *same* topology. Prospective templates recorded
    /// in the state are built eagerly (they are pure functions of the
    /// topology), so the first planned frame after a restart warm-starts
    /// exactly like the uninterrupted run. Warm/cold counters restart at
    /// zero — they are diagnostics, not state.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidState`] if a basis snapshot fails validation.
    pub fn import_state(&mut self, state: &FleetPlannerState) -> Result<(), SimError> {
        let invalid = |_| SimError::InvalidState {
            what: "fleet planner basis snapshot failed validation",
        };
        self.workspace
            .import_basis(&state.settlement)
            .map_err(invalid)?;
        if let Some(basis) = &state.prospective {
            self.prospective
                .get_or_insert_with(|| ProspectiveLp::for_topology(&self.ic))
                .workspace
                .import_basis(basis)
                .map_err(invalid)?;
        }
        if let Some(basis) = &state.prospective_net {
            self.prospective_net
                .get_or_insert_with(|| ProspectiveNetLp::for_topology(&self.ic))
                .workspace
                .import_basis(basis)
                .map_err(invalid)?;
        }
        Ok(())
    }

    /// Enables (or disables) coordinated dispatch: when on, the planner's
    /// [`FleetDispatcher::direct`] plans prospective export flows between
    /// frames and hands every site a [`FrameDirective`]; when off (the
    /// default) it stays silent and the planner is the *planned*
    /// settlement mode.
    #[must_use]
    pub fn with_coordination(mut self, coordinate: bool) -> Self {
        self.coordinate = coordinate;
        self
    }

    /// Sets the buy-to-export safety margin (default `0.6`, measured as the robust point on the built-in packs): a
    /// prospective procured flow must clear
    /// `procure_cost × (1 + margin)` in forecast delivered value before
    /// the planner directs it, so the one-frame-back forecast has to be
    /// off by more than the margin before a directed purchase can lose
    /// money.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidParameter`] for a non-finite or negative
    /// margin.
    pub fn with_procure_margin(mut self, margin: f64) -> Result<Self, SimError> {
        if !(margin.is_finite() && margin >= 0.0) {
            return Err(SimError::InvalidParameter {
                what: "procure_margin",
                requirement: "must be finite and non-negative",
            });
        }
        self.procure_margin = margin;
        Ok(self)
    }

    /// The planner built for a fleet's configured topology.
    #[must_use]
    pub fn for_engine(engine: &MultiSiteEngine) -> Self {
        FleetPlanner::new(engine.interconnect().clone())
    }

    /// The topology the planner routes over.
    #[must_use]
    pub fn interconnect(&self) -> &Interconnect {
        &self.ic
    }

    /// Plans one frame's export flows and returns the settlement they
    /// realize. Deterministic in the planner's *history*: the same
    /// sequence of exchanges through the same planner always yields the
    /// same settlements. The net value (`savings − wheeling`) is the LP
    /// optimum regardless of history, but on degenerate frames (two
    /// links of equal net value) a warm solve can land on a different
    /// optimal vertex than a cold one, splitting `sent`/`savings`
    /// differently — so callers that publish tables settle each variant
    /// through a *fresh* planner (as `pack_sweep_with` does) rather than
    /// sharing one across unrelated frame sequences.
    ///
    /// # Panics
    ///
    /// Panics if the exchange's site rosters do not match the topology
    /// (a programming error — `couple` validates rosters up front).
    #[must_use]
    pub fn plan(&mut self, ex: &FrameExchange) -> FrameSettlement {
        self.plan_with_exports(ex).0
    }

    /// [`plan`](Self::plan), additionally reporting how much of each
    /// donor's curtailment the settlement consumed (energy *sent* per
    /// site, in site-index order, before line losses). One LP solve
    /// serves both answers, so a routed caller — `RoutingPlanner` feeds
    /// residual curtailment (`curtailed − sent`) to the workload
    /// absorption step — observes exactly the settlement sequence (and
    /// warm-start history) a [`plan`](Self::plan) caller would.
    ///
    /// # Panics
    ///
    /// Panics if the exchange's site rosters do not match the topology.
    #[must_use]
    pub fn plan_with_exports(&mut self, ex: &FrameExchange) -> (FrameSettlement, Vec<Energy>) {
        let n = self.ic.sites();
        assert!(
            ex.curtailed.len() == n && ex.rt_energy.len() == n && ex.rt_price.len() == n,
            "exchange covers a different site roster than the topology"
        );
        let mut out = FrameSettlement::default();
        let mut exports = vec![Energy::ZERO; n];
        if self.flows.is_empty() || self.ic.is_silent() {
            return (out, exports);
        }
        for &(i, j, var) in &self.flows {
            let loss = self.ic.loss(i, j);
            let value = ex.rt_price[j] * (1.0 - loss) - self.ic.wheeling(i, j).dollars_per_mwh();
            self.problem
                .set_objective(var, -value)
                .expect("template variables stay valid");
            // The frame-to-frame cap update: a pair can never carry more
            // than its donor curtailed this frame, nor more than the
            // link's cap *for this frame* (cap schedules bind here).
            let ub = self.ic.cap_at(i, j, ex.frame).min(ex.curtailed[i]).mwh();
            self.problem
                .set_bounds(var, 0.0, ub.max(0.0))
                .expect("caps and curtailment are non-negative");
        }
        for s in 0..n {
            if let Some(row) = self.donor_rows[s] {
                self.problem
                    .set_rhs(row, ex.curtailed[s].mwh().max(0.0))
                    .expect("template rows stay valid");
            }
            if let Some(row) = self.need_rows[s] {
                self.problem
                    .set_rhs(row, ex.rt_energy[s].mwh().max(0.0))
                    .expect("template rows stay valid");
            }
        }
        let sol = match self.resolved_solver_path() {
            SolverPath::Network => self
                .problem
                .solve_network_with(&mut self.workspace)
                .expect("the flow LP is feasible (zero flow) and box-bounded"),
            _ => self
                .problem
                .solve_with(&mut self.workspace)
                .expect("the flow LP is feasible (zero flow) and box-bounded"),
        };
        for &(i, j, var) in &self.flows {
            let sent = sol.value(var).max(0.0);
            if sent <= 0.0 {
                continue;
            }
            let loss = self.ic.loss(i, j);
            let delivered = sent * (1.0 - loss);
            out.sent += Energy::from_mwh(sent);
            out.delivered += Energy::from_mwh(delivered);
            out.savings += Money::from_dollars(delivered * ex.rt_price[j]);
            out.wheeling += Money::from_dollars(sent * self.ic.wheeling(i, j).dollars_per_mwh());
            exports[i] += Energy::from_mwh(sent);
        }
        // Hand the value buffer back: the next frame's solve reuses it,
        // keeping the steady-state settlement loop allocation-free.
        self.workspace.recycle(sol);
        (out, exports)
    }

    /// Plans the coming frame's *prospective* export flows from the
    /// fleet's causal outlook and returns one [`FrameDirective`] per
    /// site — the coordinated-dispatch step that runs *before* the sites
    /// commit their long-term purchases.
    ///
    /// The LP routes two kinds of export per open link: the donor's
    /// forecast curtailment (free — it would be wasted anyway) and
    /// *procured* energy (buy-to-export: costed at the donor's observed
    /// long-term price plus waste penalty, padded by the safety margin,
    /// and bounded by the donor's remaining grid budget after the
    /// battery top-off). Flows are bounded by the per-frame link cap
    /// (schedules bind), the recipient's forecast real-time need and the
    /// pool cap. Like the settlement LP, the template is built once and
    /// re-solved through one warm-started workspace via
    /// `set_objective`/`set_bounds`/`set_rhs` edits.
    ///
    /// Frame 0 (no history) and silent topologies yield inert
    /// directives.
    ///
    /// # Panics
    ///
    /// Panics if the outlook's site roster does not match the topology.
    #[must_use]
    pub fn plan_prospective(&mut self, outlook: &FrameOutlook) -> Vec<FrameDirective> {
        let n = self.ic.sites();
        assert!(
            outlook.sites.len() == n,
            "outlook covers a different site roster than the topology"
        );
        let mut directives = vec![FrameDirective::inert(outlook.frame); n];
        if self.flows.is_empty() || self.ic.is_silent() {
            return directives;
        }
        if self.resolved_solver_path() == SolverPath::Network {
            self.plan_prospective_network(outlook, &mut directives);
            return directives;
        }
        let margin = 1.0 + self.procure_margin;
        let lp = self
            .prospective
            .get_or_insert_with(|| ProspectiveLp::for_topology(&self.ic));
        for (k, &(i, j, free, buy)) in lp.flows.iter().enumerate() {
            let loss = self.ic.loss(i, j);
            let wheel = self.ic.wheeling(i, j).dollars_per_mwh();
            let value = outlook.sites[j].expected_price * (1.0 - loss) - wheel;
            let cap = self.ic.cap_at(i, j, outlook.frame).mwh();
            lp.problem
                .set_objective(free, -value)
                .expect("template variables stay valid");
            lp.problem
                .set_objective(buy, -(value - outlook.sites[i].procure_cost * margin))
                .expect("template variables stay valid");
            let surplus = outlook.sites[i].expected_surplus.mwh().max(0.0);
            let procurable = (outlook.sites[i].export_headroom - outlook.sites[i].battery_headroom)
                .positive_part()
                .mwh();
            lp.problem
                .set_bounds(free, 0.0, cap.min(surplus))
                .expect("caps and budgets are non-negative");
            lp.problem
                .set_bounds(buy, 0.0, cap.min(procurable))
                .expect("caps and budgets are non-negative");
            lp.problem
                .set_rhs(lp.link_rows[k], cap)
                .expect("template rows stay valid");
        }
        for (s, site) in outlook.sites.iter().enumerate() {
            if let Some(row) = lp.free_rows[s] {
                lp.problem
                    .set_rhs(row, site.expected_surplus.mwh().max(0.0))
                    .expect("template rows stay valid");
            }
            if let Some(row) = lp.buy_rows[s] {
                let procurable = (site.export_headroom - site.battery_headroom)
                    .positive_part()
                    .mwh();
                lp.problem
                    .set_rhs(row, procurable)
                    .expect("template rows stay valid");
            }
            if let Some(row) = lp.need_rows[s] {
                lp.problem
                    .set_rhs(row, site.expected_need.mwh().max(0.0))
                    .expect("template rows stay valid");
            }
        }
        let sol = lp
            .problem
            .solve_with(&mut lp.workspace)
            .expect("the prospective flow LP is feasible (zero flow) and box-bounded");
        const TOL: f64 = 1e-9;
        for &(i, j, free, buy) in &lp.flows {
            let f_free = sol.value(free).max(0.0);
            let f_buy = sol.value(buy).max(0.0);
            let sent = f_free + f_buy;
            if sent <= TOL {
                continue;
            }
            let loss = self.ic.loss(i, j);
            let value = outlook.sites[j].expected_price * (1.0 - loss)
                - self.ic.wheeling(i, j).dollars_per_mwh();
            directives[i].export_quota += Energy::from_mwh(sent);
            directives[i].export_value = directives[i].export_value.max(value);
            directives[j].import_expectation += Energy::from_mwh(sent * (1.0 - loss));
            if f_buy > TOL {
                directives[i].procure_for_export += Energy::from_mwh(f_buy);
            }
        }
        // The plant charges surplus before curtailing it, so a site that
        // was directed to buy must also top its battery off or the
        // planned waste (and hence the export) never materializes.
        for (s, d) in directives.iter_mut().enumerate() {
            if d.procure_for_export > Energy::ZERO {
                d.procure_for_export += outlook.sites[s].battery_headroom;
            }
        }
        directives
    }

    /// The network-path body of [`plan_prospective`](Self::plan_prospective):
    /// edits the aggregated template to the frame's caps and budgets,
    /// solves on the sparse path, and folds per-donor directives from
    /// link totals and the minimal procurement consistent with them
    /// (`(T_s − surplus_s)₊` — row 1 guarantees the bought variable
    /// covers it, and extracting the minimum keeps directives
    /// independent of how a degenerate optimum splits its tie).
    fn plan_prospective_network(
        &mut self,
        outlook: &FrameOutlook,
        directives: &mut [FrameDirective],
    ) {
        let margin = 1.0 + self.procure_margin;
        let lp = self
            .prospective_net
            .get_or_insert_with(|| ProspectiveNetLp::for_topology(&self.ic));
        for &(i, j, total) in &lp.flows {
            let loss = self.ic.loss(i, j);
            let wheel = self.ic.wheeling(i, j).dollars_per_mwh();
            let value = outlook.sites[j].expected_price * (1.0 - loss) - wheel;
            let cap = self.ic.cap_at(i, j, outlook.frame).mwh();
            lp.problem
                .set_objective(total, -value)
                .expect("template variables stay valid");
            lp.problem
                .set_bounds(total, 0.0, cap)
                .expect("caps are non-negative");
        }
        for (s, site) in outlook.sites.iter().enumerate() {
            let surplus = site.expected_surplus.mwh().max(0.0);
            let procurable = (site.export_headroom - site.battery_headroom)
                .positive_part()
                .mwh();
            if let Some(z) = lp.bought[s] {
                lp.problem
                    .set_bounds(z, 0.0, procurable)
                    .expect("budgets are non-negative");
                lp.problem
                    .set_objective(z, site.procure_cost * margin)
                    .expect("template variables stay valid");
            }
            if let Some(row) = lp.free_rows[s] {
                lp.problem
                    .set_rhs(row, surplus)
                    .expect("template rows stay valid");
            }
            if let Some(row) = lp.total_rows[s] {
                lp.problem
                    .set_rhs(row, surplus + procurable)
                    .expect("template rows stay valid");
            }
            if let Some(row) = lp.need_rows[s] {
                lp.problem
                    .set_rhs(row, site.expected_need.mwh().max(0.0))
                    .expect("template rows stay valid");
            }
        }
        let sol = lp
            .problem
            .solve_network_with(&mut lp.workspace)
            .expect("the prospective flow LP is feasible (zero flow) and box-bounded");
        const TOL: f64 = 1e-9;
        let mut sent_totals = vec![0.0f64; directives.len()];
        for &(i, j, total) in &lp.flows {
            let sent = sol.value(total).max(0.0);
            if sent <= TOL {
                continue;
            }
            let loss = self.ic.loss(i, j);
            let value = outlook.sites[j].expected_price * (1.0 - loss)
                - self.ic.wheeling(i, j).dollars_per_mwh();
            directives[i].export_quota += Energy::from_mwh(sent);
            directives[i].export_value = directives[i].export_value.max(value);
            directives[j].import_expectation += Energy::from_mwh(sent * (1.0 - loss));
            sent_totals[i] += sent;
        }
        lp.workspace.recycle(sol);
        // Same top-off rule as the dense path: a donor directed to buy
        // must also fill its battery or the planned curtailment (and
        // hence the export) never materializes.
        for (s, d) in directives.iter_mut().enumerate() {
            let bought = sent_totals[s] - outlook.sites[s].expected_surplus.mwh().max(0.0);
            if bought > TOL {
                d.procure_for_export +=
                    Energy::from_mwh(bought) + outlook.sites[s].battery_headroom;
            }
        }
    }

    /// Settles already-computed per-site reports through the planner:
    /// [`MultiSiteEngine::couple_with`] with [`plan`](Self::plan) as the
    /// per-frame settlement. The planner's topology must equal the
    /// fleet's.
    ///
    /// # Errors
    ///
    /// [`SimError::SiteMismatch`] if the planner and fleet topologies
    /// differ, the report roster is misshapen, or a report lacks slot
    /// outcomes.
    pub fn couple(
        &mut self,
        engine: &MultiSiteEngine,
        reports: Vec<RunReport>,
    ) -> Result<MultiSiteReport, SimError> {
        if engine.interconnect() != &self.ic {
            return Err(SimError::SiteMismatch {
                site: self.ic.sites(),
                what: "planner topology differs from the fleet's interconnect",
            });
        }
        engine.couple_with(reports, |ex| self.plan(ex))
    }

    /// Warm-start diagnostics of the underlying workspace: `(warm, cold)`
    /// solve counts so far.
    #[must_use]
    pub fn solve_counts(&self) -> (u64, u64) {
        (self.workspace.warm_solves(), self.workspace.cold_solves())
    }

    /// Warm-start diagnostics of the prospective-dispatch workspace:
    /// `(warm, cold)` solve counts so far (zeros until the first
    /// coordinated frame is planned), summed over whichever solver
    /// paths have been exercised.
    #[must_use]
    pub fn prospective_solve_counts(&self) -> (u64, u64) {
        let dense = self.prospective.as_ref().map_or((0, 0), |lp| {
            (lp.workspace.warm_solves(), lp.workspace.cold_solves())
        });
        let net = self.prospective_net.as_ref().map_or((0, 0), |lp| {
            (lp.workspace.warm_solves(), lp.workspace.cold_solves())
        });
        (dense.0 + net.0, dense.1 + net.1)
    }

    /// Cumulative solver telemetry across every workspace the planner
    /// owns — settlement plus whichever prospective templates have been
    /// built. Counter fields sum; peak fields take the maximum over the
    /// workspaces. See [`SolverStats`].
    #[must_use]
    pub fn solver_stats(&self) -> SolverStats {
        let mut stats = self.workspace.stats();
        if let Some(lp) = &self.prospective {
            stats.merge(&lp.workspace.stats());
        }
        if let Some(lp) = &self.prospective_net {
            stats.merge(&lp.workspace.stats());
        }
        stats
    }
}

impl ProspectiveLp {
    /// Builds the buy-aware template for a topology. Bounds and
    /// right-hand sides are placeholders (the cap ceiling); every
    /// [`FleetPlanner::plan_prospective`] call edits them to the frame's
    /// caps and budgets before re-solving.
    fn for_topology(ic: &Interconnect) -> Self {
        let n = ic.sites();
        let mut problem = Problem::new(Sense::Minimize);
        let flows: Vec<(usize, usize, Variable, Variable)> = ic
            .open_links()
            .map(|(i, j)| {
                let ceiling = ic.cap_ceiling(i, j).mwh();
                let free = problem
                    .add_var(format!("x{i}_{j}"), 0.0, ceiling, 0.0)
                    .expect("caps are validated finite");
                let buy = problem
                    .add_var(format!("y{i}_{j}"), 0.0, ceiling, 0.0)
                    .expect("caps are validated finite");
                (i, j, free, buy)
            })
            .collect();
        let link_rows: Vec<ConstraintId> = flows
            .iter()
            .map(|&(i, j, free, buy)| {
                problem
                    .add_constraint(
                        &[(free, 1.0), (buy, 1.0)],
                        Relation::Le,
                        ic.cap_ceiling(i, j).mwh(),
                    )
                    .expect("template rows are well-formed")
            })
            .collect();
        let mut free_rows = vec![None; n];
        let mut buy_rows = vec![None; n];
        let mut need_rows = vec![None; n];
        for s in 0..n {
            let outgoing_free: Vec<(Variable, f64)> = flows
                .iter()
                .filter(|&&(i, _, _, _)| i == s)
                .map(|&(_, _, free, _)| (free, 1.0))
                .collect();
            if !outgoing_free.is_empty() {
                free_rows[s] = Some(
                    problem
                        .add_constraint(&outgoing_free, Relation::Le, 0.0)
                        .expect("template rows are well-formed"),
                );
                let outgoing_buy: Vec<(Variable, f64)> = flows
                    .iter()
                    .filter(|&&(i, _, _, _)| i == s)
                    .map(|&(_, _, _, buy)| (buy, 1.0))
                    .collect();
                buy_rows[s] = Some(
                    problem
                        .add_constraint(&outgoing_buy, Relation::Le, 0.0)
                        .expect("template rows are well-formed"),
                );
            }
            let incoming: Vec<(Variable, f64)> = flows
                .iter()
                .filter(|&&(_, j, _, _)| j == s)
                .flat_map(|&(i, _, free, buy)| {
                    let carry = 1.0 - ic.loss(i, s);
                    [(free, carry), (buy, carry)]
                })
                .collect();
            if !incoming.is_empty() {
                need_rows[s] = Some(
                    problem
                        .add_constraint(&incoming, Relation::Le, 0.0)
                        .expect("template rows are well-formed"),
                );
            }
        }
        if let Some(pool) = ic.pool_cap() {
            let all: Vec<(Variable, f64)> = flows
                .iter()
                .flat_map(|&(_, _, free, buy)| [(free, 1.0), (buy, 1.0)])
                .collect();
            problem
                .add_constraint(&all, Relation::Le, pool.mwh())
                .expect("template rows are well-formed");
        }
        ProspectiveLp {
            problem,
            flows,
            link_rows,
            free_rows,
            buy_rows,
            need_rows,
            workspace: LpWorkspace::new(),
        }
    }
}

impl ProspectiveNetLp {
    /// Builds the aggregated template for a topology. Bounds and
    /// right-hand sides are placeholders; every
    /// [`FleetPlanner::plan_prospective`] call on the network path edits
    /// them to the frame's caps and budgets before re-solving.
    fn for_topology(ic: &Interconnect) -> Self {
        let n = ic.sites();
        let mut problem = Problem::new(Sense::Minimize);
        let flows: Vec<(usize, usize, Variable)> = ic
            .open_links()
            .map(|(i, j)| {
                let t = problem
                    .add_var(format!("t{i}_{j}"), 0.0, ic.cap_ceiling(i, j).mwh(), 0.0)
                    .expect("caps are validated finite");
                (i, j, t)
            })
            .collect();
        let mut bought = vec![None; n];
        let mut free_rows = vec![None; n];
        let mut total_rows = vec![None; n];
        let mut need_rows = vec![None; n];
        for s in 0..n {
            let outgoing: Vec<(Variable, f64)> = flows
                .iter()
                .filter(|&&(i, _, _)| i == s)
                .map(|&(_, _, t)| (t, 1.0))
                .collect();
            if !outgoing.is_empty() {
                let z = problem
                    .add_var(format!("z{s}"), 0.0, 0.0, 0.0)
                    .expect("placeholder bounds are valid");
                bought[s] = Some(z);
                let mut free: Vec<(Variable, f64)> = outgoing.clone();
                free.push((z, -1.0));
                free_rows[s] = Some(
                    problem
                        .add_constraint(&free, Relation::Le, 0.0)
                        .expect("template rows are well-formed"),
                );
                total_rows[s] = Some(
                    problem
                        .add_constraint(&outgoing, Relation::Le, 0.0)
                        .expect("template rows are well-formed"),
                );
            }
            let incoming: Vec<(Variable, f64)> = flows
                .iter()
                .filter(|&&(_, j, _)| j == s)
                .map(|&(i, _, t)| (t, 1.0 - ic.loss(i, s)))
                .collect();
            if !incoming.is_empty() {
                need_rows[s] = Some(
                    problem
                        .add_constraint(&incoming, Relation::Le, 0.0)
                        .expect("template rows are well-formed"),
                );
            }
        }
        if let Some(pool) = ic.pool_cap() {
            let all: Vec<(Variable, f64)> = flows.iter().map(|&(_, _, t)| (t, 1.0)).collect();
            problem
                .add_constraint(&all, Relation::Le, pool.mwh())
                .expect("template rows are well-formed");
        }
        ProspectiveNetLp {
            problem,
            flows,
            bought,
            free_rows,
            total_rows,
            need_rows,
            workspace: LpWorkspace::new(),
        }
    }
}

/// The planner as a fleet dispatcher: settle every realized frame with
/// the flow LP ([`FleetPlanner::plan`]); with
/// [`with_coordination`](FleetPlanner::with_coordination) enabled, also
/// direct the sites between frames
/// ([`FleetPlanner::plan_prospective`]) — the *coordinated* dispatch
/// mode.
impl FleetDispatcher for FleetPlanner {
    fn topology(&self) -> Option<&Interconnect> {
        Some(&self.ic)
    }

    fn direct(&mut self, outlook: &FrameOutlook) -> Vec<FrameDirective> {
        if self.coordinate {
            self.plan_prospective(outlook)
        } else {
            Vec::new()
        }
    }

    fn settle(&mut self, ex: &FrameExchange) -> FrameSettlement {
        self.plan(ex)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpss_units::Price;

    fn exchange(curtailed: &[f64], rt: &[f64], price: &[f64]) -> FrameExchange {
        FrameExchange {
            frame: 0,
            curtailed: curtailed.iter().map(|&e| Energy::from_mwh(e)).collect(),
            rt_energy: rt.iter().map(|&e| Energy::from_mwh(e)).collect(),
            rt_price: price.to_vec(),
        }
    }

    #[test]
    fn decoupled_topologies_plan_nothing() {
        let mut p = FleetPlanner::new(Interconnect::decoupled(3).unwrap());
        let ex = exchange(&[5.0, 5.0, 0.0], &[0.0, 0.0, 9.0], &[0.0, 0.0, 80.0]);
        assert_eq!(p.plan(&ex), FrameSettlement::default());
    }

    #[test]
    fn planner_matches_greedy_on_pooled_lossless_topologies() {
        // The pooled lossless case is where greedy is optimal: the LP must
        // find the same value.
        let ic = Interconnect::pooled(3, Energy::from_mwh(2.0)).unwrap();
        let mut p = FleetPlanner::new(ic.clone());
        let ex = exchange(&[3.0, 0.0, 0.5], &[0.0, 1.5, 2.0], &[0.0, 80.0, 40.0]);
        let planned = p.plan(&ex);
        let greedy = ic.settle_greedy(&ex);
        assert!(
            (planned.savings.dollars() - greedy.savings.dollars()).abs() < 1e-9,
            "planned {} vs greedy {}",
            planned.savings.dollars(),
            greedy.savings.dollars()
        );
        assert_eq!(planned.wheeling, Money::ZERO);
    }

    #[test]
    fn planner_beats_greedy_when_pair_caps_constrain_routing() {
        // Donor 0 can only reach the expensive site 1 through a thin line,
        // while donor 2 reaches it at full width. Greedy spends donor 0's
        // thin line first and donor 2's width on the *expensive* site too,
        // leaving site 2's need unmet; the planner routes donor 2 to
        // site 1 and keeps donor 0 for the cheap site it can still reach.
        let ic = Interconnect::decoupled(4)
            .unwrap()
            .with_link(0, 1, Energy::from_mwh(0.5))
            .unwrap()
            .with_link(0, 3, Energy::from_mwh(2.0))
            .unwrap()
            .with_link(2, 1, Energy::from_mwh(2.0))
            .unwrap();
        let ex = exchange(
            &[2.0, 0.0, 1.0, 0.0],
            &[0.0, 1.0, 0.0, 2.0],
            &[0.0, 80.0, 0.0, 40.0],
        );
        let greedy = ic.settle_greedy(&ex);
        let planned = FleetPlanner::new(ic).plan(&ex);
        // Greedy: site 1 takes 0.5 from donor 0 + 0.5 from donor 2
        //         (thin line spent), site 3 takes 1.5 from donor 0.
        assert!((greedy.savings.dollars() - (80.0 + 1.5 * 40.0)).abs() < 1e-9);
        // Planner: donor 2 covers site 1 alone; donor 0 sends 2.0 to
        //          site 3 — strictly more displaced cost.
        assert!((planned.savings.dollars() - (80.0 + 2.0 * 40.0)).abs() < 1e-9);
        assert!(planned.savings > greedy.savings);
    }

    #[test]
    fn planner_never_routes_uneconomic_flows() {
        let ic = Interconnect::uniform(2, Energy::from_mwh(10.0))
            .unwrap()
            .with_uniform_loss(0.5)
            .unwrap()
            .with_uniform_wheeling(Price::from_dollars_per_mwh(30.0))
            .unwrap();
        let ex = exchange(&[4.0, 0.0], &[0.0, 2.0], &[0.0, 50.0]);
        let s = FleetPlanner::new(ic).plan(&ex);
        assert_eq!(s, FrameSettlement::default());
    }

    #[test]
    fn frame_chain_reuses_the_warm_path() {
        let ic = Interconnect::uniform(3, Energy::from_mwh(2.0)).unwrap();
        let mut p = FleetPlanner::new(ic);
        for k in 0..6 {
            let bump = 0.1 * f64::from(k);
            let ex = exchange(
                &[2.0 + bump, 0.3, 0.0],
                &[0.0, 1.0, 1.5 + bump],
                &[0.0, 55.0 + bump, 70.0],
            );
            let s = p.plan(&ex);
            assert!(s.savings.dollars() > 0.0);
        }
        let (warm, cold) = p.solve_counts();
        assert_eq!(warm + cold, 6);
        assert!(
            warm >= 3,
            "frame-to-frame re-solves must warm-start: {warm} warm / {cold} cold"
        );
    }

    fn outlook(frame: usize, sites: &[(f64, f64, f64, f64, f64, f64)]) -> dpss_sim::FrameOutlook {
        dpss_sim::FrameOutlook {
            frame,
            sites: sites
                .iter()
                .map(
                    |&(surplus, need, price, headroom, battery, cost)| dpss_sim::SiteOutlook {
                        expected_surplus: Energy::from_mwh(surplus),
                        expected_need: Energy::from_mwh(need),
                        expected_price: price,
                        export_headroom: Energy::from_mwh(headroom),
                        battery_headroom: Energy::from_mwh(battery),
                        procure_cost: cost,
                        load_backlog: Energy::ZERO,
                        load_due: Energy::ZERO,
                    },
                )
                .collect(),
        }
    }

    #[test]
    fn prospective_plan_is_inert_without_links_or_history() {
        let mut p = FleetPlanner::new(Interconnect::decoupled(3).unwrap()).with_coordination(true);
        let ds = p.plan_prospective(&outlook(2, &[(5.0, 0.0, 0.0, 3.0, 0.5, 31.0); 3]));
        assert_eq!(ds.len(), 3);
        assert!(ds.iter().all(FrameDirective::is_inert));
        // Frame 0 (zero outlook everywhere) is inert on a live topology.
        let ic = Interconnect::uniform(2, Energy::from_mwh(5.0)).unwrap();
        let mut p = FleetPlanner::new(ic);
        let ds = p.plan_prospective(&outlook(0, &[(0.0, 0.0, 0.0, 0.0, 0.5, 31.0); 2]));
        assert!(ds.iter().all(FrameDirective::is_inert));
    }

    #[test]
    fn prospective_plan_directs_buy_to_export_when_value_clears_the_margin() {
        let ic = Interconnect::decoupled(2)
            .unwrap()
            .with_link(0, 1, Energy::from_mwh(5.0))
            .unwrap();
        let mut p = FleetPlanner::new(ic);
        // Site 1 pays $80 for ~2 MWh; site 0 has 1 MWh of forecast
        // surplus, 3 MWh of grid slack, 0.5 MWh of battery headroom and
        // procures at $31/MWh. $80 clears 31 × 1.6 easily.
        let ds = p.plan_prospective(&outlook(
            3,
            &[
                (1.0, 0.0, 0.0, 3.0, 0.5, 31.0),
                (0.0, 2.0, 80.0, 0.0, 0.0, 31.0),
            ],
        ));
        assert_eq!(ds[0].frame, 3);
        // Recipient need bounds the plan: 1 free + 1 bought.
        assert!((ds[0].export_quota.mwh() - 2.0).abs() < 1e-9, "{ds:?}");
        // The buy-to-export order includes the battery top-off.
        assert!(
            (ds[0].procure_for_export.mwh() - 1.5).abs() < 1e-9,
            "{ds:?}"
        );
        assert!((ds[0].export_value - 80.0).abs() < 1e-9);
        assert!((ds[1].import_expectation.mwh() - 2.0).abs() < 1e-9);
        assert_eq!(ds[1].export_quota, Energy::ZERO);
        let (warm, cold) = p.prospective_solve_counts();
        assert_eq!(warm + cold, 1);

        // Below the margin ($40 < $31 × 1.6) only the free surplus moves:
        // nothing is procured.
        let ds = p.plan_prospective(&outlook(
            4,
            &[
                (1.0, 0.0, 0.0, 3.0, 0.5, 31.0),
                (0.0, 2.0, 40.0, 0.0, 0.0, 31.0),
            ],
        ));
        assert!((ds[0].export_quota.mwh() - 1.0).abs() < 1e-9, "{ds:?}");
        assert_eq!(ds[0].procure_for_export, Energy::ZERO);
        // Frame-to-frame re-solves stay on the warm path.
        let (warm, cold) = p.prospective_solve_counts();
        assert_eq!((warm + cold, cold), (2, 1));
    }

    #[test]
    fn solver_path_parses_and_resolves() {
        assert_eq!(SolverPath::parse("auto").unwrap(), SolverPath::Auto);
        assert_eq!(SolverPath::parse("dense").unwrap(), SolverPath::Dense);
        assert_eq!(SolverPath::parse("network").unwrap(), SolverPath::Network);
        let err = SolverPath::parse("bogus").unwrap_err();
        assert!(err.contains("unknown solver path: bogus"), "{err}");
        assert!(err.contains("auto|dense|network"), "{err}");
        assert_eq!(SolverPath::Network.to_string(), "network");
        // Auto resolves by fleet size; explicit paths are sticky.
        assert_eq!(SolverPath::Auto.resolve(3), SolverPath::Dense);
        assert_eq!(
            SolverPath::Auto.resolve(NETWORK_AUTO_SITE_THRESHOLD),
            SolverPath::Dense
        );
        assert_eq!(
            SolverPath::Auto.resolve(NETWORK_AUTO_SITE_THRESHOLD + 1),
            SolverPath::Network
        );
        assert_eq!(SolverPath::Dense.resolve(100), SolverPath::Dense);
        assert_eq!(SolverPath::Network.resolve(2), SolverPath::Network);
        let p = FleetPlanner::new(Interconnect::decoupled(2).unwrap());
        assert_eq!(p.solver_path(), SolverPath::Auto);
        assert_eq!(p.resolved_solver_path(), SolverPath::Dense);
        let p = p.with_solver_path(SolverPath::Network);
        assert_eq!(p.resolved_solver_path(), SolverPath::Network);
    }

    #[test]
    fn network_settlement_matches_dense_net_value() {
        // A lossy, wheeled 4-site mesh: both paths must settle every
        // frame to the same net value (savings − wheeling is the LP
        // objective; the sent/savings split of a degenerate tie may
        // differ by vertex, the optimum may not).
        let ic = Interconnect::mesh(4, Energy::from_mwh(2.0))
            .unwrap()
            .with_uniform_loss(0.05)
            .unwrap()
            .with_uniform_wheeling(Price::from_dollars_per_mwh(2.0))
            .unwrap();
        let mut dense = FleetPlanner::new(ic.clone()).with_solver_path(SolverPath::Dense);
        let mut net = FleetPlanner::new(ic).with_solver_path(SolverPath::Network);
        for k in 0..6 {
            let bump = 0.3 * f64::from(k);
            let ex = exchange(
                &[2.0 + bump, 0.3, 0.0, 0.4],
                &[0.0, 1.0, 1.5 + bump, 0.2],
                &[0.0, 55.0 + bump, 70.0, 61.0],
            );
            let d = dense.plan(&ex);
            let n = net.plan(&ex);
            let d_net = d.savings - d.wheeling;
            let n_net = n.savings - n.wheeling;
            assert!(
                (d_net.dollars() - n_net.dollars()).abs() < 1e-9,
                "frame {k}: dense {} vs network {}",
                d_net.dollars(),
                n_net.dollars()
            );
        }
        // Both paths share the warm-start counters of one workspace.
        let (warm, cold) = net.solve_counts();
        assert_eq!(warm + cold, 6);
        assert!(warm >= 2, "{warm} warm / {cold} cold");
    }

    #[test]
    fn network_prospective_matches_dense_directives() {
        // Non-degenerate buy-to-export case: the aggregated template
        // must reproduce the split form's directives exactly.
        let ic = Interconnect::decoupled(2)
            .unwrap()
            .with_link(0, 1, Energy::from_mwh(5.0))
            .unwrap();
        let mut dense = FleetPlanner::new(ic.clone()).with_solver_path(SolverPath::Dense);
        let mut net = FleetPlanner::new(ic).with_solver_path(SolverPath::Network);
        let looks = [
            outlook(
                3,
                &[
                    (1.0, 0.0, 0.0, 3.0, 0.5, 31.0),
                    (0.0, 2.0, 80.0, 0.0, 0.0, 31.0),
                ],
            ),
            outlook(
                4,
                &[
                    (1.0, 0.0, 0.0, 3.0, 0.5, 31.0),
                    (0.0, 2.0, 40.0, 0.0, 0.0, 31.0),
                ],
            ),
            outlook(
                5,
                &[
                    (0.0, 0.0, 0.0, 4.0, 0.25, 30.0),
                    (0.0, 3.0, 90.0, 0.0, 0.0, 31.0),
                ],
            ),
        ];
        for look in &looks {
            let d = dense.plan_prospective(look);
            let n = net.plan_prospective(look);
            assert_eq!(d, n, "frame {}", look.frame);
        }
        let (warm, cold) = net.prospective_solve_counts();
        assert_eq!(warm + cold, 3);
        assert!(warm >= 1, "{warm} warm / {cold} cold");
    }

    #[test]
    fn clear_basis_forces_cold_but_keeps_counters() {
        let ic = Interconnect::uniform(3, Energy::from_mwh(2.0)).unwrap();
        let mut p = FleetPlanner::new(ic);
        let ex = exchange(&[2.0, 0.3, 0.0], &[0.0, 1.0, 1.5], &[0.0, 55.0, 70.0]);
        let _ = p.plan(&ex);
        let _ = p.plan(&ex);
        let (w1, c1) = p.solve_counts();
        assert_eq!((w1, c1), (1, 1));
        p.clear_basis();
        let _ = p.plan(&ex);
        let (w2, c2) = p.solve_counts();
        assert_eq!((w2, c2), (1, 2), "cleared basis must force a cold solve");
    }

    #[test]
    fn export_import_state_carries_the_warm_path_across_planners() {
        let ic = Interconnect::uniform(3, Energy::from_mwh(2.0)).unwrap();
        let mut donor = FleetPlanner::new(ic.clone());
        let ex = exchange(&[2.0, 0.3, 0.0], &[0.0, 1.0, 1.5], &[0.0, 55.0, 70.0]);
        let _ = donor.plan(&ex);
        let state = donor.export_state();

        // A fresh planner with the imported state continues warm and
        // settles the next frame exactly like the donor.
        let mut restored = FleetPlanner::new(ic);
        restored.import_state(&state).unwrap();
        let ex2 = exchange(&[1.8, 0.4, 0.0], &[0.0, 1.2, 1.3], &[0.0, 58.0, 66.0]);
        let a = donor.plan(&ex2);
        let b = restored.plan(&ex2);
        assert_eq!(a, b);
        let (warm, cold) = restored.solve_counts();
        assert_eq!((warm, cold), (1, 0), "restored planner must solve warm");

        // Roundtrip through JSON (what a snapshot file carries).
        let json = serde_json::to_string(&state).unwrap();
        let back: FleetPlannerState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, state);

        // A corrupted basis is rejected with a typed error.
        let mut bad = state;
        if let Some(d) = bad.settlement.dense.as_mut() {
            d.basis.push(0);
        }
        assert!(matches!(
            FleetPlanner::new(Interconnect::uniform(3, Energy::from_mwh(2.0)).unwrap())
                .import_state(&bad),
            Err(SimError::InvalidState { .. })
        ));
    }

    #[test]
    fn prospective_margin_validates() {
        let p = FleetPlanner::new(Interconnect::decoupled(2).unwrap());
        assert!(p.clone().with_procure_margin(f64::NAN).is_err());
        assert!(p.clone().with_procure_margin(-0.1).is_err());
        assert!(p.with_procure_margin(0.0).is_ok());
    }

    #[test]
    fn couple_rejects_mismatched_topologies() {
        use dpss_sim::{Engine, SimParams};
        use dpss_units::SlotClock;
        let clock = SlotClock::new(2, 24, 1.0).unwrap();
        let engines: Vec<Engine> = (0..2)
            .map(|s| {
                Engine::new(
                    SimParams::icdcs13(),
                    dpss_traces::Scenario::icdcs13()
                        .generate(&clock, 10 + s)
                        .unwrap(),
                )
                .unwrap()
            })
            .collect();
        let multi = MultiSiteEngine::new(engines)
            .unwrap()
            .with_transfer_cap(Energy::from_mwh(1.0))
            .unwrap();
        let mut planner =
            FleetPlanner::new(Interconnect::pooled(2, Energy::from_mwh(9.0)).unwrap());
        let reports: Vec<RunReport> = multi
            .sites()
            .iter()
            .map(|s| s.run(&mut crate::Impatient::two_markets()).unwrap())
            .collect();
        assert!(matches!(
            planner.couple(&multi, reports.clone()),
            Err(SimError::SiteMismatch { .. })
        ));
        // The matching planner settles at least as well as the greedy fold.
        let mut matching = FleetPlanner::for_engine(&multi);
        let planned = matching.couple(&multi, reports.clone()).unwrap();
        let posthoc = multi.couple(reports).unwrap();
        assert!(planned.total_cost() <= posthoc.total_cost() + Money::from_dollars(1e-9));
    }
}
