use dpss_units::Energy;

use crate::CoreError;

/// Which grid markets the controller may use (the Fig. 7 comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MarketMode {
    /// Long-term-ahead plus real-time purchasing (the paper's "TM" case).
    #[default]
    TwoMarkets,
    /// Real-time purchasing only (the paper's "RTM" case): `g_bef(t) ≡ 0`.
    RealTimeOnly,
}

/// Which per-slot objective the real-time balancing step **P5** minimizes.
///
/// The conference text's printed P3/P5 coefficients contain sign typos (see
/// `DESIGN.md` §3); both interpretations are implemented so the difference
/// can be measured (the `ablations` bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum P5Objective {
    /// The drift-plus-penalty bound derived from Eqs. (2)(12)(15):
    /// `V·(g_rt·p_rt + n·Cb + w_pen·W) − (Q+Y)·s_dt + X·(ηc·brc − ηd·bdc)`.
    #[default]
    Derived,
    /// The P5 expression exactly as printed in the paper:
    /// `g_rt·[V·p_rt − Q − Y] + γ·[Q² − Q·Y] + V·n·Cb + V·W
    ///  + (Q+X+Y)·(brc − bdc)`.
    PaperLiteral,
}

/// How the long-term purchasing step **P4** bounds its buy (ablation).
///
/// The default is [`P4Variant::WasteAware`]: the printed P4 buys the full
/// interconnect (`T·Pgrid`) whenever the weight `V·p_lt − Q − Y` turns
/// negative, which on realistic traces over-buys far beyond what the
/// frame can absorb and burns the surplus as waste (the `ablations` bench
/// quantifies this). The waste-aware cap keeps the trigger semantics but
/// never buys more than the frame's projected absorption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum P4Variant {
    /// Exactly the paper's P4: when the weight `V·p_lt − Q − Y` is
    /// negative, buy up to the interconnect limit.
    PaperLiteral,
    /// Caps the buy at the frame's projected absorption (expected net
    /// demand + backlog + battery headroom), avoiding deliberate waste
    /// when queues are long (default; see `DESIGN.md` §3).
    #[default]
    WasteAware,
}

/// Tunables of the [`SmartDpss`](crate::SmartDpss) controller.
///
/// # Examples
///
/// ```
/// use dpss_core::SmartDpssConfig;
///
/// // Paper defaults: V = 1, ε = 0.5, two markets.
/// let c = SmartDpssConfig::icdcs13();
/// c.validate().unwrap();
/// // The Fig. 6(a) sweep varies V.
/// let aggressive = SmartDpssConfig::icdcs13().with_v(5.0);
/// assert_eq!(aggressive.v, 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmartDpssConfig {
    /// The cost–delay trade-off parameter `V > 0`: larger values weigh cost
    /// more heavily, pushing time-average cost within `O(1/V)` of optimal
    /// at the price of `O(V)` delay (Theorem 2).
    pub v: f64,
    /// The ε-persistent-queue growth rate (Eq. (12)), in MWh per slot:
    /// larger ε serves the backlog sooner (less delay, more cost — Fig. 7).
    pub epsilon: f64,
    /// Market structure.
    pub market: MarketMode,
    /// P5 objective interpretation (ablation).
    pub p5_objective: P5Objective,
    /// P4 purchase-cap variant (ablation).
    pub p4_variant: P4Variant,
    /// The per-slot bound `Ddtmax` on delay-tolerant arrivals, used by the
    /// `Umax`/`X(t)` shift (Eq. (14)) and the Theorem 2 bounds. Must match
    /// the demand model feeding the simulation.
    pub ddt_max: Energy,
    /// Route P4/P5 through the `dpss-lp` simplex instead of the exact
    /// closed-form solver. Produces identical decisions (asserted in
    /// tests); mainly useful for cross-validation and benchmarks.
    pub use_lp_solver: bool,
}

impl SmartDpssConfig {
    /// Paper defaults (§VI-A): `V = 1`, `ε = 0.5`, two markets, derived P5
    /// objective, waste-aware P4, `Ddtmax` from the default demand model.
    #[must_use]
    pub fn icdcs13() -> Self {
        SmartDpssConfig {
            v: 1.0,
            epsilon: 0.5,
            market: MarketMode::default(),
            p5_objective: P5Objective::default(),
            p4_variant: P4Variant::default(),
            ddt_max: dpss_traces::paper_ddt_max(),
            use_lp_solver: false,
        }
    }

    /// Sets the cost–delay parameter `V`.
    #[must_use]
    pub fn with_v(mut self, v: f64) -> Self {
        self.v = v;
        self
    }

    /// Sets the delay-control parameter `ε`.
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the market structure.
    #[must_use]
    pub fn with_market(mut self, market: MarketMode) -> Self {
        self.market = market;
        self
    }

    /// Sets the P5 objective interpretation.
    #[must_use]
    pub fn with_p5_objective(mut self, objective: P5Objective) -> Self {
        self.p5_objective = objective;
        self
    }

    /// Sets the P4 purchase-cap variant.
    #[must_use]
    pub fn with_p4_variant(mut self, variant: P4Variant) -> Self {
        self.p4_variant = variant;
        self
    }

    /// Sets `Ddtmax`.
    #[must_use]
    pub fn with_ddt_max(mut self, ddt_max: Energy) -> Self {
        self.ddt_max = ddt_max;
        self
    }

    /// Enables or disables the LP-backed subproblem solver.
    #[must_use]
    pub fn with_lp_solver(mut self, use_lp: bool) -> Self {
        self.use_lp_solver = use_lp;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] describing the first violated rule.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(self.v.is_finite() && self.v > 0.0) {
            return Err(CoreError::InvalidConfig {
                what: "v",
                requirement: "must be finite and positive",
            });
        }
        if !(self.epsilon.is_finite() && self.epsilon > 0.0) {
            return Err(CoreError::InvalidConfig {
                what: "epsilon",
                requirement: "must be finite and positive",
            });
        }
        if !(self.ddt_max.is_finite() && self.ddt_max.mwh() >= 0.0) {
            return Err(CoreError::InvalidConfig {
                what: "ddt_max",
                requirement: "must be finite and non-negative",
            });
        }
        Ok(())
    }
}

impl Default for SmartDpssConfig {
    fn default() -> Self {
        SmartDpssConfig::icdcs13()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = SmartDpssConfig::icdcs13();
        assert_eq!(c.v, 1.0);
        assert_eq!(c.epsilon, 0.5);
        assert_eq!(c.market, MarketMode::TwoMarkets);
        assert_eq!(c.p5_objective, P5Objective::Derived);
        assert_eq!(c.p4_variant, P4Variant::WasteAware);
        assert!(!c.use_lp_solver);
        c.validate().unwrap();
        assert_eq!(SmartDpssConfig::default(), c);
    }

    #[test]
    fn builder_setters() {
        let c = SmartDpssConfig::icdcs13()
            .with_v(0.05)
            .with_epsilon(2.0)
            .with_market(MarketMode::RealTimeOnly)
            .with_p5_objective(P5Objective::PaperLiteral)
            .with_p4_variant(P4Variant::WasteAware)
            .with_ddt_max(Energy::from_mwh(1.0))
            .with_lp_solver(true);
        assert_eq!(c.v, 0.05);
        assert_eq!(c.epsilon, 2.0);
        assert_eq!(c.market, MarketMode::RealTimeOnly);
        assert_eq!(c.p5_objective, P5Objective::PaperLiteral);
        assert_eq!(c.p4_variant, P4Variant::WasteAware);
        assert_eq!(c.ddt_max, Energy::from_mwh(1.0));
        assert!(c.use_lp_solver);
        c.validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(SmartDpssConfig::icdcs13().with_v(0.0).validate().is_err());
        assert!(SmartDpssConfig::icdcs13()
            .with_v(f64::NAN)
            .validate()
            .is_err());
        assert!(SmartDpssConfig::icdcs13()
            .with_epsilon(-1.0)
            .validate()
            .is_err());
        assert!(SmartDpssConfig::icdcs13()
            .with_ddt_max(Energy::from_mwh(-1.0))
            .validate()
            .is_err());
    }
}
