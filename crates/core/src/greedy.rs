use dpss_sim::{
    Controller, FrameDecision, FrameObservation, SlotDecision, SlotObservation, SystemView,
};
use dpss_units::Price;

use crate::CoreError;

/// A price-threshold battery-arbitrage baseline (extension, not in the
/// paper): serve everything immediately like
/// [`Impatient`](crate::Impatient), but run the battery on a simple rule —
/// charge from the grid when the real-time price is below `charge_below`,
/// let deficits discharge it when the price is above `discharge_above`.
///
/// This is the "obvious" storage heuristic practitioners reach for first;
/// comparing it against SmartDPSS isolates how much of the gain comes from
/// the Lyapunov coupling of queues, markets and storage rather than from
/// storage alone.
///
/// # Examples
///
/// ```
/// use dpss_core::GreedyBattery;
/// use dpss_sim::{Engine, SimParams};
/// use dpss_units::Price;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let engine = Engine::new(SimParams::icdcs13(),
///                          dpss_traces::paper_month_traces(1)?)?;
/// let mut ctl = GreedyBattery::new(
///     Price::from_dollars_per_mwh(30.0),
///     Price::from_dollars_per_mwh(55.0),
/// )?;
/// let report = engine.run(&mut ctl)?;
/// assert_eq!(report.unserved_ds.mwh(), 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GreedyBattery {
    charge_below: Price,
    discharge_above: Price,
}

impl GreedyBattery {
    /// Creates the baseline with the two price thresholds.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] unless
    /// `0 ≤ charge_below ≤ discharge_above` and both are finite.
    pub fn new(charge_below: Price, discharge_above: Price) -> Result<Self, CoreError> {
        if !(charge_below.is_finite() && charge_below.dollars_per_mwh() >= 0.0) {
            return Err(CoreError::InvalidConfig {
                what: "charge_below",
                requirement: "must be finite and non-negative",
            });
        }
        if !discharge_above.is_finite() || discharge_above < charge_below {
            return Err(CoreError::InvalidConfig {
                what: "discharge_above",
                requirement: "must be finite and at least charge_below",
            });
        }
        Ok(GreedyBattery {
            charge_below,
            discharge_above,
        })
    }

    /// Thresholds centred on a price model's base level: charge below
    /// `base·0.85`, discharge above `base·1.35`.
    ///
    /// # Errors
    ///
    /// Propagates [`GreedyBattery::new`] validation.
    pub fn around(base: Price) -> Result<Self, CoreError> {
        GreedyBattery::new(base * 0.85, base * 1.35)
    }
}

impl Controller for GreedyBattery {
    fn name(&self) -> &str {
        "greedy-battery"
    }

    fn plan_frame(&mut self, obs: &FrameObservation, _view: &SystemView) -> FrameDecision {
        // Same naive hedge as Impatient: cover the observed net demand.
        let per_slot = (obs.demand_ds + obs.demand_dt - obs.renewable).positive_part();
        FrameDecision {
            purchase_lt: per_slot * obs.slots_in_frame as f64,
        }
    }

    fn plan_slot(&mut self, obs: &SlotObservation, view: &SystemView) -> SlotDecision {
        // Serve everything now.
        let need = obs.demand_ds + view.queue_backlog;
        let mut purchase = (need - view.lt_allocation - obs.renewable).positive_part();
        if obs.price_rt <= self.charge_below {
            // Cheap power: buy extra to fill the battery too.
            purchase += view.battery_headroom;
        } else if obs.price_rt >= self.discharge_above {
            // Expensive power: let the battery cover what it can instead.
            purchase = (purchase - view.battery_available).positive_part();
        }
        SlotDecision {
            purchase_rt: purchase.min(view.rt_purchase_cap),
            serve_fraction: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpss_sim::{Engine, SimParams};
    use dpss_units::{Energy, SlotClock};

    fn engine(seed: u64) -> Engine {
        let clock = SlotClock::new(6, 24, 1.0).unwrap();
        let traces = dpss_traces::Scenario::icdcs13()
            .generate(&clock, seed)
            .unwrap();
        Engine::new(SimParams::icdcs13(), traces).unwrap()
    }

    #[test]
    fn validation() {
        assert!(GreedyBattery::new(
            Price::from_dollars_per_mwh(-1.0),
            Price::from_dollars_per_mwh(50.0)
        )
        .is_err());
        assert!(GreedyBattery::new(
            Price::from_dollars_per_mwh(60.0),
            Price::from_dollars_per_mwh(50.0)
        )
        .is_err());
        assert!(GreedyBattery::around(Price::from_dollars_per_mwh(35.0)).is_ok());
    }

    #[test]
    fn serves_everything_and_cycles_the_battery() {
        let e = engine(3);
        let mut ctl = GreedyBattery::around(Price::from_dollars_per_mwh(35.0)).unwrap();
        let r = e.run(&mut ctl).unwrap();
        assert_eq!(r.unserved_ds, Energy::ZERO);
        assert!(r.average_delay_slots <= 1.0 + 1e-9);
        assert!(r.battery_ops > 0, "the battery rule must fire");
    }

    #[test]
    fn smart_dpss_beats_the_greedy_heuristic() {
        // The point of the baseline: storage arbitrage alone is not where
        // the savings come from.
        let e = engine(4);
        let params = SimParams::icdcs13();
        let mut greedy = GreedyBattery::around(Price::from_dollars_per_mwh(35.0)).unwrap();
        let r_greedy = e.run(&mut greedy).unwrap();
        let mut smart = crate::SmartDpss::new(
            crate::SmartDpssConfig::icdcs13(),
            params,
            SlotClock::new(6, 24, 1.0).unwrap(),
        )
        .unwrap();
        let r_smart = e.run(&mut smart).unwrap();
        assert!(
            r_smart.total_cost() < r_greedy.total_cost(),
            "smart {} vs greedy {}",
            r_smart.total_cost(),
            r_greedy.total_cost()
        );
    }

    #[test]
    fn name_is_stable() {
        let ctl = GreedyBattery::around(Price::from_dollars_per_mwh(30.0)).unwrap();
        assert_eq!(ctl.name(), "greedy-battery");
    }
}
