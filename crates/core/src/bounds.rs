use dpss_sim::SimParams;
use dpss_units::SlotClock;

use crate::SmartDpssConfig;

/// The closed-form performance bounds of Theorem 2 (and the constants
/// `H1`/`H2` of Theorem 1/Corollary 1), evaluated for a concrete
/// parameterization.
///
/// Quantities follow the paper's convention of treating queue lengths
/// (MWh) and weighted prices as commensurable scalars; all fields are
/// plain `f64` in MWh-equivalents except [`TheoremBounds::lambda_max_slots`]
/// (slots) and [`TheoremBounds::v_max`] (dimensionless).
///
/// Note: with the paper's own §VI-A battery (15 minutes of peak), the
/// `Vmax` premise of Theorem 2 is *not* satisfiable (`Bmax < Bdmax·ηd`),
/// so `v_max` clamps at zero; the theorem-bound integration tests use a
/// larger battery where `v_max > 0`, and the evaluation figures follow the
/// paper in running outside the premise.
///
/// # Examples
///
/// ```
/// use dpss_core::{SmartDpssConfig, TheoremBounds};
/// use dpss_sim::SimParams;
/// use dpss_units::SlotClock;
///
/// let b = TheoremBounds::compute(
///     &SmartDpssConfig::icdcs13(),
///     &SimParams::icdcs13(),
///     &SlotClock::icdcs13_month(),
/// );
/// // Qmax = V·Pmax/T + Ddtmax = 100/24 + 0.8.
/// assert!((b.q_max - (100.0 / 24.0 + 0.8)).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TheoremBounds {
    /// Deterministic backlog bound `Qmax = V·Pmax/T + Ddtmax` (Eq. (23)).
    pub q_max: f64,
    /// Virtual-queue bound `Ymax = V·Pmax/T + ε` (Eq. (24)).
    pub y_max: f64,
    /// Combined bound `Umax = V·Pmax/T + Ddtmax + ε` (Eq. (25)).
    pub u_max: f64,
    /// Worst-case delay `λmax = ⌈(2·V·Pmax/T + Ddtmax + ε)/ε⌉` in fine
    /// slots (Eq. (26)).
    pub lambda_max_slots: f64,
    /// Largest `V` for which Theorem 2's premises hold (clamped at 0):
    /// `Vmax = T·(Bmax − Bmin − Bdmax·ηd − Bcmax·ηc − Ddtmax − ε)/Pmax`.
    pub v_max: f64,
    /// Lower bound on the availability queue, `X(t) ≥ −Umax − Bdmax·ηd`
    /// (Eq. (21)).
    pub x_lower: f64,
    /// Upper bound, `X(t) ≤ Bmax − Umax − Bmin − Bdmax·ηd` (Eq. (22)).
    pub x_upper: f64,
    /// Drift constant `H1` of Theorem 1 (with `Sdtmax` taken as the
    /// effective service bound: the configured `Sdtmax` if any, else
    /// `Qmax`, since service never exceeds the backlog).
    pub h1: f64,
    /// Loosened constant `H2 = H1 + T(T−1)(Bcmax²ηc² + ε²)` of Corollary 1.
    pub h2: f64,
    /// The cost-gap bound `H2/V` of Theorem 2(5): SmartDPSS's time-average
    /// cost is within this of the offline optimum (when `V ≤ Vmax`).
    pub cost_gap: f64,
}

impl TheoremBounds {
    /// Evaluates all bounds for a controller configuration, plant
    /// parameters and calendar.
    #[must_use]
    pub fn compute(config: &SmartDpssConfig, params: &SimParams, clock: &SlotClock) -> Self {
        let v = config.v;
        let eps = config.epsilon;
        let t = clock.slots_per_frame() as f64;
        let pmax = params.price_cap.dollars_per_mwh();
        let ddt_max = config.ddt_max.mwh();
        let b = &params.battery;
        let bc = b.max_charge.mwh();
        let bd = b.max_discharge.mwh();
        let eta_c = b.charge_efficiency;
        let eta_d = b.discharge_efficiency;

        let vp_over_t = v * pmax / t;
        let q_max = vp_over_t + ddt_max;
        let y_max = vp_over_t + eps;
        let u_max = vp_over_t + ddt_max + eps;
        let lambda_max_slots = ((2.0 * vp_over_t + ddt_max + eps) / eps).ceil();
        let v_max = (t
            * (b.capacity.mwh() - b.min_level.mwh() - bd * eta_d - bc * eta_c - ddt_max - eps)
            / pmax)
            .max(0.0);
        let x_lower = -u_max - bd * eta_d;
        let x_upper = b.capacity.mwh() - u_max - b.min_level.mwh() - bd * eta_d;

        let sdt_max = params.sdt_max.map_or(q_max, |s| s.mwh());
        let h1 = sdt_max * sdt_max
            + 0.5
                * (ddt_max * ddt_max
                    + bc * bc * eta_c * eta_c
                    + bd * bd * eta_d * eta_d
                    + eps * eps);
        let h2 = h1 + t * (t - 1.0) * (bc * bc * eta_c * eta_c + eps * eps);

        TheoremBounds {
            q_max,
            y_max,
            u_max,
            lambda_max_slots,
            v_max,
            x_lower,
            x_upper,
            h1,
            h2,
            cost_gap: h2 / v,
        }
    }

    /// The `X(t)` value corresponding to a battery level `b` (Eq. (14)):
    /// `X = b − Umax − Bmin − Bdmax·ηd`.
    #[must_use]
    pub fn x_of_level(&self, params: &SimParams, battery_level_mwh: f64) -> f64 {
        battery_level_mwh
            - self.u_max
            - params.battery.min_level.mwh()
            - params.battery.max_discharge.mwh() * params.battery.discharge_efficiency
    }

    /// Theorem 3's robustness constant
    /// `H3 = H2 + T·θmax·(2·Sdtmax + Ddtmax + Bcmax·ηc + Bdmax·ηd + ε)`,
    /// where `θmax` bounds the error between the approximated and actual
    /// queue backlogs. The cost bound under bounded approximation error is
    /// `φopt + H3/V` (Eq. (28)).
    #[must_use]
    pub fn h3(
        &self,
        config: &SmartDpssConfig,
        params: &SimParams,
        clock: &SlotClock,
        theta_max: f64,
    ) -> f64 {
        let t = clock.slots_per_frame() as f64;
        let b = &params.battery;
        let sdt_max = params.sdt_max.map_or(self.q_max, |s| s.mwh());
        self.h2
            + t * theta_max.max(0.0)
                * (2.0 * sdt_max
                    + config.ddt_max.mwh()
                    + b.max_charge.mwh() * b.charge_efficiency
                    + b.max_discharge.mwh() * b.discharge_efficiency
                    + config.epsilon)
    }

    /// Corollary 2's expansion scaling: under the `β`-fold system
    /// expansion (`d(β,t) = β·d(t)`, `r(β,t) = β·r(t)`, queue uncertainty
    /// `β^α·θmax` with `α ∈ [1/2, 1]`), the constants become
    /// `H1(β) = β·H1`, `H2(β) = β·H2` and
    /// `H3(β) = β·H2 + T·β^α·θmax·(…)`. Returns `(h1, h2, h3)` at `β`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `beta < 1` or `alpha ∉ [0.5, 1]`.
    #[must_use]
    pub fn scaled_constants(
        &self,
        config: &SmartDpssConfig,
        params: &SimParams,
        clock: &SlotClock,
        beta: f64,
        alpha: f64,
        theta_max: f64,
    ) -> (f64, f64, f64) {
        debug_assert!(beta >= 1.0, "beta must be at least 1");
        debug_assert!((0.5..=1.0).contains(&alpha), "alpha must be in [1/2, 1]");
        let h1_b = beta * self.h1;
        let h2_b = beta * self.h2;
        let t = clock.slots_per_frame() as f64;
        let b = &params.battery;
        let sdt_max = params.sdt_max.map_or(self.q_max, |s| s.mwh());
        let h3_b = beta * self.h2
            + t * beta.powf(alpha)
                * theta_max.max(0.0)
                * (2.0 * sdt_max
                    + config.ddt_max.mwh()
                    + b.max_charge.mwh() * b.charge_efficiency
                    + b.max_discharge.mwh() * b.discharge_efficiency
                    + config.epsilon);
        (h1_b, h2_b, h3_b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpss_sim::BatteryParams;
    use dpss_units::Energy;

    fn base() -> (SmartDpssConfig, SimParams, SlotClock) {
        (
            SmartDpssConfig::icdcs13(),
            SimParams::icdcs13(),
            SlotClock::icdcs13_month(),
        )
    }

    #[test]
    fn paper_formulas() {
        let (c, p, k) = base();
        let b = TheoremBounds::compute(&c, &p, &k);
        let vp = 1.0 * 100.0 / 24.0;
        assert!((b.q_max - (vp + 0.8)).abs() < 1e-9);
        assert!((b.y_max - (vp + 0.5)).abs() < 1e-9);
        assert!((b.u_max - (vp + 1.3)).abs() < 1e-9);
        assert_eq!(b.lambda_max_slots, ((2.0 * vp + 1.3) / 0.5).ceil());
        // Paper battery: Bmax=0.5 < Bdmax·ηd=0.625 → premise fails, clamp 0.
        assert_eq!(b.v_max, 0.0);
        assert!(b.h2 > b.h1);
        assert!((b.cost_gap - b.h2).abs() < 1e-12, "V = 1 → gap = H2");
    }

    #[test]
    fn larger_battery_admits_positive_vmax() {
        let (c, mut p, k) = base();
        p.battery = BatteryParams::icdcs13(120.0); // Bmax = 4 MWh
        let b = TheoremBounds::compute(&c, &p, &k);
        assert!(b.v_max > 0.0, "v_max {}", b.v_max);
        // Window is consistent: x_lower < x_upper.
        assert!(b.x_lower < b.x_upper);
    }

    #[test]
    fn bounds_scale_with_v_and_t() {
        let (c, p, k) = base();
        let b1 = TheoremBounds::compute(&c, &p, &k);
        let b5 = TheoremBounds::compute(&c.with_v(5.0), &p, &k);
        assert!(b5.q_max > b1.q_max, "Qmax grows with V");
        assert!(b5.lambda_max_slots > b1.lambda_max_slots, "delay O(V)");
        assert!(b5.cost_gap < b1.cost_gap, "cost gap O(1/V)");
        let k48 = SlotClock::new(16, 48, 1.0).unwrap();
        let b48 = TheoremBounds::compute(&c, &p, &k48);
        assert!(b48.q_max < b1.q_max, "Qmax shrinks with T");
    }

    #[test]
    fn epsilon_trades_delay_for_queue_growth() {
        let (c, p, k) = base();
        let small = TheoremBounds::compute(&c.with_epsilon(0.25), &p, &k);
        let large = TheoremBounds::compute(&c.with_epsilon(2.0), &p, &k);
        assert!(small.lambda_max_slots > large.lambda_max_slots);
    }

    #[test]
    fn x_of_level_matches_eq_14() {
        let (c, p, k) = base();
        let b = TheoremBounds::compute(&c, &p, &k);
        let x = b.x_of_level(&p, 0.5);
        let expect = 0.5 - b.u_max - p.battery.min_level.mwh() - 0.5 * 1.25;
        assert!((x - expect).abs() < 1e-12);
    }

    #[test]
    fn h3_grows_with_approximation_error() {
        // Theorem 3: perfect information (θmax = 0) reduces H3 to H2;
        // error widens the cost gap monotonically.
        let (c, p, k) = base();
        let b = TheoremBounds::compute(&c, &p, &k);
        assert!((b.h3(&c, &p, &k, 0.0) - b.h2).abs() < 1e-12);
        let h3_small = b.h3(&c, &p, &k, 0.5);
        let h3_large = b.h3(&c, &p, &k, 2.0);
        assert!(b.h2 < h3_small && h3_small < h3_large);
        // Negative error bounds are clamped, not amplified.
        assert!((b.h3(&c, &p, &k, -1.0) - b.h2).abs() < 1e-12);
    }

    #[test]
    fn corollary_2_scaling_is_linear_in_beta() {
        let (c, p, k) = base();
        let b = TheoremBounds::compute(&c, &p, &k);
        let (h1_1, h2_1, h3_1) = b.scaled_constants(&c, &p, &k, 1.0, 1.0, 0.5);
        let (h1_5, h2_5, h3_5) = b.scaled_constants(&c, &p, &k, 5.0, 1.0, 0.5);
        assert!((h1_1 - b.h1).abs() < 1e-12);
        assert!((h2_1 - b.h2).abs() < 1e-12);
        assert!((h3_1 - b.h3(&c, &p, &k, 0.5)).abs() < 1e-12);
        assert!((h1_5 - 5.0 * b.h1).abs() < 1e-9);
        assert!((h2_5 - 5.0 * b.h2).abs() < 1e-9);
        // With α = 1 the uncertainty term also scales by β.
        assert!((h3_5 - (5.0 * b.h2 + 5.0 * (h3_1 - b.h2))).abs() < 1e-9);
        // With α = 1/2 the uncertainty term scales sublinearly.
        let (_, _, h3_sqrt) = b.scaled_constants(&c, &p, &k, 4.0, 0.5, 0.5);
        let (_, _, h3_lin) = b.scaled_constants(&c, &p, &k, 4.0, 1.0, 0.5);
        assert!(h3_sqrt < h3_lin);
    }

    #[test]
    fn explicit_sdt_max_feeds_h1() {
        let (c, mut p, k) = base();
        let loose = TheoremBounds::compute(&c, &p, &k);
        p.sdt_max = Some(Energy::from_mwh(0.1));
        let tight = TheoremBounds::compute(&c, &p, &k);
        assert!(tight.h1 < loose.h1);
    }
}
