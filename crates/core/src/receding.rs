use dpss_sim::{
    Controller, ControllerState, FrameDecision, FrameDirective, FrameObservation, SimError,
    SimParams, SlotDecision, SlotObservation, SystemView,
};
use dpss_units::Energy;
use serde::{Deserialize, Serialize};

use crate::frame_lp::{self, FrameLpInputs};
use crate::CoreError;

/// A receding-horizon (model-predictive) controller — the
/// forecast-driven alternative the paper positions SmartDPSS against
/// (§VII discusses T-step-lookahead designs; extension, not in the
/// paper's evaluation).
///
/// At every coarse-frame start it solves the same per-frame LP as
/// [`OfflineOptimal`](crate::OfflineOptimal), but fed with *forecasts*
/// instead of the truth: the demand/renewable fields of the frame
/// observation (whose quality is governed by the engine's
/// [`ForecastPolicy`](dpss_sim::ForecastPolicy)) extended flat across the
/// frame, the observed long-term price, and a real-time price proxy
/// `p_lt · rt_markup`. Within the frame it replays the plan; the plant's
/// feasibility guard covers forecast misses.
///
/// Comparing this controller under `PrevFrameAverage`, `NoisyOracle` and
/// `Oracle` forecasts against SmartDPSS quantifies exactly how much of
/// MPC's advantage depends on forecast quality — the trade the paper's
/// statistics-free design avoids.
///
/// # Examples
///
/// ```
/// use dpss_core::RecedingHorizon;
/// use dpss_sim::{Engine, ForecastPolicy, SimParams};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let truth = dpss_traces::paper_month_traces(3)?;
/// let params = SimParams::icdcs13();
/// let engine = Engine::new(params, truth)?
///     .with_forecast(ForecastPolicy::Oracle)?;
/// let mut mpc = RecedingHorizon::new(params)?;
/// let report = engine.run(&mut mpc)?;
/// assert_eq!(report.availability_violations, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RecedingHorizon {
    params: SimParams,
    /// Real-time price proxy as a multiple of the observed `p_lt`.
    rt_markup: f64,
    /// Service deadline passed to the frame LP (`None` → frame length).
    deadline_slots: Option<usize>,
    plan_grt: Vec<f64>,
    plan_sdt: Vec<f64>,
    /// Workspace shared by the per-frame LPs (see
    /// [`LpWorkspace`](dpss_lp::LpWorkspace)): always reuses the tableau
    /// buffers; reuses the previous frame's basis only when
    /// [`with_warm_start`](Self::with_warm_start) enabled it.
    workspace: dpss_lp::LpWorkspace,
    warm_start: bool,
    /// Fleet dispatch directive for the coming frame, if a coordinated
    /// [`MultiSiteEngine`](dpss_sim::MultiSiteEngine) run delivered one.
    directive: Option<FrameDirective>,
}

impl RecedingHorizon {
    /// Creates the controller with the default real-time price proxy
    /// (1.35× the long-term price, the trace model's mean markup).
    ///
    /// # Errors
    ///
    /// Propagates parameter validation.
    pub fn new(params: SimParams) -> Result<Self, CoreError> {
        Self::with_options(params, 1.35, None)
    }

    /// Creates the controller with an explicit price proxy and deadline.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for a non-finite/sub-1 markup or a
    /// zero deadline; propagates parameter validation.
    pub fn with_options(
        params: SimParams,
        rt_markup: f64,
        deadline_slots: Option<usize>,
    ) -> Result<Self, CoreError> {
        params.validate()?;
        if !(rt_markup.is_finite() && rt_markup >= 1.0) {
            return Err(CoreError::InvalidConfig {
                what: "rt_markup",
                requirement: "must be finite and at least 1",
            });
        }
        if deadline_slots == Some(0) {
            return Err(CoreError::InvalidConfig {
                what: "deadline_slots",
                requirement: "must be at least 1 when set",
            });
        }
        Ok(RecedingHorizon {
            params,
            rt_markup,
            deadline_slots,
            plan_grt: Vec::new(),
            plan_sdt: Vec::new(),
            workspace: dpss_lp::LpWorkspace::new(),
            warm_start: false,
            directive: None,
        })
    }

    /// Enables (or disables) warm-starting consecutive frame LPs from
    /// the previous frame's optimal basis.
    ///
    /// Off by default for the same reason as
    /// [`OfflineConfig::warm_start`](crate::OfflineConfig): a warm solve
    /// reaches the same optimal *objective* but, on degenerate frames,
    /// possibly a different optimal *vertex*, which perturbs the
    /// realized plan relative to the cold path. Turn it on when
    /// replanning throughput matters more than bit-stability.
    #[must_use]
    pub fn with_warm_start(mut self, warm_start: bool) -> Self {
        self.warm_start = warm_start;
        self
    }
}

/// The checkpointable internals of [`RecedingHorizon`], carried as the
/// [`ControllerState`] payload (JSON). The warm-start basis rides along
/// so a resumed warm-started controller re-solves from the same vertex
/// the uninterrupted run would have — on degenerate frames a cold
/// re-solve can land on a *different* optimal vertex and fork the plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct RecedingPayload {
    plan_grt: Vec<f64>,
    plan_sdt: Vec<f64>,
    directive: Option<FrameDirective>,
    basis: dpss_lp::BasisSnapshot,
}

impl Controller for RecedingHorizon {
    fn name(&self) -> &str {
        "receding-horizon"
    }

    fn save_state(&self) -> ControllerState {
        let payload = RecedingPayload {
            plan_grt: self.plan_grt.clone(),
            plan_sdt: self.plan_sdt.clone(),
            directive: self.directive,
            basis: self.workspace.export_basis(),
        };
        ControllerState {
            payload: serde_json::to_string(&payload).ok(),
            ..ControllerState::empty()
        }
    }

    fn load_state(&mut self, state: &ControllerState) -> Result<(), SimError> {
        let Some(json) = &state.payload else {
            return Err(SimError::InvalidState {
                what: "receding-horizon state must carry a payload",
            });
        };
        let payload: RecedingPayload =
            serde_json::from_str(json).map_err(|_| SimError::InvalidState {
                what: "receding-horizon payload is not a valid state record",
            })?;
        if payload
            .plan_grt
            .iter()
            .chain(&payload.plan_sdt)
            .any(|x| !x.is_finite())
        {
            return Err(SimError::InvalidState {
                what: "receding-horizon plan values must be finite",
            });
        }
        self.workspace
            .import_basis(&payload.basis)
            .map_err(|_| SimError::InvalidState {
                what: "receding-horizon warm-start basis failed validation",
            })?;
        self.plan_grt = payload.plan_grt;
        self.plan_sdt = payload.plan_sdt;
        self.directive = payload.directive;
        Ok(())
    }

    fn receive_directive(&mut self, directive: &FrameDirective) {
        self.directive = Some(*directive);
    }

    fn plan_frame(&mut self, obs: &FrameObservation, view: &SystemView) -> FrameDecision {
        let t = obs.slots_in_frame;
        // Flat forecast: the frame observation extended across the frame.
        let d_ds = vec![obs.demand_ds.mwh().max(0.0); t];
        let d_dt = vec![obs.demand_dt.mwh().max(0.0); t];
        let renewable = vec![obs.renewable.mwh().max(0.0); t];
        let p_lt = obs.price_lt.dollars_per_mwh();
        let p_rt = vec![p_lt * self.rt_markup; t];
        let deadline = Some(self.deadline_slots.unwrap_or(t));
        if !self.warm_start {
            self.workspace.clear_basis();
        }
        let inputs = FrameLpInputs {
            params: &self.params,
            t,
            slot_cap: self.params.grid_slot_cap(obs.slot_hours).mwh(),
            p_lt,
            p_rt: &p_rt,
            d_ds: &d_ds,
            d_dt: &d_dt,
            renewable: &renewable,
            b0: view.battery_level.mwh(),
            q0: view.queue_backlog.mwh(),
            deadline,
            allow_rt: true,
            max_pivots: None,
        };
        let solved = frame_lp::solve(&inputs, &mut self.workspace).or_else(|_| {
            frame_lp::solve(
                &FrameLpInputs {
                    deadline: None,
                    ..inputs.clone()
                },
                &mut self.workspace,
            )
        });
        // Buy-to-export: a coordinated fleet directive tops the hedge off
        // with energy destined for a neighbour (re-checked against the
        // actual quoted p_lt by `economic_top_off`; the engine clamps
        // the sum to the *grid* frame cap `T·Pgrid·Δh`).
        let top_off = self.directive.map_or(Energy::ZERO, |d| {
            d.economic_top_off(obs.frame, obs.price_lt, self.params.waste_price)
        });
        match solved {
            Ok(plan) => {
                let total = plan.g_slot * t as f64;
                self.plan_grt = plan.grt;
                self.plan_sdt = plan.sdt;
                FrameDecision {
                    purchase_lt: Energy::from_mwh(total.max(0.0)) + top_off,
                }
            }
            Err(_) => {
                self.plan_grt = vec![0.0; t];
                self.plan_sdt = vec![0.0; t];
                FrameDecision {
                    purchase_lt: top_off,
                }
            }
        }
    }

    fn plan_slot(&mut self, obs: &SlotObservation, view: &SystemView) -> SlotDecision {
        let i = obs.slot.offset;
        // Planned purchase, corrected in real time for the *observed*
        // forecast miss on this slot's delay-sensitive demand.
        let planned = self.plan_grt.get(i).copied().unwrap_or(0.0);
        let planned_supply = view.lt_allocation.mwh() + planned + obs.renewable.mwh();
        let miss = (obs.demand_ds.mwh() - planned_supply).max(0.0);
        let target = self.plan_sdt.get(i).copied().unwrap_or(0.0);
        let backlog = view.queue_backlog.mwh();
        let serve_fraction = if backlog > 1e-12 {
            (target / backlog).clamp(0.0, 1.0)
        } else {
            0.0
        };
        SlotDecision {
            purchase_rt: Energy::from_mwh((planned + miss).max(0.0)).min(view.rt_purchase_cap),
            serve_fraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpss_sim::{Engine, ForecastPolicy};
    use dpss_traces::Scenario;
    use dpss_units::SlotClock;

    fn world(seed: u64) -> (Engine, SimParams) {
        let clock = SlotClock::new(6, 24, 1.0).unwrap();
        let truth = Scenario::icdcs13().generate(&clock, seed).unwrap();
        let params = SimParams::icdcs13();
        (Engine::new(params, truth).unwrap(), params)
    }

    #[test]
    fn validation() {
        let params = SimParams::icdcs13();
        assert!(RecedingHorizon::with_options(params, 0.5, None).is_err());
        assert!(RecedingHorizon::with_options(params, f64::NAN, None).is_err());
        assert!(RecedingHorizon::with_options(params, 1.2, Some(0)).is_err());
        assert!(RecedingHorizon::new(params).is_ok());
    }

    #[test]
    fn keeps_the_lights_on_with_causal_forecasts() {
        let (engine, params) = world(11);
        let mut mpc = RecedingHorizon::new(params).unwrap();
        let r = engine.run(&mut mpc).unwrap();
        assert_eq!(r.availability_violations, 0);
        assert_eq!(r.unserved_ds, Energy::ZERO);
        assert!(r.energy_lt.mwh() > 0.0, "MPC must hedge long-term");
    }

    #[test]
    fn better_forecasts_do_not_hurt() {
        let (engine, params) = world(12);
        let causal = engine
            .run(&mut RecedingHorizon::new(params).unwrap())
            .unwrap();
        let oracle_engine = engine
            .clone()
            .with_forecast(ForecastPolicy::Oracle)
            .unwrap();
        let oracle = oracle_engine
            .run(&mut RecedingHorizon::new(params).unwrap())
            .unwrap();
        // A perfect frame forecast should be at least roughly as good
        // (small tolerance: the flat-profile approximation still bites).
        assert!(
            oracle.total_cost().dollars() <= causal.total_cost().dollars() * 1.05,
            "oracle {} vs causal {}",
            oracle.total_cost(),
            causal.total_cost()
        );
    }

    #[test]
    fn warm_replanning_matches_cold_cost_quality() {
        let (engine, params) = world(14);
        let cold = engine
            .run(&mut RecedingHorizon::new(params).unwrap())
            .unwrap();
        let warm = engine
            .run(&mut RecedingHorizon::new(params).unwrap().with_warm_start(true))
            .unwrap();
        let c = cold.total_cost().dollars();
        let w = warm.total_cost().dollars();
        assert!(
            ((c - w) / c).abs() < 1e-3,
            "cold {c} vs warm {w}: alternate optima must stay equivalent"
        );
        assert_eq!(warm.availability_violations, 0);
    }

    #[test]
    fn save_load_state_resumes_byte_identically_with_warm_starts() {
        // Warm starts make the basis load-bearing: on degenerate frames a
        // cold re-solve after restore could pick a different optimal
        // vertex. Byte-identical resume therefore proves the basis
        // snapshot round-trips faithfully.
        let (engine, params) = world(42);
        let fresh = || RecedingHorizon::new(params).unwrap().with_warm_start(true);
        let full = engine.run(&mut fresh()).unwrap();

        let mut ctl = fresh();
        let mut run = engine.begin().unwrap();
        for _ in 0..3 {
            run.step_frame(&mut ctl).unwrap();
        }
        let engine_state = run.state();
        let ctl_state = ctl.save_state();

        let mut restored = fresh();
        restored.load_state(&ctl_state).unwrap();
        let mut resumed = engine.resume(engine_state).unwrap();
        while !resumed.is_done() {
            resumed.step_frame(&mut restored).unwrap();
        }
        assert_eq!(resumed.finish().unwrap(), full);
    }

    #[test]
    fn load_state_rejects_missing_or_bad_payload() {
        let params = SimParams::icdcs13();
        let mut ctl = RecedingHorizon::new(params).unwrap();
        assert!(ctl.load_state(&dpss_sim::ControllerState::empty()).is_err());
        let bad = dpss_sim::ControllerState {
            payload: Some("{".to_owned()),
            ..dpss_sim::ControllerState::empty()
        };
        assert!(ctl.load_state(&bad).is_err());
    }

    #[test]
    fn beats_impatient_with_honest_forecasts() {
        let (engine, params) = world(13);
        let mpc = engine
            .run(&mut RecedingHorizon::new(params).unwrap())
            .unwrap();
        let imp = engine.run(&mut crate::Impatient::two_markets()).unwrap();
        assert!(
            mpc.total_cost() < imp.total_cost(),
            "mpc {} vs impatient {}",
            mpc.total_cost(),
            imp.total_cost()
        );
    }
}
