//! The real-time balancing subproblem **P5** (Algorithm 1, step 2).
//!
//! Decision variables per fine slot: the real-time purchase
//! `g_rt ∈ [0, g_cap]` and the backlog service `s_dt = γ·Q ∈ [0, y_cap]`.
//! The battery flows follow from the balance (Eq. (4)): with
//! `net = base + g_rt − s_dt` (where `base = g_bef/T + r − d_ds`),
//!
//! * `net ≥ 0` → `brc = min(net, headroom)`, waste `W = net − brc`;
//! * `net < 0` → `bdc = −net`, feasible only while `bdc ≤ available`.
//!
//! Both supported objectives (see [`P5Objective`](crate::P5Objective)) are
//! *piecewise linear* in `(g_rt, s_dt)` over the feasible box, with all
//! kink lines of the form `g_rt − s_dt = const` (the `net = 0`,
//! charge-saturation and discharge-limit lines) plus an upward fixed-cost
//! jump `V·Cb` whenever the battery operates. A linear function on each
//! closed region attains its minimum at a region vertex, and the fixed
//! cost only jumps *up* away from the `net = 0` boundary, so enumerating
//! box corners and kink-line/edge intersections — evaluated exactly — is
//! an exact solver. A `dpss-lp` route (three per-battery-mode LPs) is
//! provided for cross-validation.

use dpss_lp::{Problem, Relation, Sense};

use crate::{CoreError, P5Objective};

const TOL: f64 = 1e-9;

/// Inputs to P5 (raw MWh / scalar values).
#[derive(Debug, Clone, Copy)]
pub(crate) struct P5Inputs {
    /// `g_bef(t)/T + r(τ) − d_ds(τ)`.
    pub base: f64,
    /// Real-time purchase cap (interconnect and `Smax` already applied).
    pub g_cap: f64,
    /// Service cap `min(Q, Sdtmax)`.
    pub y_cap: f64,
    /// Battery charge headroom this slot.
    pub headroom: f64,
    /// Battery discharge availability this slot.
    pub available: f64,
    /// Queue backlogs and availability queue: `Q(t)`, `Y(t)`, `X(t)`.
    pub q: f64,
    /// Delay-aware virtual queue `Y(t)`.
    pub y_queue: f64,
    /// Availability queue `X(t) = b − Umax − Bmin − Bdmax·ηd`.
    pub x: f64,
    /// Cost–delay parameter `V`.
    pub v: f64,
    /// Real-time price `p_rt(τ)`.
    pub p_rt: f64,
    /// Battery wear cost `Cb` (dollars per operating slot).
    pub cb: f64,
    /// Waste penalty price (dollars/MWh).
    pub w_pen: f64,
    /// Charge efficiency `ηc`.
    pub eta_c: f64,
    /// Discharge drain `ηd`.
    pub eta_d: f64,
    /// Objective interpretation.
    pub objective: P5Objective,
}

/// An exact minimizer of P5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct P5Solution {
    pub g_rt: f64,
    pub s_dt: f64,
    pub objective: f64,
}

/// Battery flows implied by a candidate `(g_rt, s_dt)`.
fn flows(inp: &P5Inputs, g: f64, y: f64) -> Option<(f64, f64, f64)> {
    let net = inp.base + g - y;
    if net >= 0.0 {
        let brc = net.min(inp.headroom);
        Some((brc, 0.0, net - brc))
    } else {
        let bdc = -net;
        if bdc > inp.available + 1e-7 {
            None // would violate the discharge limit → infeasible
        } else {
            Some((0.0, bdc.min(inp.available), 0.0))
        }
    }
}

/// Evaluates the configured objective at a candidate point.
fn evaluate(inp: &P5Inputs, g: f64, y: f64) -> Option<f64> {
    let (brc, bdc, waste) = flows(inp, g, y)?;
    let n = if brc > TOL || bdc > TOL { 1.0 } else { 0.0 };
    let obj = match inp.objective {
        P5Objective::Derived => {
            inp.v * (inp.p_rt * g + inp.cb * n + inp.w_pen * waste) - (inp.q + inp.y_queue) * y
                + inp.x * (inp.eta_c * brc - inp.eta_d * bdc)
        }
        P5Objective::PaperLiteral => {
            let gamma_term = if inp.q > TOL {
                (y / inp.q) * (inp.q * inp.q - inp.q * inp.y_queue)
            } else {
                0.0
            };
            g * (inp.v * inp.p_rt - inp.q - inp.y_queue)
                + gamma_term
                + inp.v * inp.cb * n
                + inp.v * waste
                + (inp.q + inp.x + inp.y_queue) * (brc - bdc)
        }
    };
    Some(obj)
}

/// Exact candidate-vertex solver (see module docs for the argument).
pub(crate) fn solve_closed_form(inp: &P5Inputs) -> P5Solution {
    let g_cap = inp.g_cap.max(0.0);
    let y_cap = inp.y_cap.max(0.0);

    let mut candidates: Vec<(f64, f64)> =
        vec![(0.0, 0.0), (g_cap, 0.0), (0.0, y_cap), (g_cap, y_cap)];
    // Kink lines g − y = c: net = 0, charge saturation, discharge limit.
    let cs = [
        -inp.base,
        inp.headroom - inp.base,
        -inp.available - inp.base,
    ];
    for c in cs {
        // Intersections with the four box edges.
        let pts = [(c, 0.0), (c + y_cap, y_cap), (0.0, -c), (g_cap, g_cap - c)];
        for (g, y) in pts {
            if (-TOL..=g_cap + TOL).contains(&g) && (-TOL..=y_cap + TOL).contains(&y) {
                candidates.push((g.clamp(0.0, g_cap), y.clamp(0.0, y_cap)));
            }
        }
    }

    let mut best: Option<P5Solution> = None;
    for (g, y) in candidates {
        let Some(obj) = evaluate(inp, g, y) else {
            continue;
        };
        let better = match &best {
            None => true,
            Some(b) => {
                obj < b.objective - TOL
                    || ((obj - b.objective).abs() <= TOL
                        && (g < b.g_rt - TOL || ((g - b.g_rt).abs() <= TOL && y > b.s_dt + TOL)))
            }
        };
        if better {
            best = Some(P5Solution {
                g_rt: g,
                s_dt: y,
                objective: obj,
            });
        }
    }
    // All candidates infeasible: the slot cannot cover d_ds even with the
    // battery — buy everything the market allows and let the plant's guard
    // handle the remainder.
    best.unwrap_or(P5Solution {
        g_rt: g_cap,
        s_dt: 0.0,
        objective: f64::INFINITY,
    })
}

/// LP-backed minimizer: solves one LP per battery mode (charge with wear,
/// discharge with wear, idle) and takes the best. Only supports the
/// [`P5Objective::Derived`] objective (the paper-literal γ-term is handled
/// identically since it is also linear in `s_dt`).
pub(crate) fn solve_lp(inp: &P5Inputs) -> Result<P5Solution, CoreError> {
    let g_cap = inp.g_cap.max(0.0);
    let y_cap = inp.y_cap.max(0.0);

    // Linear coefficients of g and y for the configured objective.
    let (cg, cy) = match inp.objective {
        P5Objective::Derived => (inp.v * inp.p_rt, -(inp.q + inp.y_queue)),
        P5Objective::PaperLiteral => (
            inp.v * inp.p_rt - inp.q - inp.y_queue,
            if inp.q > TOL {
                inp.q - inp.y_queue
            } else {
                0.0
            },
        ),
    };
    // Coefficients of brc/bdc/waste per objective.
    let (c_brc, c_bdc, c_w, fixed_chg, fixed_dis) = match inp.objective {
        P5Objective::Derived => (
            inp.x * inp.eta_c,
            -inp.x * inp.eta_d,
            inp.v * inp.w_pen,
            inp.v * inp.cb,
            inp.v * inp.cb,
        ),
        P5Objective::PaperLiteral => (
            inp.q + inp.x + inp.y_queue,
            -(inp.q + inp.x + inp.y_queue),
            inp.v,
            inp.v * inp.cb,
            inp.v * inp.cb,
        ),
    };

    let mut best: Option<P5Solution> = None;
    let mut consider = |sol: Option<(f64, f64, f64)>| {
        if let Some((obj, g, y)) = sol {
            if best.as_ref().is_none_or(|b| obj < b.objective - 1e-12) {
                best = Some(P5Solution {
                    g_rt: g,
                    s_dt: y,
                    objective: obj,
                });
            }
        }
    };

    // The plant *always* charges surplus up to headroom before wasting, so
    // the LP modes must pin the battery flows the same way the closed form
    // does (DESIGN.md §3), not let them float.
    //
    // Mode: idle (no battery op). Only reachable with net = 0 when the
    // battery has headroom; with zero headroom all surplus becomes waste.
    {
        let mut p = Problem::new(Sense::Minimize);
        let g = p.add_var("g", 0.0, g_cap, cg)?;
        let y = p.add_var("y", 0.0, y_cap, cy)?;
        if inp.headroom > TOL {
            p.add_constraint(&[(g, 1.0), (y, -1.0)], Relation::Eq, -inp.base)?;
            if let Ok(sol) = p.solve() {
                consider(Some((sol.objective(), sol.value(g), sol.value(y))));
            }
        } else {
            let w = p.add_var("w", 0.0, f64::INFINITY, c_w)?;
            p.add_constraint(&[(g, 1.0), (y, -1.0), (w, -1.0)], Relation::Eq, -inp.base)?;
            if let Ok(sol) = p.solve() {
                consider(Some((sol.objective(), sol.value(g), sol.value(y))));
            }
        }
    }
    // Mode: charging below saturation — brc = net ∈ [0, headroom], w = 0.
    if inp.headroom > TOL {
        let mut p = Problem::new(Sense::Minimize);
        let g = p.add_var("g", 0.0, g_cap, cg)?;
        let y = p.add_var("y", 0.0, y_cap, cy)?;
        let brc = p.add_var("brc", 0.0, inp.headroom, c_brc)?;
        p.add_constraint(&[(g, 1.0), (y, -1.0), (brc, -1.0)], Relation::Eq, -inp.base)?;
        if let Ok(sol) = p.solve() {
            let op = if sol.value(brc) > TOL { fixed_chg } else { 0.0 };
            consider(Some((sol.objective() + op, sol.value(g), sol.value(y))));
        }
    }
    // Mode: charging saturated — brc = headroom pinned, w = net − headroom.
    if inp.headroom > TOL {
        let mut p = Problem::new(Sense::Minimize);
        let g = p.add_var("g", 0.0, g_cap, cg)?;
        let y = p.add_var("y", 0.0, y_cap, cy)?;
        let w = p.add_var("w", 0.0, f64::INFINITY, c_w)?;
        p.add_constraint(
            &[(g, 1.0), (y, -1.0), (w, -1.0)],
            Relation::Eq,
            inp.headroom - inp.base,
        )?;
        if let Ok(sol) = p.solve() {
            let op = fixed_chg + c_brc * inp.headroom;
            consider(Some((sol.objective() + op, sol.value(g), sol.value(y))));
        }
    }
    // Mode: discharge. y − g − base = bdc ∈ (0, available].
    if inp.available > TOL {
        let mut p = Problem::new(Sense::Minimize);
        let g = p.add_var("g", 0.0, g_cap, cg)?;
        let y = p.add_var("y", 0.0, y_cap, cy)?;
        let bdc = p.add_var("bdc", 0.0, inp.available, c_bdc)?;
        p.add_constraint(&[(y, 1.0), (g, -1.0), (bdc, -1.0)], Relation::Eq, inp.base)?;
        if let Ok(sol) = p.solve() {
            let op = if sol.value(bdc) > TOL { fixed_dis } else { 0.0 };
            consider(Some((sol.objective() + op, sol.value(g), sol.value(y))));
        }
    }

    Ok(best.unwrap_or(P5Solution {
        g_rt: g_cap,
        s_dt: 0.0,
        objective: f64::INFINITY,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> P5Inputs {
        P5Inputs {
            base: 0.0,
            g_cap: 2.0,
            y_cap: 1.0,
            headroom: 0.5,
            available: 0.3,
            q: 1.0,
            y_queue: 1.0,
            x: -5.0,
            v: 1.0,
            p_rt: 50.0,
            cb: 0.1,
            w_pen: 1.0,
            eta_c: 0.8,
            eta_d: 1.25,
            objective: P5Objective::Derived,
        }
    }

    #[test]
    fn flows_match_plant_semantics() {
        let inp = inputs();
        // Surplus charges then wastes.
        let (brc, bdc, w) = flows(&inp, 1.0, 0.2).unwrap(); // net 0.8
        assert!((brc - 0.5).abs() < 1e-12);
        assert_eq!(bdc, 0.0);
        assert!((w - 0.3).abs() < 1e-12);
        // Deficit within the battery's reach discharges.
        let (brc, bdc, w) = flows(&inp, 0.0, 0.25).unwrap(); // net −0.25
        assert_eq!(brc, 0.0);
        assert!((bdc - 0.25).abs() < 1e-12);
        assert_eq!(w, 0.0);
        // Deficit beyond the battery is infeasible.
        assert!(flows(&inp, 0.0, 0.9).is_none());
    }

    #[test]
    fn expensive_rt_price_means_no_speculative_buying() {
        // Queue weights are small relative to V·p_rt: don't buy for the
        // queue; serve only what surplus/battery justify.
        let sol = solve_closed_form(&inputs());
        assert!(sol.g_rt < 1e-9, "bought {}", sol.g_rt);
    }

    #[test]
    fn huge_queue_weight_triggers_buying() {
        let mut inp = inputs();
        inp.q = 40.0;
        inp.y_queue = 30.0; // Q + Y = 70 > V·p_rt = 50
        let sol = solve_closed_form(&inp);
        assert!(sol.g_rt > 0.0, "should buy for the backlog");
        assert!(sol.s_dt > 0.0, "and serve it");
    }

    #[test]
    fn negative_x_rewards_charging_surplus() {
        let mut inp = inputs();
        inp.base = 0.6; // renewable surplus
        inp.q = 0.0;
        inp.y_queue = 0.0;
        inp.y_cap = 0.0;
        let sol = solve_closed_form(&inp);
        // With X very negative, charging beats wasting: candidate net =
        // headroom line or corner; surplus (0.6) exceeds headroom (0.5) →
        // charge 0.5, waste 0.1, buy nothing.
        assert!(sol.g_rt < 1e-9);
        let (brc, _, w) = flows(&inp, sol.g_rt, sol.s_dt).unwrap();
        assert!((brc - 0.5).abs() < 1e-9);
        assert!((w - 0.1).abs() < 1e-9);
    }

    #[test]
    fn positive_x_prefers_discharging_to_serve_backlog() {
        let mut inp = inputs();
        inp.x = 3.0; // battery above the safety shift: discharging rewarded
        inp.q = 2.0;
        inp.y_queue = 1.0;
        inp.y_cap = 0.3;
        inp.available = 0.3;
        let sol = solve_closed_form(&inp);
        assert!(sol.s_dt > 0.0, "serves from the battery: {sol:?}");
        assert!(sol.g_rt < 1e-9);
    }

    #[test]
    fn feasibility_minimum_purchase_enforced() {
        let mut inp = inputs();
        inp.base = -1.0; // d_ds exceeds allocation+renewables by 1
        inp.available = 0.3;
        inp.y_cap = 0.0;
        inp.q = 0.0;
        inp.y_queue = 0.0;
        let sol = solve_closed_form(&inp);
        // Must buy at least 0.7 to stay feasible with max discharge.
        assert!(sol.g_rt >= 0.7 - 1e-9, "bought {}", sol.g_rt);
    }

    #[test]
    fn infeasible_slot_falls_back_to_max_purchase() {
        let mut inp = inputs();
        inp.base = -5.0;
        inp.g_cap = 2.0;
        inp.available = 0.3; // even max purchase + battery cannot cover
        let sol = solve_closed_form(&inp);
        assert_eq!(sol.g_rt, 2.0);
        assert_eq!(sol.s_dt, 0.0);
        assert!(sol.objective.is_infinite());
    }

    #[test]
    fn lp_agrees_with_closed_form_on_grid() {
        // Sweep a grid of parameter combinations; the LP mode decomposition
        // and the vertex enumeration must agree on the objective value.
        let mut count = 0;
        for &base in &[-0.8, -0.2, 0.0, 0.4, 1.2] {
            for &qv in &[0.0, 1.0, 6.0, 60.0] {
                for &x in &[-6.0, -1.0, 0.5, 4.0] {
                    for &obj in &[P5Objective::Derived, P5Objective::PaperLiteral] {
                        let mut inp = inputs();
                        inp.base = base;
                        inp.q = qv;
                        inp.y_queue = qv * 0.8;
                        inp.y_cap = qv.min(1.5);
                        inp.x = x;
                        inp.objective = obj;
                        let cf = solve_closed_form(&inp);
                        let lp = solve_lp(&inp).unwrap();
                        if cf.objective.is_infinite() {
                            assert!(lp.objective.is_infinite(), "{inp:?}");
                            continue;
                        }
                        assert!(
                            (cf.objective - lp.objective).abs() < 1e-6,
                            "{inp:?}\ncf {cf:?}\nlp {lp:?}"
                        );
                        count += 1;
                    }
                }
            }
        }
        assert!(count > 100, "swept {count} feasible cases");
    }

    #[test]
    fn closed_form_beats_dense_grid_scan() {
        // Brute-force check on a dense grid: no grid point may beat the
        // vertex solution.
        for &base in &[-0.5, 0.0, 0.7] {
            for &x in &[-4.0, 2.0] {
                let mut inp = inputs();
                inp.base = base;
                inp.x = x;
                inp.q = 3.0;
                inp.y_queue = 2.0;
                inp.y_cap = 1.0;
                let best = solve_closed_form(&inp);
                for i in 0..=60 {
                    for j in 0..=60 {
                        let g = inp.g_cap * i as f64 / 60.0;
                        let y = inp.y_cap * j as f64 / 60.0;
                        if let Some(obj) = evaluate(&inp, g, y) {
                            assert!(
                                best.objective <= obj + 1e-7,
                                "grid point ({g},{y}) = {obj} beats {best:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn zero_caps_degenerate_cleanly() {
        let mut inp = inputs();
        inp.g_cap = 0.0;
        inp.y_cap = 0.0;
        let sol = solve_closed_form(&inp);
        assert_eq!(sol.g_rt, 0.0);
        assert_eq!(sol.s_dt, 0.0);
        assert!(sol.objective.is_finite());
    }
}
