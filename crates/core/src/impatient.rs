use dpss_sim::{
    Controller, FrameDecision, FrameObservation, SlotDecision, SlotObservation, SystemView,
};
use dpss_units::Energy;

use crate::MarketMode;

/// The paper's §VI-A baseline: "always schedules workloads immediately
/// regardless of the changes of electricity prices and renewable
/// production".
///
/// Impatient gets the same market access as SmartDPSS but never defers:
/// every slot it buys whatever is needed to serve the delay-sensitive
/// demand *and* the entire backlog right now (`γ = 1`), ignoring prices.
/// In the two-markets mode it also covers its projected baseline from the
/// long-term market (a naive operator's hedge); in real-time-only mode it
/// buys everything on the spot market.
///
/// # Examples
///
/// ```
/// use dpss_core::Impatient;
/// use dpss_sim::{Engine, SimParams};
/// use dpss_traces::paper_month_traces;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let engine = Engine::new(SimParams::icdcs13(), paper_month_traces(1)?)?;
/// let report = engine.run(&mut Impatient::two_markets())?;
/// // The backlog never outlives the next slot.
/// assert!(report.average_delay_slots <= 1.0 + 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Impatient {
    market: MarketMode,
}

impl Impatient {
    /// Impatient with access to both grid markets.
    #[must_use]
    pub fn two_markets() -> Self {
        Impatient {
            market: MarketMode::TwoMarkets,
        }
    }

    /// Impatient restricted to the real-time market.
    #[must_use]
    pub fn real_time_only() -> Self {
        Impatient {
            market: MarketMode::RealTimeOnly,
        }
    }

    /// The market mode in force.
    #[must_use]
    pub fn market(&self) -> MarketMode {
        self.market
    }
}

impl Default for Impatient {
    fn default() -> Self {
        Impatient::two_markets()
    }
}

impl Controller for Impatient {
    fn name(&self) -> &str {
        "impatient"
    }

    fn plan_frame(&mut self, obs: &FrameObservation, _view: &SystemView) -> FrameDecision {
        match self.market {
            MarketMode::RealTimeOnly => FrameDecision {
                purchase_lt: Energy::ZERO,
            },
            MarketMode::TwoMarkets => {
                // Naive hedge: cover the observed per-slot net demand for
                // the whole frame.
                let per_slot = (obs.demand_ds + obs.demand_dt - obs.renewable).positive_part();
                FrameDecision {
                    purchase_lt: per_slot * obs.slots_in_frame as f64,
                }
            }
        }
    }

    fn plan_slot(&mut self, obs: &SlotObservation, view: &SystemView) -> SlotDecision {
        // Serve everything now: delay-sensitive demand plus the entire
        // backlog, topping up whatever the allocation and renewables miss.
        let need = obs.demand_ds + view.queue_backlog;
        let shortfall = (need - view.lt_allocation - obs.renewable).positive_part();
        SlotDecision {
            purchase_rt: shortfall.min(view.rt_purchase_cap),
            serve_fraction: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpss_sim::{Engine, SimParams};
    use dpss_traces::Scenario;
    use dpss_units::SlotClock;

    fn run(mut ctl: Impatient, seed: u64) -> dpss_sim::RunReport {
        let clock = SlotClock::new(4, 24, 1.0).unwrap();
        let traces = Scenario::icdcs13().generate(&clock, seed).unwrap();
        let engine = Engine::new(SimParams::icdcs13(), traces).unwrap();
        engine.run(&mut ctl).unwrap()
    }

    #[test]
    fn serves_everything_immediately() {
        let r = run(Impatient::two_markets(), 1);
        assert_eq!(r.unserved_ds, Energy::ZERO);
        // Delay is exactly one slot (queue semantics serve pre-arrival
        // backlog), never more.
        assert!(r.average_delay_slots <= 1.0 + 1e-9);
        assert!(r.max_delay_slots <= 2, "max delay {}", r.max_delay_slots);
        assert!(r.final_backlog.mwh() < 1.0);
    }

    #[test]
    fn real_time_only_never_buys_ahead() {
        let r = run(Impatient::real_time_only(), 2);
        assert_eq!(r.energy_lt, Energy::ZERO);
        assert!(r.energy_rt.mwh() > 0.0);
        assert_eq!(
            Impatient::real_time_only().market(),
            MarketMode::RealTimeOnly
        );
    }

    #[test]
    fn two_markets_buys_ahead() {
        let r = run(Impatient::two_markets(), 3);
        assert!(r.energy_lt.mwh() > 0.0);
        assert_eq!(Impatient::default().market(), MarketMode::TwoMarkets);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(Impatient::two_markets().name(), "impatient");
    }
}
