//! The long-term-ahead purchasing subproblem **P4** (Algorithm 1, step 1):
//!
//! ```text
//! min  g_bef(t) · [ V·p_lt(t) − Q(t) − Y(t) ]
//! s.t. g_bef(t)/T + r(t) + avail(b(t)) ≥ d_ds(t)
//!      0 ≤ g_bef(t)/T ≤ Pgrid·Δh
//! ```
//!
//! A one-variable LP with a trivial closed form: buy the feasibility
//! minimum when the weight is positive, buy up to the cap when it is
//! negative. Both an exact closed-form solver and a `dpss-lp` simplex
//! route are provided; tests assert they agree.

use dpss_lp::{Problem, Relation, Sense};

use crate::CoreError;

/// Inputs to P4, all in MWh / raw scalars (see module docs).
#[derive(Debug, Clone, Copy)]
pub(crate) struct P4Inputs {
    /// Objective weight `V·p_lt − (Q + Y)`.
    pub weight: f64,
    /// Per-slot feasibility requirement `(d_ds − r − avail(b))⁺`.
    pub need_per_slot: f64,
    /// Fine slots per frame `T`.
    pub slots: f64,
    /// Per-slot grid cap `Pgrid·Δh`.
    pub slot_cap: f64,
    /// Optional additional cap on the *total* frame purchase (the
    /// waste-aware P4 variant); `f64::INFINITY` disables it.
    pub total_cap: f64,
}

impl P4Inputs {
    fn g_min(&self) -> f64 {
        (self.need_per_slot.max(0.0) * self.slots).min(self.g_max())
    }

    fn g_max(&self) -> f64 {
        (self.slot_cap * self.slots).min(self.total_cap).max(0.0)
    }
}

/// Exact closed-form minimizer of P4. Returns the total frame purchase
/// `g_bef(t)`.
pub(crate) fn solve_closed_form(inp: &P4Inputs) -> f64 {
    if inp.weight < 0.0 {
        inp.g_max()
    } else {
        // Positive (or zero) weight: buy only what feasibility demands.
        inp.g_min()
    }
}

/// LP-backed minimizer of P4 via the `dpss-lp` simplex (cross-validation
/// path).
pub(crate) fn solve_lp(inp: &P4Inputs) -> Result<f64, CoreError> {
    let mut p = Problem::new(Sense::Minimize);
    let g = p.add_var("g_bef", 0.0, inp.g_max(), inp.weight)?;
    // Demand-cover constraint, expressed on the total purchase.
    p.add_constraint(&[(g, 1.0)], Relation::Ge, inp.g_min())?;
    let sol = p.solve()?;
    Ok(sol.value(g))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(weight: f64, need: f64) -> P4Inputs {
        P4Inputs {
            weight,
            need_per_slot: need,
            slots: 24.0,
            slot_cap: 2.0,
            total_cap: f64::INFINITY,
        }
    }

    #[test]
    fn positive_weight_buys_feasibility_minimum() {
        let inp = inputs(10.0, 0.3);
        assert!((solve_closed_form(&inp) - 7.2).abs() < 1e-12);
        let inp = inputs(10.0, 0.0);
        assert_eq!(solve_closed_form(&inp), 0.0);
        let inp = inputs(10.0, -5.0); // abundant renewables: no need
        assert_eq!(solve_closed_form(&inp), 0.0);
    }

    #[test]
    fn negative_weight_buys_to_the_cap() {
        let inp = inputs(-1.0, 0.3);
        assert!((solve_closed_form(&inp) - 48.0).abs() < 1e-12);
    }

    #[test]
    fn need_clamped_to_interconnect() {
        let inp = inputs(10.0, 5.0); // need above Pgrid
        assert!((solve_closed_form(&inp) - 48.0).abs() < 1e-12);
    }

    #[test]
    fn waste_aware_total_cap_binds() {
        let mut inp = inputs(-1.0, 0.1);
        inp.total_cap = 10.0;
        assert!((solve_closed_form(&inp) - 10.0).abs() < 1e-12);
        // The cap never cuts below the feasibility minimum … g_min is also
        // limited by g_max by construction.
        inp.total_cap = 1.0;
        inp.weight = 10.0;
        assert!((solve_closed_form(&inp) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lp_agrees_with_closed_form() {
        for weight in [-25.0, -1.0, -1e-6, 0.0, 1e-6, 1.0, 40.0] {
            for need in [-1.0, 0.0, 0.17, 1.5, 5.0] {
                for total_cap in [f64::INFINITY, 20.0, 3.0] {
                    let mut inp = inputs(weight, need);
                    inp.total_cap = total_cap;
                    let cf = solve_closed_form(&inp);
                    let lp = solve_lp(&inp).unwrap();
                    // Zero weight admits any feasible g; compare objectives,
                    // not argmins.
                    if weight == 0.0 {
                        assert!((cf * weight - lp * weight).abs() < 1e-9);
                    } else {
                        assert!(
                            (cf - lp).abs() < 1e-7,
                            "weight {weight} need {need} cap {total_cap}: {cf} vs {lp}"
                        );
                    }
                }
            }
        }
    }
}
