// Slot/frame ranges here derive from the validated clock the truth traces
// were constructed against, so `[start..start + t]` windows stay inside
// every series by the TraceSet invariant.
// audit:allow-file(slice-index): slot/frame windows derive from the clock the truth TraceSet was validated against

use dpss_sim::{
    Controller, FrameDecision, FrameObservation, SimParams, SlotDecision, SlotObservation,
    SystemView,
};
use dpss_traces::TraceSet;
use dpss_units::Energy;

use crate::frame_lp::{self, FrameLpInputs};
use crate::CoreError;

/// Configuration of the [`OfflineOptimal`] benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OfflineConfig {
    /// Service deadline `λ` for delay-tolerant demand, in fine slots:
    /// backlog standing at a frame start and arrivals inside the frame
    /// must be served within `λ` slots (worst-case realized delay is
    /// therefore ≈ `2λ` across a frame boundary). `None` uses the frame
    /// length `T`.
    pub deadline_slots: Option<usize>,
    /// Whether the benchmark may also buy real-time energy. Lemma 1 shows
    /// the offline optimum never needs it when `p_rt > p_lt`; keeping it
    /// on preserves feasibility under tight interconnects.
    pub allow_real_time: bool,
    /// Whether consecutive frame LPs may warm-start from the previous
    /// frame's optimal basis (≈2× faster frame planning; see the
    /// `controller_step` bench and `BENCH_sweep.json`).
    ///
    /// **Off by default**: a warm solve reaches a vertex of the *same
    /// optimal objective*, but on degenerate frame LPs (service timing
    /// is cost-free inside a frame) it can be a *different* vertex than
    /// the cold path's, which perturbs the realized delay/battery-ops
    /// columns of the published figure tables. The default keeps the
    /// benchmark bit-reproducible against the cold solver; flip it on
    /// when throughput matters more than bit-stability.
    pub warm_start: bool,
    /// Explicit simplex pivot budget per frame LP; `None` keeps the
    /// solver default. The `T = 144` offline benchmark (frame LPs of
    /// ~1k rows) pairs this with `warm_start` so a pathological frame
    /// fails fast into the controller's fallback instead of burning the
    /// full default budget (`bench_sweep` records the measured pivots
    /// and wall time).
    pub frame_pivot_budget: Option<usize>,
}

impl Default for OfflineConfig {
    fn default() -> Self {
        OfflineConfig {
            deadline_slots: None,
            allow_real_time: true,
            warm_start: false,
            frame_pivot_budget: None,
        }
    }
}

/// The paper's offline benchmark (§II-D): per coarse frame, solve the
/// cost-minimizing linear program over that frame's `T` fine slots with
/// *full knowledge* of demand, renewables and prices, carrying battery and
/// queue state across frames.
///
/// Deviations from the idealized P2, both documented in `DESIGN.md` §3:
/// the battery wear term `n(τ)·Cb` is linearized in the LP objective (an
/// LP cannot price an indicator; the *realized* report still pays the true
/// per-operation cost), and frame-coupled battery strategy beyond one
/// frame is out of scope exactly as in the paper's "solve K times P2"
/// formulation.
///
/// # Examples
///
/// ```
/// use dpss_core::OfflineOptimal;
/// use dpss_sim::{Engine, SimParams};
/// use dpss_traces::paper_month_traces;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let truth = paper_month_traces(5)?;
/// let params = SimParams::icdcs13();
/// let engine = Engine::new(params, truth.clone())?;
/// let mut offline = OfflineOptimal::new(params, truth)?;
/// let report = engine.run(&mut offline)?;
/// assert_eq!(report.availability_violations, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OfflineOptimal {
    params: SimParams,
    truth: TraceSet,
    config: OfflineConfig,
    plan_grt: Vec<f64>,
    plan_sdt: Vec<f64>,
    /// Reused across the per-frame LPs: consecutive frames share the
    /// constraint structure, so the previous optimal basis warm-starts
    /// the next solve and the tableau allocation is paid once per run.
    workspace: dpss_lp::LpWorkspace,
}

impl OfflineOptimal {
    /// Creates the benchmark with default configuration.
    ///
    /// # Errors
    ///
    /// Propagates parameter/trace validation.
    pub fn new(params: SimParams, truth: TraceSet) -> Result<Self, CoreError> {
        Self::with_config(params, truth, OfflineConfig::default())
    }

    /// Creates the benchmark with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Propagates parameter/trace validation; rejects a zero deadline.
    pub fn with_config(
        params: SimParams,
        truth: TraceSet,
        config: OfflineConfig,
    ) -> Result<Self, CoreError> {
        params.validate()?;
        truth.validate().map_err(dpss_sim::SimError::from)?;
        if config.deadline_slots == Some(0) {
            return Err(CoreError::InvalidConfig {
                what: "deadline_slots",
                requirement: "must be at least 1 when set",
            });
        }
        Ok(OfflineOptimal {
            params,
            truth,
            config,
            plan_grt: Vec::new(),
            plan_sdt: Vec::new(),
            workspace: dpss_lp::LpWorkspace::new(),
        })
    }

    fn solve_frame(
        &mut self,
        frame: usize,
        t: usize,
        slot_hours: f64,
        b0: f64,
        q0: f64,
        deadline: Option<usize>,
    ) -> Result<frame_lp::FramePlan, CoreError> {
        if !self.config.warm_start {
            self.workspace.clear_basis();
        }
        let start = frame * t;
        let to_f64 = |xs: &[Energy]| xs.iter().map(|e| e.mwh()).collect::<Vec<_>>();
        let p_rt: Vec<f64> = self.truth.price_rt[start..start + t]
            .iter()
            .map(|p| p.dollars_per_mwh())
            .collect();
        let d_ds = to_f64(&self.truth.demand_ds[start..start + t]);
        let d_dt = to_f64(&self.truth.demand_dt[start..start + t]);
        let renewable = to_f64(&self.truth.renewable[start..start + t]);
        frame_lp::solve(
            &FrameLpInputs {
                params: &self.params,
                t,
                slot_cap: self.params.grid_slot_cap(slot_hours).mwh(),
                p_lt: self.truth.price_lt[frame].dollars_per_mwh(),
                p_rt: &p_rt,
                d_ds: &d_ds,
                d_dt: &d_dt,
                renewable: &renewable,
                b0,
                q0,
                deadline,
                allow_rt: self.config.allow_real_time,
                max_pivots: self.config.frame_pivot_budget,
            },
            &mut self.workspace,
        )
    }
}

impl Controller for OfflineOptimal {
    fn name(&self) -> &str {
        "offline"
    }

    fn plan_frame(&mut self, obs: &FrameObservation, view: &SystemView) -> FrameDecision {
        let t = obs.slots_in_frame;
        let b0 = view.battery_level.mwh();
        let q0 = view.queue_backlog.mwh();
        let deadline = Some(self.config.deadline_slots.unwrap_or(t));
        let solved = self
            .solve_frame(obs.frame, t, obs.slot_hours, b0, q0, deadline)
            .or_else(|_| {
                // Deadline infeasible under a tight interconnect: relax it
                // and let delays grow rather than fail the run.
                self.solve_frame(obs.frame, t, obs.slot_hours, b0, q0, None)
            });
        match solved {
            Ok(plan) => {
                let total = plan.g_slot * t as f64;
                self.plan_grt = plan.grt;
                self.plan_sdt = plan.sdt;
                FrameDecision {
                    purchase_lt: Energy::from_mwh(total.max(0.0)),
                }
            }
            Err(_) => {
                // Pathological frame: fall back to pure real-time operation
                // (the plant's guard keeps the lights on).
                self.plan_grt = vec![0.0; t];
                self.plan_sdt = vec![0.0; t];
                FrameDecision {
                    purchase_lt: Energy::ZERO,
                }
            }
        }
    }

    fn plan_slot(&mut self, obs: &SlotObservation, view: &SystemView) -> SlotDecision {
        let i = obs.slot.offset;
        let g_rt = self.plan_grt.get(i).copied().unwrap_or(0.0);
        let target = self.plan_sdt.get(i).copied().unwrap_or(0.0);
        let backlog = view.queue_backlog.mwh();
        let serve_fraction = if backlog > 1e-12 {
            (target / backlog).clamp(0.0, 1.0)
        } else {
            0.0
        };
        SlotDecision {
            purchase_rt: Energy::from_mwh(g_rt.max(0.0)),
            serve_fraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpss_sim::Engine;
    use dpss_traces::Scenario;
    use dpss_units::SlotClock;

    fn short_traces(seed: u64) -> TraceSet {
        let clock = SlotClock::new(3, 24, 1.0).unwrap();
        Scenario::icdcs13().generate(&clock, seed).unwrap()
    }

    #[test]
    fn rejects_zero_deadline() {
        let truth = short_traces(1);
        let cfg = OfflineConfig {
            deadline_slots: Some(0),
            ..OfflineConfig::default()
        };
        assert!(OfflineOptimal::with_config(SimParams::icdcs13(), truth, cfg).is_err());
    }

    #[test]
    fn runs_cleanly_and_serves_demand() {
        let truth = short_traces(2);
        let params = SimParams::icdcs13();
        let engine = Engine::new(params, truth.clone()).unwrap();
        let mut offline = OfflineOptimal::new(params, truth).unwrap();
        let r = engine.run(&mut offline).unwrap();
        assert_eq!(r.unserved_ds, Energy::ZERO);
        assert_eq!(r.availability_violations, 0);
        // Deadline T keeps worst-case delay within ~2 frames.
        assert!(
            r.max_delay_slots <= 2 * 24,
            "max delay {}",
            r.max_delay_slots
        );
        // Lemma 1's spirit: with p_rt above p_lt on average, the long-term
        // market dominates. (Some real-time top-up remains because the
        // long-term delivery is a flat g_bef/T per slot and cannot track
        // the diurnal peak.)
        assert!(r.energy_lt.mwh() > 0.0);
        assert!(
            r.energy_rt.mwh() < r.energy_lt.mwh(),
            "rt {} vs lt {}",
            r.energy_rt,
            r.energy_lt
        );
    }

    #[test]
    fn beats_impatient_on_cost() {
        let truth = short_traces(3);
        let params = SimParams::icdcs13();
        let engine = Engine::new(params, truth.clone()).unwrap();
        let mut offline = OfflineOptimal::new(params, truth).unwrap();
        let r_off = engine.run(&mut offline).unwrap();
        let r_imp = engine.run(&mut crate::Impatient::two_markets()).unwrap();
        assert!(
            r_off.total_cost() <= r_imp.total_cost(),
            "offline {} vs impatient {}",
            r_off.total_cost(),
            r_imp.total_cost()
        );
    }

    #[test]
    fn tighter_deadline_serves_sooner() {
        let truth = short_traces(4);
        let params = SimParams::icdcs13();
        let engine = Engine::new(params, truth.clone()).unwrap();
        let tight = OfflineConfig {
            deadline_slots: Some(2),
            ..OfflineConfig::default()
        };
        let mut fast = OfflineOptimal::with_config(params, truth.clone(), tight).unwrap();
        let mut slow = OfflineOptimal::new(params, truth).unwrap();
        let r_fast = engine.run(&mut fast).unwrap();
        let r_slow = engine.run(&mut slow).unwrap();
        assert!(
            r_fast.average_delay_slots <= r_slow.average_delay_slots + 1e-9,
            "fast {} vs slow {}",
            r_fast.average_delay_slots,
            r_slow.average_delay_slots
        );
        // And pays for the privilege (weakly).
        assert!(r_fast.total_cost() >= r_slow.total_cost() - dpss_units::Money::from_dollars(1e-6));
    }

    #[test]
    fn frame_lp_workspace_is_exercised_across_frames() {
        let truth = short_traces(6);
        let params = SimParams::icdcs13();
        let engine = Engine::new(params, truth.clone()).unwrap();
        let config = OfflineConfig {
            warm_start: true,
            ..OfflineConfig::default()
        };
        let mut offline = OfflineOptimal::with_config(params, truth, config).unwrap();
        engine.run(&mut offline).unwrap();
        let ws = &offline.workspace;
        // One LP per frame (the deadline variant stayed feasible).
        assert_eq!(ws.warm_solves() + ws.cold_solves(), 3);
        // Frames 1 and 2 share a standard-form shape; with the dual
        // feasibility restore the warm path must actually succeed there,
        // not just be attempted and rejected.
        assert!(
            ws.warm_solves() >= 1,
            "repeat frame shapes must warm-start: {} warm / {} cold / {} rejects",
            ws.warm_solves(),
            ws.cold_solves(),
            ws.warm_rejects()
        );
    }

    #[test]
    fn warm_and_cold_offline_agree_on_cost_quality() {
        // Warm starts may pick a different optimal vertex (degenerate
        // service timing), but the realized time-average cost must stay
        // within the LP's optimality quality: tiny relative difference.
        let truth = short_traces(7);
        let params = SimParams::icdcs13();
        let engine = Engine::new(params, truth.clone()).unwrap();
        let warm_cfg = OfflineConfig {
            warm_start: true,
            ..OfflineConfig::default()
        };
        let mut cold = OfflineOptimal::new(params, truth.clone()).unwrap();
        let mut warm = OfflineOptimal::with_config(params, truth, warm_cfg).unwrap();
        let r_cold = engine.run(&mut cold).unwrap();
        let r_warm = engine.run(&mut warm).unwrap();
        let c = r_cold.time_average_cost().dollars();
        let w = r_warm.time_average_cost().dollars();
        assert!(
            ((c - w) / c).abs() < 1e-3,
            "cold {c} vs warm {w}: alternate optima must stay equivalent"
        );
        assert_eq!(r_warm.unserved_ds, Energy::ZERO);
    }

    #[test]
    fn no_battery_configuration_still_solves() {
        let truth = short_traces(5);
        let params = SimParams::icdcs13_with_battery(0.0);
        let engine = Engine::new(params, truth.clone()).unwrap();
        let mut offline = OfflineOptimal::new(params, truth).unwrap();
        let r = engine.run(&mut offline).unwrap();
        assert_eq!(r.unserved_ds, Energy::ZERO);
        assert_eq!(r.battery_ops, 0);
    }
}
