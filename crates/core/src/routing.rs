//! Workload routing: the co-optimizing dispatcher that plans request
//! migration alongside the energy flows.
//!
//! [`RoutingPlanner`] wraps a [`FleetPlanner`] and settles each coarse
//! frame *lexicographically*: the energy settlement is the wrapped
//! planner's LP, byte-identical to a routing-off run (one solve, shared
//! via [`FleetPlanner::plan_with_exports`]); the workload plan then
//! consumes the **residual** curtailment — what each site curtailed
//! minus what the energy settlement already exported — through a second,
//! workload-only transportation LP:
//!
//! * one *self* variable per site (absorb the site's own queued work
//!   locally) and one variable per open directed link (migrate queued
//!   work to the host and absorb it there, bounded by the per-link
//!   migration cap);
//! * donor rows `Σ_j a(i,j) ≤ availableᵢ` (a site cannot route more work
//!   than it has queued) and host rows `Σ_i a(i,j) ≤ residualⱼ` (a host
//!   cannot absorb more work than its leftover curtailment);
//! * objective: maximize the spot bill avoided, `max Σ π_i·a(i,j)` —
//!   every absorbed unit would otherwise be billed at its *donor*'s
//!   frame-mean real-time price. Cross-site flows carry an infinitesimal
//!   penalty so ties break toward local absorption (no pointless
//!   migration when the value is equal).
//!
//! Because the energy LP never sees the workload and the workload LP
//! only eats curtailment the energy LP declined to export, co-optimized
//! routing can only *remove* spot-billed work relative to the
//! serve-on-arrival baseline — the cost-dominance half of the load
//! conservation property suite.
//!
//! Like the fleet planner, the migration LP is a template (built once
//! per topology) re-solved through one warm-started [`LpWorkspace`] with
//! per-frame objective/bound/rhs edits, on the same solver path the
//! wrapped planner resolved to.

// The routing planner mints every LP variable/row it later edits in its
// own template build pass, and all per-site vectors are sized from the
// wrapped topology's roster.
// audit:allow-file(panic-unwrap): expects assert invariants of the LP template this module itself builds
// audit:allow-file(slice-index): variable/row ids are minted by the same template build pass; rosters sized from the topology

use dpss_lp::{ConstraintId, LpWorkspace, Problem, Relation, Sense, SolverStats, Variable};
use dpss_sim::{
    FrameDirective, FrameExchange, FrameOutlook, FrameSettlement, Interconnect, LoadFlow,
    LoadFrame, LoadPlan, RoutedDispatcher, RoutingConfig, SimError,
};
use dpss_units::Energy;

use crate::{FleetPlanner, SolverPath};

/// Cross-site flows are worth this much less than local absorption per
/// MWh, purely as a tie-break: when a donor's work is equally valuable
/// absorbed anywhere, the plan keeps it home rather than burning
/// migration cap.
const MIGRATION_TIE_BREAK: f64 = 1e-6;

/// Below this much total work or residual curtailment (MWh) a frame has
/// nothing to plan and the LP solve is skipped outright.
const NEGLIGIBLE_MWH: f64 = 1e-12;

/// The co-optimizing routed dispatcher: a [`FleetPlanner`] for the
/// energy flows plus a workload-absorption transportation LP over the
/// residual curtailment (see the module docs for the formulation).
///
/// # Examples
///
/// ```
/// use dpss_core::{FleetPlanner, RoutingPlanner};
/// use dpss_sim::{Interconnect, RoutingConfig};
/// use dpss_units::Energy;
///
/// # fn main() -> Result<(), dpss_sim::SimError> {
/// let ic = Interconnect::uniform(3, Energy::from_mwh(2.0))?;
/// let planner = RoutingPlanner::new(FleetPlanner::new(ic), RoutingConfig::icdcs13())?;
/// assert_eq!(planner.config().max_queue_age, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RoutingPlanner {
    inner: FleetPlanner,
    config: RoutingConfig,
    /// The migration LP template; objective, bounds and right-hand sides
    /// are edited per frame.
    problem: Problem,
    /// `(donor, host, variable)`: one self entry `(i, i, _)` per site —
    /// emitted first, in site order — then one entry per open link,
    /// donor-major.
    vars: Vec<(usize, usize, Variable)>,
    /// Donor availability row per site.
    supply_rows: Vec<ConstraintId>,
    /// Host residual-curtailment row per site.
    host_rows: Vec<ConstraintId>,
    workspace: LpWorkspace,
}

impl RoutingPlanner {
    /// Builds the routed dispatcher around an energy planner, minting
    /// the migration LP template for the planner's topology.
    ///
    /// # Errors
    ///
    /// Propagates [`RoutingConfig::validate`] errors.
    pub fn new(inner: FleetPlanner, config: RoutingConfig) -> Result<Self, SimError> {
        config.validate()?;
        let ic = inner.interconnect();
        let n = ic.sites();
        let mut problem = Problem::new(Sense::Minimize);
        let mut vars: Vec<(usize, usize, Variable)> = (0..n)
            .map(|i| {
                let var = problem
                    .add_var(format!("a{i}_{i}"), 0.0, 0.0, 0.0)
                    .expect("template variables are well-formed");
                (i, i, var)
            })
            .collect();
        for (i, j) in ic.open_links() {
            let var = problem
                .add_var(format!("a{i}_{j}"), 0.0, config.migration_cap.mwh(), 0.0)
                .expect("migration caps are validated finite");
            vars.push((i, j, var));
        }
        let mut supply_rows = Vec::with_capacity(n);
        let mut host_rows = Vec::with_capacity(n);
        for s in 0..n {
            let outgoing: Vec<(Variable, f64)> = vars
                .iter()
                .filter(|&&(i, _, _)| i == s)
                .map(|&(_, _, v)| (v, 1.0))
                .collect();
            supply_rows.push(
                problem
                    .add_constraint(&outgoing, Relation::Le, 0.0)
                    .expect("template rows are well-formed"),
            );
            let incoming: Vec<(Variable, f64)> = vars
                .iter()
                .filter(|&&(_, j, _)| j == s)
                .map(|&(_, _, v)| (v, 1.0))
                .collect();
            host_rows.push(
                problem
                    .add_constraint(&incoming, Relation::Le, 0.0)
                    .expect("template rows are well-formed"),
            );
        }
        Ok(RoutingPlanner {
            inner,
            config,
            problem,
            vars,
            supply_rows,
            host_rows,
            workspace: LpWorkspace::new(),
        })
    }

    /// The admission/queue configuration this dispatcher plans for.
    /// Callers pass the same value to
    /// [`MultiSiteEngine::run_routed`](dpss_sim::MultiSiteEngine::run_routed).
    #[must_use]
    pub fn config(&self) -> &RoutingConfig {
        &self.config
    }

    /// The wrapped energy planner.
    #[must_use]
    pub fn inner(&self) -> &FleetPlanner {
        &self.inner
    }

    /// Plans this frame's absorption/migration flows over the residual
    /// curtailment. Pure given the planner's warm-start history.
    fn plan_load(&mut self, frame: usize, residual: &[Energy], load: &LoadFrame) -> LoadPlan {
        let _ = frame;
        let work: f64 = load.available.iter().map(|e| e.mwh()).sum();
        let slack: f64 = residual.iter().map(|e| e.mwh()).sum();
        if work <= NEGLIGIBLE_MWH || slack <= NEGLIGIBLE_MWH {
            return LoadPlan::default();
        }
        let cap = self.config.migration_cap.mwh();
        for &(i, j, var) in &self.vars {
            // Absorbing one MWh of donor i's queued work avoids billing
            // it at i's frame-mean spot price.
            let value = if i == j {
                load.spot[i]
            } else {
                load.spot[i] - MIGRATION_TIE_BREAK
            };
            self.problem
                .set_objective(var, -value)
                .expect("template variables stay valid");
            let avail = load.available[i].mwh().max(0.0);
            let ub = if i == j { avail } else { cap.min(avail) };
            self.problem
                .set_bounds(var, 0.0, ub)
                .expect("availability and caps are non-negative");
        }
        for ((&supply, &host), (avail, res)) in self
            .supply_rows
            .iter()
            .zip(&self.host_rows)
            .zip(load.available.iter().zip(residual))
        {
            self.problem
                .set_rhs(supply, avail.mwh().max(0.0))
                .expect("template rows stay valid");
            self.problem
                .set_rhs(host, res.mwh().max(0.0))
                .expect("template rows stay valid");
        }
        let sol = match self.inner.resolved_solver_path() {
            SolverPath::Network => self
                .problem
                .solve_network_with(&mut self.workspace)
                .expect("the migration LP is feasible (zero flow) and box-bounded"),
            _ => self
                .problem
                .solve_with(&mut self.workspace)
                .expect("the migration LP is feasible (zero flow) and box-bounded"),
        };
        let absorb: Vec<LoadFlow> = self
            .vars
            .iter()
            .filter_map(|&(i, j, var)| {
                let amount = sol.value(var);
                (amount > NEGLIGIBLE_MWH).then(|| LoadFlow {
                    from: i,
                    to: j,
                    amount: Energy::from_mwh(amount),
                })
            })
            .collect();
        self.workspace.recycle(sol);
        LoadPlan { absorb }
    }

    /// Cumulative solver telemetry across the wrapped energy planner's
    /// workspaces and the migration LP's own. See [`SolverStats`].
    #[must_use]
    pub fn solver_stats(&self) -> SolverStats {
        let mut stats = self.inner.solver_stats();
        stats.merge(&self.workspace.stats());
        stats
    }
}

impl RoutedDispatcher for RoutingPlanner {
    fn topology(&self) -> Option<&Interconnect> {
        Some(self.inner.interconnect())
    }

    fn direct(&mut self, outlook: &FrameOutlook) -> Vec<FrameDirective> {
        // Delegates to the energy planner, which ignores the outlook's
        // workload annotation — directives are byte-identical to a
        // routing-off run with the same inner planner.
        dpss_sim::FleetDispatcher::direct(&mut self.inner, outlook)
    }

    fn settle_routed(
        &mut self,
        ex: &FrameExchange,
        load: &LoadFrame,
    ) -> (FrameSettlement, LoadPlan) {
        // One energy solve serves both layers: the settlement is exactly
        // what FleetPlanner::plan would return, and the per-donor sent
        // totals price the residual the workload LP may consume.
        let (settlement, sent) = self.inner.plan_with_exports(ex);
        let residual: Vec<Energy> = ex
            .curtailed
            .iter()
            .zip(&sent)
            .map(|(c, s)| (*c - *s).positive_part())
            .collect();
        let plan = self.plan_load(ex.frame, &residual, load);
        (settlement, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(frame: usize, available: &[f64], spot: &[f64]) -> LoadFrame {
        LoadFrame {
            frame,
            available: available.iter().copied().map(Energy::from_mwh).collect(),
            due: vec![Energy::ZERO; available.len()],
            spot: spot.to_vec(),
        }
    }

    fn exchange(frame: usize, curtailed: &[f64]) -> FrameExchange {
        FrameExchange {
            frame,
            curtailed: curtailed.iter().copied().map(Energy::from_mwh).collect(),
            rt_energy: vec![Energy::ZERO; curtailed.len()],
            rt_price: vec![0.0; curtailed.len()],
        }
    }

    fn planner(ic: Interconnect) -> RoutingPlanner {
        RoutingPlanner::new(FleetPlanner::new(ic), RoutingConfig::icdcs13()).unwrap()
    }

    #[test]
    fn rejects_invalid_configs() {
        let ic = Interconnect::decoupled(2).unwrap();
        let bad = RoutingConfig::icdcs13().with_interactive_fraction(2.0);
        assert!(RoutingPlanner::new(FleetPlanner::new(ic), bad).is_err());
    }

    #[test]
    fn local_absorption_is_clamped_to_residual_and_availability() {
        let mut p = planner(Interconnect::decoupled(2).unwrap());
        // Site 0: 3 MWh queued, 1 MWh residual. Site 1: 0.5 queued, 9 residual.
        let plan = p.plan_load(
            0,
            &[Energy::from_mwh(1.0), Energy::from_mwh(9.0)],
            &load(0, &[3.0, 0.5], &[40.0, 40.0]),
        );
        let absorbed_at = |site: usize| -> f64 {
            plan.absorb
                .iter()
                .filter(|f| f.from == site && f.to == site)
                .map(|f| f.amount.mwh())
                .sum()
        };
        assert!((absorbed_at(0) - 1.0).abs() < 1e-9, "clamped to residual");
        assert!((absorbed_at(1) - 0.5).abs() < 1e-9, "clamped to queue");
        // Decoupled topology mints no migration variables at all.
        assert!(plan.absorb.iter().all(|f| f.from == f.to));
    }

    #[test]
    fn migration_moves_work_toward_leftover_curtailment() {
        // Site 0 queues expensive work with no slack; site 1 has slack
        // and nothing queued. The plan migrates up to the link cap.
        let mut p = planner(Interconnect::uniform(2, Energy::from_mwh(5.0)).unwrap());
        let plan = p.plan_load(
            0,
            &[Energy::ZERO, Energy::from_mwh(4.0)],
            &load(0, &[3.0, 0.0], &[80.0, 20.0]),
        );
        let migrated: f64 = plan
            .absorb
            .iter()
            .filter(|f| f.from == 0 && f.to == 1)
            .map(|f| f.amount.mwh())
            .sum();
        let cap = RoutingConfig::icdcs13().migration_cap.mwh();
        assert!((migrated - cap).abs() < 1e-9, "migrates exactly the cap");
    }

    #[test]
    fn ties_break_toward_local_absorption() {
        // Both sites have slack for site 0's work at equal value: the
        // tie-break keeps it home instead of burning migration cap.
        let mut p = planner(Interconnect::uniform(2, Energy::from_mwh(5.0)).unwrap());
        let plan = p.plan_load(
            0,
            &[Energy::from_mwh(5.0), Energy::from_mwh(5.0)],
            &load(0, &[2.0, 0.0], &[50.0, 50.0]),
        );
        let local: f64 = plan
            .absorb
            .iter()
            .filter(|f| f.from == 0 && f.to == 0)
            .map(|f| f.amount.mwh())
            .sum();
        assert!((local - 2.0).abs() < 1e-9, "all of it absorbed locally");
    }

    #[test]
    fn skips_the_solve_when_nothing_to_plan() {
        let mut p = planner(Interconnect::uniform(2, Energy::from_mwh(5.0)).unwrap());
        // No queued work.
        assert!(p
            .plan_load(
                0,
                &[Energy::from_mwh(3.0); 2],
                &load(0, &[0.0, 0.0], &[50.0; 2])
            )
            .absorb
            .is_empty());
        // No residual curtailment.
        assert!(p
            .plan_load(1, &[Energy::ZERO; 2], &load(1, &[3.0, 0.0], &[50.0; 2]))
            .absorb
            .is_empty());
    }

    #[test]
    fn energy_settlement_matches_the_wrapped_planner_exactly() {
        // The routed settle must reproduce FleetPlanner::plan byte for
        // byte over the same exchange sequence — including warm-start
        // history — so co-optimized energy flows equal routing-off ones.
        let ic = Interconnect::uniform(3, Energy::from_mwh(2.0))
            .unwrap()
            .with_uniform_loss(0.05)
            .unwrap();
        let mut routed = planner(ic.clone());
        let mut plain = FleetPlanner::new(ic);
        for frame in 0..4 {
            let mut ex = exchange(frame, &[2.0, 0.0, 0.5]);
            ex.rt_energy = vec![
                Energy::ZERO,
                Energy::from_mwh(1.0 + frame as f64 * 0.2),
                Energy::ZERO,
            ];
            ex.rt_price = vec![0.0, 70.0, 10.0];
            let lf = load(frame, &[1.0, 0.0, 0.0], &[45.0, 45.0, 45.0]);
            let (s, _) = routed.settle_routed(&ex, &lf);
            assert_eq!(s, plain.plan(&ex), "frame {frame}");
        }
    }

    #[test]
    fn planned_flows_never_exceed_what_settlement_left_over() {
        // Absorption honesty: per host, planned inflow ≤ residual after
        // the energy settlement's exports.
        let ic = Interconnect::uniform(2, Energy::from_mwh(2.0)).unwrap();
        let mut routed = planner(ic);
        let mut ex = exchange(0, &[3.0, 0.0]);
        ex.rt_energy = vec![Energy::ZERO, Energy::from_mwh(1.5)];
        ex.rt_price = vec![0.0, 90.0];
        let lf = load(0, &[5.0, 0.0], &[60.0, 60.0]);
        let (s, plan) = routed.settle_routed(&ex, &lf);
        assert!(s.sent > Energy::ZERO, "test premise: settlement exports");
        let absorbed_at_0: f64 = plan
            .absorb
            .iter()
            .filter(|f| f.to == 0)
            .map(|f| f.amount.mwh())
            .sum();
        let residual_0 = (Energy::from_mwh(3.0) - s.sent).positive_part().mwh();
        assert!(
            absorbed_at_0 <= residual_0 + 1e-9,
            "absorbed {absorbed_at_0} must fit residual {residual_0}"
        );
    }
}
