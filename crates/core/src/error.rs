use std::error::Error;
use std::fmt;

use dpss_lp::LpError;
use dpss_sim::SimError;

/// Error produced by controller configuration or internal optimization.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A configuration value violates its documented range.
    InvalidConfig {
        /// Which field.
        what: &'static str,
        /// Human-readable constraint.
        requirement: &'static str,
    },
    /// An internal linear program failed (offline benchmark or the
    /// LP-backed P4/P5 path).
    Lp(LpError),
    /// An underlying simulator error.
    Sim(SimError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { what, requirement } => {
                write!(f, "config field {what} {requirement}")
            }
            CoreError::Lp(e) => write!(f, "internal lp failed: {e}"),
            CoreError::Sim(e) => write!(f, "simulator error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Lp(e) => Some(e),
            CoreError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LpError> for CoreError {
    fn from(e: LpError) -> Self {
        CoreError::Lp(e)
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = CoreError::InvalidConfig {
            what: "v",
            requirement: "must be positive",
        };
        assert!(e.to_string().contains('v'));
        let e: CoreError = LpError::Infeasible.into();
        assert!(Error::source(&e).is_some());
        assert!(e.to_string().contains("infeasible"));
        let e: CoreError = SimError::ObservationMismatch.into();
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn is_send_sync() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<CoreError>();
    }
}
