//! The per-coarse-frame planning linear program shared by the
//! [`OfflineOptimal`](crate::OfflineOptimal) benchmark (which feeds it the
//! truth) and the [`RecedingHorizon`](crate::RecedingHorizon) MPC
//! controller (which feeds it forecasts).
//!
//! Variables per fine slot `i ∈ [0, T)`: real-time purchase `grt_i`,
//! backlog service `sdt_i`, battery charge `brc_i` / discharge `bdc_i`,
//! waste `w_i`, battery level `b_i` and backlog `q_i`; plus one long-term
//! rate `g_slot` for the whole frame. Constraints: the balance Eq. (4),
//! the interconnect Eq. (5), the battery recursion Eq. (3), the queue
//! recursion Eq. (2) with pre-arrival service limits, and an optional
//! service deadline expressed on cumulative service.

// The frame LP mints its variable ids in the same build pass that later
// reads them back from the solution, and slot vectors are sized by the
// `slots` input the whole frame shares.
// audit:allow-file(slice-index): variable ids and slot vectors are minted/sized in the same frame-LP build pass

use dpss_lp::{LpWorkspace, Problem, Relation, Sense, Variable};
use dpss_sim::SimParams;

use crate::CoreError;

/// Inputs to one frame LP (all energies in MWh, prices in $/MWh).
#[derive(Debug, Clone)]
pub(crate) struct FrameLpInputs<'a> {
    pub params: &'a SimParams,
    /// Fine slots in the frame.
    pub t: usize,
    /// Per-slot grid cap `Pgrid·Δh`.
    pub slot_cap: f64,
    /// Long-term price for the frame.
    pub p_lt: f64,
    /// Real-time price per slot (`len == t`).
    pub p_rt: &'a [f64],
    /// Delay-sensitive demand per slot (`len == t`).
    pub d_ds: &'a [f64],
    /// Delay-tolerant arrivals per slot (`len == t`).
    pub d_dt: &'a [f64],
    /// Renewable production per slot (`len == t`).
    pub renewable: &'a [f64],
    /// Battery level at frame start.
    pub b0: f64,
    /// Backlog at frame start.
    pub q0: f64,
    /// Service deadline in slots; `None` disables deadline rows.
    pub deadline: Option<usize>,
    /// Whether real-time purchasing is permitted.
    pub allow_rt: bool,
    /// Explicit simplex pivot budget; `None` uses the solver default
    /// (`200·(rows + cols) + 2000`). Long frames (`T = 144` is ~1k rows)
    /// set this to fail fast instead of grinding on pathological bases.
    pub max_pivots: Option<usize>,
}

/// The solved plan: long-term per-slot rate, and per-slot real-time
/// purchases and backlog service.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct FramePlan {
    pub g_slot: f64,
    pub grt: Vec<f64>,
    pub sdt: Vec<f64>,
}

/// Solves one frame LP through `ws`. Consecutive frames share the
/// constraint structure, so the workspace's warm-start basis (when the
/// caller keeps one — see `OfflineConfig::warm_start`) usually skips
/// phase 1 entirely and its buffers absorb the tableau allocation (see
/// [`LpWorkspace`]). The objective and feasibility verdict are always
/// identical to a cold solve; the returned *plan* may be a different,
/// equally optimal vertex on degenerate frames (service timing is
/// cost-free inside a frame), which is why the controllers default to
/// cold solves for bit-reproducible published artifacts.
pub(crate) fn solve(inp: &FrameLpInputs<'_>, ws: &mut LpWorkspace) -> Result<FramePlan, CoreError> {
    let t = inp.t;
    debug_assert!(
        inp.p_rt.len() == t
            && inp.d_ds.len() == t
            && inp.d_dt.len() == t
            && inp.renewable.len() == t,
        "series length mismatch"
    );
    let bat = &inp.params.battery;
    let w_pen = inp.params.waste_price.dollars_per_mwh();
    // An LP cannot price the per-operation indicator n(τ)·Cb; linearize
    // wear as cost-per-MWh at full rate (the realized report still pays
    // the true indicator cost).
    let wear_c = if bat.max_charge.mwh() > 0.0 {
        bat.op_cost.dollars() / bat.max_charge.mwh()
    } else {
        0.0
    };
    let wear_d = if bat.max_discharge.mwh() > 0.0 {
        bat.op_cost.dollars() / bat.max_discharge.mwh()
    } else {
        0.0
    };

    let mut p = Problem::new(Sense::Minimize);
    if let Some(budget) = inp.max_pivots {
        p.set_max_pivots(budget);
    }
    let g_slot = p.add_var("g_slot", 0.0, inp.slot_cap, inp.p_lt * t as f64)?;
    let mut grt: Vec<Variable> = Vec::with_capacity(t);
    let mut sdt: Vec<Variable> = Vec::with_capacity(t);
    let mut brc: Vec<Variable> = Vec::with_capacity(t);
    let mut bdc: Vec<Variable> = Vec::with_capacity(t);
    let mut waste: Vec<Variable> = Vec::with_capacity(t);
    let mut level: Vec<Variable> = Vec::with_capacity(t);
    let mut backlog: Vec<Variable> = Vec::with_capacity(t);
    for i in 0..t {
        let rt_ub = if inp.allow_rt { inp.slot_cap } else { 0.0 };
        grt.push(p.add_var(format!("grt{i}"), 0.0, rt_ub, inp.p_rt[i])?);
        let sdt_ub = inp.params.sdt_max.map_or(f64::INFINITY, |s| s.mwh());
        sdt.push(p.add_var(format!("sdt{i}"), 0.0, sdt_ub, 0.0)?);
        brc.push(p.add_var(format!("brc{i}"), 0.0, bat.max_charge.mwh(), wear_c)?);
        bdc.push(p.add_var(format!("bdc{i}"), 0.0, bat.max_discharge.mwh(), wear_d)?);
        waste.push(p.add_var(format!("w{i}"), 0.0, f64::INFINITY, w_pen)?);
        level.push(p.add_var(
            format!("b{i}"),
            bat.min_level.mwh(),
            bat.capacity.mwh(),
            0.0,
        )?);
        backlog.push(p.add_var(format!("q{i}"), 0.0, f64::INFINITY, 0.0)?);
    }

    let eta_c = bat.charge_efficiency;
    let eta_d = bat.discharge_efficiency;
    for i in 0..t {
        // Balance (Eq. 4): g + grt + r + bdc − brc = dds + sdt + w.
        p.add_constraint(
            &[
                (g_slot, 1.0),
                (grt[i], 1.0),
                (bdc[i], 1.0),
                (brc[i], -1.0),
                (sdt[i], -1.0),
                (waste[i], -1.0),
            ],
            Relation::Eq,
            inp.d_ds[i] - inp.renewable[i],
        )?;
        // Interconnect (Eq. 5).
        p.add_constraint(&[(g_slot, 1.0), (grt[i], 1.0)], Relation::Le, inp.slot_cap)?;
        // Battery recursion (Eq. 3).
        if i == 0 {
            p.add_constraint(
                &[(level[0], 1.0), (brc[0], -eta_c), (bdc[0], eta_d)],
                Relation::Eq,
                inp.b0,
            )?;
        } else {
            p.add_constraint(
                &[
                    (level[i], 1.0),
                    (level[i - 1], -1.0),
                    (brc[i], -eta_c),
                    (bdc[i], eta_d),
                ],
                Relation::Eq,
                0.0,
            )?;
        }
        // Queue recursion (Eq. 2) with pre-arrival service limit.
        if i == 0 {
            p.add_constraint(
                &[(backlog[0], 1.0), (sdt[0], 1.0)],
                Relation::Eq,
                inp.q0 + inp.d_dt[0],
            )?;
            p.add_constraint(&[(sdt[0], 1.0)], Relation::Le, inp.q0)?;
        } else {
            p.add_constraint(
                &[(backlog[i], 1.0), (backlog[i - 1], -1.0), (sdt[i], 1.0)],
                Relation::Eq,
                inp.d_dt[i],
            )?;
            p.add_constraint(&[(sdt[i], 1.0), (backlog[i - 1], -1.0)], Relation::Le, 0.0)?;
        }
    }

    // Deadline on cumulative service.
    if let Some(lambda) = inp.deadline {
        let lambda = lambda.max(1);
        for j in 0..t {
            let mut rhs = 0.0;
            if j + 1 >= lambda {
                rhs += inp.q0;
            }
            if j >= lambda {
                for ddt in inp.d_dt.iter().take(j - lambda + 1) {
                    rhs += ddt;
                }
            }
            if rhs > 0.0 {
                let terms: Vec<(Variable, f64)> = (0..=j).map(|i| (sdt[i], 1.0)).collect();
                p.add_constraint(&terms, Relation::Ge, rhs)?;
            }
        }
    }

    let sol = p.solve_with(ws)?;
    Ok(FramePlan {
        g_slot: sol.value(g_slot),
        grt: grt.iter().map(|&v| sol.value(v)).collect(),
        sdt: sdt.iter().map(|&v| sol.value(v)).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs<'a>(
        params: &'a SimParams,
        p_rt: &'a [f64],
        d_ds: &'a [f64],
        d_dt: &'a [f64],
        renewable: &'a [f64],
    ) -> FrameLpInputs<'a> {
        FrameLpInputs {
            params,
            t: d_ds.len(),
            slot_cap: 2.0,
            p_lt: 35.0,
            p_rt,
            d_ds,
            d_dt,
            renewable,
            b0: 0.25,
            q0: 0.5,
            deadline: Some(4),
            allow_rt: true,
            max_pivots: None,
        }
    }

    #[test]
    fn serves_demand_within_deadline() {
        let params = SimParams::icdcs13();
        let p_rt = [45.0; 4];
        let d_ds = [0.8, 1.0, 0.9, 0.7];
        let d_dt = [0.3, 0.2, 0.4, 0.1];
        let r = [0.0, 0.5, 1.0, 0.2];
        let plan = solve(
            &inputs(&params, &p_rt, &d_ds, &d_dt, &r),
            &mut LpWorkspace::new(),
        )
        .unwrap();
        // Deadline 4 with q0 > 0 forces all initial backlog served.
        let total_served: f64 = plan.sdt.iter().sum();
        assert!(total_served >= 0.5 - 1e-7, "served {total_served}");
        assert!(plan.g_slot >= 0.0 && plan.g_slot <= 2.0);
        for (g, s) in plan.grt.iter().zip(&plan.sdt) {
            assert!(*g >= 0.0 && *s >= -1e-9);
            assert!(plan.g_slot + g <= 2.0 + 1e-7, "interconnect");
        }
    }

    #[test]
    fn cheap_rt_slots_attract_purchases() {
        let params = SimParams::icdcs13();
        // Slot 2 is nearly free: the plan should buy there.
        let p_rt = [60.0, 60.0, 1.0, 60.0];
        let d_ds = [1.0; 4];
        let d_dt = [0.4; 4];
        let r = [0.0; 4];
        let plan = solve(
            &inputs(&params, &p_rt, &d_ds, &d_dt, &r),
            &mut LpWorkspace::new(),
        )
        .unwrap();
        let max_rt = plan.grt.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            (plan.grt[2] - max_rt).abs() < 1e-9,
            "cheapest slot buys the most: {:?}",
            plan.grt
        );
    }

    #[test]
    fn no_rt_mode_disables_purchases() {
        let params = SimParams::icdcs13();
        let p_rt = [45.0; 3];
        let d_ds = [0.5; 3];
        let d_dt = [0.1; 3];
        let r = [0.1; 3];
        let mut inp = inputs(&params, &p_rt, &d_ds, &d_dt, &r);
        inp.allow_rt = false;
        inp.deadline = Some(3);
        let plan = solve(&inp, &mut LpWorkspace::new()).unwrap();
        assert!(plan.grt.iter().all(|&g| g.abs() < 1e-9));
        // Long-term covers everything instead.
        assert!(plan.g_slot > 0.4);
    }

    #[test]
    fn infeasible_deadline_is_reported() {
        let params = SimParams::icdcs13_with_battery(0.0);
        // Demand beyond the interconnect with an immediate deadline.
        let p_rt = [45.0; 2];
        let d_ds = [2.0; 2];
        let d_dt = [0.8; 2];
        let r = [0.0; 2];
        let mut inp = inputs(&params, &p_rt, &d_ds, &d_dt, &r);
        inp.q0 = 5.0;
        inp.deadline = Some(1);
        assert!(solve(&inp, &mut LpWorkspace::new()).is_err());
    }
}
