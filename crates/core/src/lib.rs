//! SmartDPSS: the two-timescale Lyapunov control algorithm of Deng, Liu,
//! Jin & Wu, *"SmartDPSS: Cost-Minimizing Multi-source Power Supply for
//! Datacenters with Arbitrary Demand"*, ICDCS 2013 — plus the paper's
//! comparison algorithms.
//!
//! # What lives here
//!
//! * [`SmartDpss`] — the online controller (Algorithm 1). At every coarse
//!   frame it solves the long-term purchasing problem **P4**; at every fine
//!   slot it solves the real-time balancing problem **P5**; afterwards it
//!   updates the delay-aware virtual queue `Y(t)` (Eq. (12)). The
//!   availability-aware queue `X(t)` is the battery level shifted by
//!   `Umax + Bmin + Bdmax·ηd` (Eq. (14)) and is derived on the fly.
//! * [`SmartDpssConfig`] — the tunables `V` (cost–delay knob), `ε`
//!   (delay-control parameter), market structure ([`MarketMode`], for the
//!   Fig. 7 two-markets vs real-time-only comparison) and two ablation
//!   switches documented in `DESIGN.md` §3: [`P5Objective`] (the printed
//!   P5 coefficients vs the drift-plus-penalty derivation) and
//!   [`P4Variant`] (paper-literal vs waste-aware long-term purchasing).
//! * [`OfflineOptimal`] — the §II-D benchmark: per-coarse-frame linear
//!   programs with full knowledge of that frame's demand, renewables and
//!   prices, solved with the `dpss-lp` simplex.
//! * [`Impatient`] — the §VI-A baseline that serves all demand immediately
//!   regardless of prices or renewable availability.
//! * [`FleetPlanner`] — the multi-site export planner: per-coarse-frame
//!   linear programs with inter-site flow variables over a
//!   [`dpss_sim::Interconnect`] topology, warm-started frame to frame —
//!   the *planned* alternative to `dpss-sim`'s post-hoc greedy
//!   settlement, and (with
//!   [`with_coordination`](FleetPlanner::with_coordination)) the
//!   *coordinated* fleet dispatcher that plans prospective flows between
//!   frames and directs sites to buy-to-export.
//! * [`TheoremBounds`] — the closed-form bounds of Theorem 2 (`Qmax`,
//!   `Ymax`, `Umax`, `λmax`, `Vmax`, the `X(t)` window and the `H1`/`H2`
//!   constants), which the integration tests verify empirically.
//! * [`cheapest_window_bound`] — a relaxation-based lower bound on any
//!   policy's cost (sanity floor for the benchmark ordering).
//!
//! # Examples
//!
//! Run SmartDPSS against the paper's one-month scenario and compare it to
//! the Impatient baseline:
//!
//! ```
//! use dpss_core::{Impatient, SmartDpss, SmartDpssConfig};
//! use dpss_sim::{Engine, SimParams};
//! use dpss_traces::paper_month_traces;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let traces = paper_month_traces(42)?;
//! let params = SimParams::icdcs13();
//! let engine = Engine::new(params, traces)?;
//!
//! let mut smart = SmartDpss::new(SmartDpssConfig::icdcs13(), params,
//!                                engine.truth().clock)?;
//! let mut impatient = Impatient::two_markets();
//!
//! let r_smart = engine.run(&mut smart)?;
//! let r_impatient = engine.run(&mut impatient)?;
//! // The headline claim: SmartDPSS trades a bounded delay for lower cost.
//! assert!(r_smart.time_average_cost() < r_impatient.time_average_cost());
//! assert!(r_smart.average_delay_slots > r_impatient.average_delay_slots);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

mod bounds;
mod config;
mod error;
mod fleet;
mod frame_lp;
mod greedy;
mod impatient;
mod lower_bound;
mod offline;
mod p4;
mod p5;
mod receding;
mod routing;
mod smart_dpss;

pub use bounds::TheoremBounds;
pub use config::{MarketMode, P4Variant, P5Objective, SmartDpssConfig};
pub use error::CoreError;
pub use fleet::{FleetPlanner, FleetPlannerState, SolverPath, NETWORK_AUTO_SITE_THRESHOLD};
pub use greedy::GreedyBattery;
pub use impatient::Impatient;
pub use lower_bound::cheapest_window_bound;
pub use offline::{OfflineConfig, OfflineOptimal};
pub use receding::RecedingHorizon;
pub use routing::RoutingPlanner;
pub use smart_dpss::SmartDpss;
