//! Property-based checks of the unit algebra: the newtypes must behave
//! exactly like the underlying field operations (no hidden rounding), and
//! the calendar arithmetic must partition slots correctly.

use dpss_units::{Energy, Money, Power, Price, SlotClock};
use proptest::prelude::*;

proptest! {
    #[test]
    fn energy_addition_is_commutative_and_associative(
        a in -1e6..1e6f64, b in -1e6..1e6f64, c in -1e6..1e6f64,
    ) {
        let (ea, eb, ec) = (Energy::from_mwh(a), Energy::from_mwh(b), Energy::from_mwh(c));
        prop_assert_eq!(ea + eb, eb + ea);
        let left = ((ea + eb) + ec).mwh();
        let right = (ea + (eb + ec)).mwh();
        prop_assert!((left - right).abs() <= 1e-9 * left.abs().max(right.abs()).max(1.0));
    }

    #[test]
    fn positive_part_is_idempotent_and_dominates(x in -1e6..1e6f64) {
        let e = Energy::from_mwh(x);
        let p = e.positive_part();
        prop_assert!(p.mwh() >= 0.0);
        prop_assert!(p >= e);
        prop_assert_eq!(p.positive_part(), p);
    }

    #[test]
    fn power_energy_conversion_round_trips(mw in 0.0..1e4f64, hours in 0.001..100.0f64) {
        let p = Power::from_mw(mw);
        let e = p.over_hours(hours);
        prop_assert!((e.over_hours(hours).mw() - mw).abs() < 1e-9 * mw.max(1.0));
    }

    #[test]
    fn price_times_energy_is_bilinear(
        p in 0.0..1e3f64, e in 0.0..1e4f64, k in 0.0..100.0f64,
    ) {
        let price = Price::from_dollars_per_mwh(p);
        let energy = Energy::from_mwh(e);
        let scaled = (energy * k) * price;
        let direct = (energy * price) * k;
        prop_assert!((scaled.dollars() - direct.dollars()).abs()
            <= 1e-9 * scaled.dollars().abs().max(1.0));
    }

    #[test]
    fn money_sum_matches_f64_sum(xs in proptest::collection::vec(-1e4..1e4f64, 0..50)) {
        let total: Money = xs.iter().map(|&x| Money::from_dollars(x)).sum();
        let expect: f64 = xs.iter().sum();
        prop_assert!((total.dollars() - expect).abs() < 1e-6);
    }

    #[test]
    fn clamp_always_lands_inside(x in -1e6..1e6f64, lo in -10.0..10.0f64, width in 0.0..20.0f64) {
        let lo_e = Energy::from_mwh(lo);
        let hi_e = Energy::from_mwh(lo + width);
        let c = Energy::from_mwh(x).clamp(lo_e, hi_e);
        prop_assert!(c >= lo_e && c <= hi_e);
    }

    #[test]
    fn slot_clock_partitions_slots(frames in 1usize..40, t in 1usize..50) {
        let clock = SlotClock::new(frames, t, 1.0).unwrap();
        prop_assert_eq!(clock.total_slots(), frames * t);
        let mut frame_starts = 0;
        for id in clock.slots() {
            prop_assert_eq!(clock.frame_of(id.index), id.frame);
            prop_assert_eq!(clock.slot_in_frame(id.index), id.offset);
            prop_assert_eq!(id.frame * t + id.offset, id.index);
            if id.is_frame_start() {
                frame_starts += 1;
                prop_assert_eq!(clock.frame_start(id.frame), id.index);
            }
        }
        prop_assert_eq!(frame_starts, frames);
    }

    #[test]
    fn resegmenting_preserves_horizon(t2 in 1usize..100) {
        let base = SlotClock::icdcs13_month();
        let re = base.with_slots_per_frame(t2).unwrap();
        prop_assert!(re.total_slots() >= base.total_slots());
        prop_assert!(re.total_slots() < base.total_slots() + t2);
    }
}
