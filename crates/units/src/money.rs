use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::Energy;

/// A cost or payment in dollars.
///
/// All DPSS cost components — long-term and real-time grid purchases, battery
/// wear `n(τ)·Cb` and the waste penalty — are `Money`. Money is produced by
/// multiplying [`Energy`] by [`Price`] and supports only additive arithmetic
/// plus dimensionless scaling.
///
/// # Examples
///
/// ```
/// use dpss_units::{Energy, Money, Price};
///
/// let bill = Energy::from_mwh(2.0) * Price::from_dollars_per_mwh(40.0)
///     + Money::from_dollars(0.1); // one battery operation
/// assert_eq!(bill.dollars(), 80.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Money(f64);

impl Money {
    /// Zero dollars.
    pub const ZERO: Money = Money(0.0);

    /// Creates a money amount from dollars.
    #[must_use]
    pub const fn from_dollars(dollars: f64) -> Self {
        Money(dollars)
    }

    /// Returns the amount in dollars.
    #[must_use]
    pub const fn dollars(self) -> f64 {
        self.0
    }

    /// Returns `max(self, 0)`.
    #[must_use]
    pub fn positive_part(self) -> Self {
        Money(self.0.max(0.0))
    }

    /// Returns the element-wise minimum of two amounts.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Money(self.0.min(other.0))
    }

    /// Returns the element-wise maximum of two amounts.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Money(self.0.max(other.0))
    }

    /// Returns `true` if the amount is finite (not NaN/∞).
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${:.4}", self.0)
    }
}

impl Add for Money {
    type Output = Money;
    fn add(self, rhs: Self) -> Self {
        Money(self.0 + rhs.0)
    }
}

impl AddAssign for Money {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Money {
    type Output = Money;
    fn sub(self, rhs: Self) -> Self {
        Money(self.0 - rhs.0)
    }
}

impl SubAssign for Money {
    fn sub_assign(&mut self, rhs: Self) {
        self.0 -= rhs.0;
    }
}

impl Neg for Money {
    type Output = Money;
    fn neg(self) -> Self {
        Money(-self.0)
    }
}

impl Mul<f64> for Money {
    type Output = Money;
    fn mul(self, rhs: f64) -> Self {
        Money(self.0 * rhs)
    }
}

impl Mul<Money> for f64 {
    type Output = Money;
    fn mul(self, rhs: Money) -> Money {
        Money(self * rhs.0)
    }
}

impl Div<f64> for Money {
    type Output = Money;
    fn div(self, rhs: f64) -> Self {
        Money(self.0 / rhs)
    }
}

impl Div<Money> for Money {
    /// Dimensionless ratio of two amounts.
    type Output = f64;
    fn div(self, rhs: Money) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Self {
        Money(iter.map(|m| m.0).sum())
    }
}

impl<'a> Sum<&'a Money> for Money {
    fn sum<I: Iterator<Item = &'a Money>>(iter: I) -> Self {
        Money(iter.map(|m| m.0).sum())
    }
}

/// An electricity price in dollars per megawatt-hour ($/MWh).
///
/// Both grid markets quote prices of this kind: the long-term-ahead price
/// `p_lt(t)` per coarse frame and the real-time price `p_rt(τ)` per fine
/// slot, each bounded by the paper's price cap `Pmax`.
///
/// # Examples
///
/// ```
/// use dpss_units::{Energy, Price};
///
/// let p = Price::from_dollars_per_mwh(28.5);
/// assert_eq!((Energy::from_mwh(2.0) * p).dollars(), 57.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Price(f64);

impl Price {
    /// Zero price (free energy, e.g. the paper's marginal renewable cost).
    pub const ZERO: Price = Price(0.0);

    /// Creates a price from $/MWh.
    #[must_use]
    pub const fn from_dollars_per_mwh(p: f64) -> Self {
        Price(p)
    }

    /// Returns the price in $/MWh.
    #[must_use]
    pub const fn dollars_per_mwh(self) -> f64 {
        self.0
    }

    /// Returns the element-wise minimum of two prices.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Price(self.0.min(other.0))
    }

    /// Returns the element-wise maximum of two prices.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Price(self.0.max(other.0))
    }

    /// Clamps into `[lo, hi]`, tolerating degenerate intervals.
    #[must_use]
    pub fn clamp(self, lo: Self, hi: Self) -> Self {
        Price(crate::clamp_interval(self.0, lo.0, hi.0))
    }

    /// Returns `true` if the price is finite (not NaN/∞).
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl fmt::Display for Price {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} $/MWh", self.0)
    }
}

impl Mul<Energy> for Price {
    type Output = Money;
    fn mul(self, rhs: Energy) -> Money {
        Money(self.0 * rhs.mwh())
    }
}

impl Mul<Price> for Energy {
    type Output = Money;
    fn mul(self, rhs: Price) -> Money {
        Money(self.mwh() * rhs.0)
    }
}

impl Mul<f64> for Price {
    type Output = Price;
    fn mul(self, rhs: f64) -> Price {
        Price(self.0 * rhs)
    }
}

impl Mul<Price> for f64 {
    type Output = Price;
    fn mul(self, rhs: Price) -> Price {
        Price(self * rhs.0)
    }
}

impl Add for Price {
    type Output = Price;
    fn add(self, rhs: Self) -> Price {
        Price(self.0 + rhs.0)
    }
}

impl Sub for Price {
    type Output = Price;
    fn sub(self, rhs: Self) -> Price {
        Price(self.0 - rhs.0)
    }
}

impl Div<f64> for Price {
    type Output = Price;
    fn div(self, rhs: f64) -> Price {
        Price(self.0 / rhs)
    }
}

impl Div<Price> for Price {
    /// Dimensionless ratio of two prices (e.g. real-time markup).
    type Output = f64;
    fn div(self, rhs: Price) -> f64 {
        self.0 / rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn money_arithmetic() {
        let a = Money::from_dollars(10.0);
        let b = Money::from_dollars(4.0);
        assert_eq!((a + b).dollars(), 14.0);
        assert_eq!((a - b).dollars(), 6.0);
        assert_eq!((a * 0.5).dollars(), 5.0);
        assert_eq!((2.0 * b).dollars(), 8.0);
        assert_eq!((a / 2.0).dollars(), 5.0);
        assert_eq!(a / b, 2.5);
        assert_eq!((-a).dollars(), -10.0);
        assert_eq!(Money::from_dollars(-1.0).positive_part(), Money::ZERO);
    }

    #[test]
    fn money_accumulates_and_sums() {
        let mut acc = Money::ZERO;
        acc += Money::from_dollars(1.0);
        acc -= Money::from_dollars(0.25);
        assert_eq!(acc.dollars(), 0.75);
        let total: Money = [Money::from_dollars(1.0), Money::from_dollars(2.0)]
            .iter()
            .sum();
        assert_eq!(total.dollars(), 3.0);
    }

    #[test]
    fn price_times_energy_is_money_both_ways() {
        let p = Price::from_dollars_per_mwh(25.0);
        let e = Energy::from_mwh(4.0);
        assert_eq!((p * e).dollars(), 100.0);
        assert_eq!((e * p).dollars(), 100.0);
    }

    #[test]
    fn price_scaling_and_ratio() {
        let p = Price::from_dollars_per_mwh(30.0);
        assert_eq!((p * 2.0).dollars_per_mwh(), 60.0);
        assert_eq!((1.5 * p).dollars_per_mwh(), 45.0);
        assert_eq!((p / 3.0).dollars_per_mwh(), 10.0);
        assert_eq!(p / Price::from_dollars_per_mwh(15.0), 2.0);
        assert_eq!((p + p).dollars_per_mwh(), 60.0);
        assert_eq!((p - p).dollars_per_mwh(), 0.0);
    }

    #[test]
    fn price_clamp_respects_cap() {
        let cap = Price::from_dollars_per_mwh(100.0);
        let spiked = Price::from_dollars_per_mwh(400.0);
        assert_eq!(spiked.clamp(Price::ZERO, cap), cap);
    }

    #[test]
    fn displays_are_unit_tagged() {
        assert!(Money::from_dollars(1.0).to_string().starts_with('$'));
        assert!(Price::from_dollars_per_mwh(1.0)
            .to_string()
            .contains("$/MWh"));
    }

    #[test]
    fn min_max_ordering() {
        let lo = Price::from_dollars_per_mwh(10.0);
        let hi = Price::from_dollars_per_mwh(20.0);
        assert_eq!(lo.min(hi), lo);
        assert_eq!(lo.max(hi), hi);
        let a = Money::from_dollars(1.0);
        let b = Money::from_dollars(2.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }
}
