use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An amount of energy in megawatt-hours (MWh).
///
/// This is the quantity that flows through the DPSS per fine time slot:
/// demand `d(τ)`, renewable production `r(τ)`, grid purchases, battery
/// charge/discharge amounts and queue backlogs are all energies.
///
/// `Energy` is a plain additive quantity: it supports addition, subtraction,
/// scaling by a dimensionless `f64`, division by another `Energy` (yielding a
/// dimensionless ratio) and multiplication by a [`Price`](crate::Price)
/// (yielding [`Money`](crate::Money)). Values may be negative — net-flow
/// arithmetic produces transient negatives — callers that need non-negativity
/// use [`Energy::max`] with [`Energy::ZERO`] (the paper's `[·]⁺`).
///
/// # Examples
///
/// ```
/// use dpss_units::Energy;
///
/// let surplus = Energy::from_mwh(1.5) - Energy::from_mwh(2.0);
/// assert_eq!(surplus.positive_part(), Energy::ZERO);
/// assert_eq!((-surplus).positive_part(), Energy::from_mwh(0.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy from megawatt-hours.
    #[must_use]
    pub const fn from_mwh(mwh: f64) -> Self {
        Energy(mwh)
    }

    /// Returns the amount in megawatt-hours.
    #[must_use]
    pub const fn mwh(self) -> f64 {
        self.0
    }

    /// Returns the amount in kilowatt-hours.
    #[must_use]
    pub fn kwh(self) -> f64 {
        self.0 * 1_000.0
    }

    /// Returns `max(self, 0)` — the paper's `[·]⁺` operator.
    #[must_use]
    pub fn positive_part(self) -> Self {
        Energy(self.0.max(0.0))
    }

    /// Returns the element-wise minimum of two energies.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Energy(self.0.min(other.0))
    }

    /// Returns the element-wise maximum of two energies.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Energy(self.0.max(other.0))
    }

    /// Clamps into `[lo, hi]`, tolerating degenerate intervals.
    #[must_use]
    pub fn clamp(self, lo: Self, hi: Self) -> Self {
        Energy(crate::clamp_interval(self.0, lo.0, hi.0))
    }

    /// Returns `true` if the amount is finite (not NaN/∞).
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Average power if this energy is spread evenly over `hours`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `hours` is not strictly positive.
    #[must_use]
    pub fn over_hours(self, hours: f64) -> Power {
        debug_assert!(hours > 0.0, "hours must be positive");
        Power::from_mw(self.0 / hours)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} MWh", self.0)
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Self) -> Self {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    fn sub(self, rhs: Self) -> Self {
        Energy(self.0 - rhs.0)
    }
}

impl SubAssign for Energy {
    fn sub_assign(&mut self, rhs: Self) {
        self.0 -= rhs.0;
    }
}

impl Neg for Energy {
    type Output = Energy;
    fn neg(self) -> Self {
        Energy(-self.0)
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: f64) -> Self {
        Energy(self.0 * rhs)
    }
}

impl Mul<Energy> for f64 {
    type Output = Energy;
    fn mul(self, rhs: Energy) -> Energy {
        Energy(self * rhs.0)
    }
}

impl Div<f64> for Energy {
    type Output = Energy;
    fn div(self, rhs: f64) -> Self {
        Energy(self.0 / rhs)
    }
}

impl Div<Energy> for Energy {
    /// Dimensionless ratio of two energies.
    type Output = f64;
    fn div(self, rhs: Energy) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Self {
        Energy(iter.map(|e| e.0).sum())
    }
}

impl<'a> Sum<&'a Energy> for Energy {
    fn sum<I: Iterator<Item = &'a Energy>>(iter: I) -> Self {
        Energy(iter.map(|e| e.0).sum())
    }
}

/// An instantaneous power in megawatts (MW).
///
/// Powers describe *rates* and limits: the grid interconnect cap `Pgrid`,
/// battery charge/discharge rate limits, peak demand. Multiplying by a
/// duration in hours yields [`Energy`].
///
/// # Examples
///
/// ```
/// use dpss_units::{Energy, Power};
///
/// // A 0.5 MW battery charge limit over a 15-minute slot.
/// let cap = Power::from_mw(0.5).over_hours(0.25);
/// assert_eq!(cap, Energy::from_mwh(0.125));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Power(f64);

impl Power {
    /// Zero power.
    pub const ZERO: Power = Power(0.0);

    /// Creates a power from megawatts.
    #[must_use]
    pub const fn from_mw(mw: f64) -> Self {
        Power(mw)
    }

    /// Returns the rate in megawatts.
    #[must_use]
    pub const fn mw(self) -> f64 {
        self.0
    }

    /// Energy delivered at this constant power for `hours` hours.
    #[must_use]
    pub fn over_hours(self, hours: f64) -> Energy {
        Energy::from_mwh(self.0 * hours)
    }

    /// Returns the element-wise minimum of two powers.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Power(self.0.min(other.0))
    }

    /// Returns the element-wise maximum of two powers.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Power(self.0.max(other.0))
    }

    /// Returns `true` if the rate is finite (not NaN/∞).
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} MW", self.0)
    }
}

impl Add for Power {
    type Output = Power;
    fn add(self, rhs: Self) -> Self {
        Power(self.0 + rhs.0)
    }
}

impl Sub for Power {
    type Output = Power;
    fn sub(self, rhs: Self) -> Self {
        Power(self.0 - rhs.0)
    }
}

impl Mul<f64> for Power {
    type Output = Power;
    fn mul(self, rhs: f64) -> Self {
        Power(self.0 * rhs)
    }
}

impl Mul<Power> for f64 {
    type Output = Power;
    fn mul(self, rhs: Power) -> Power {
        Power(self * rhs.0)
    }
}

impl Div<f64> for Power {
    type Output = Power;
    fn div(self, rhs: f64) -> Self {
        Power(self.0 / rhs)
    }
}

impl Div<Power> for Power {
    /// Dimensionless ratio of two powers.
    type Output = f64;
    fn div(self, rhs: Power) -> f64 {
        self.0 / rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_arithmetic() {
        let a = Energy::from_mwh(2.0);
        let b = Energy::from_mwh(0.5);
        assert_eq!((a + b).mwh(), 2.5);
        assert_eq!((a - b).mwh(), 1.5);
        assert_eq!((a * 2.0).mwh(), 4.0);
        assert_eq!((2.0 * a).mwh(), 4.0);
        assert_eq!((a / 4.0).mwh(), 0.5);
        assert_eq!(a / b, 4.0);
        assert_eq!((-a).mwh(), -2.0);
    }

    #[test]
    fn energy_positive_part_matches_paper_plus_operator() {
        assert_eq!(Energy::from_mwh(-3.0).positive_part(), Energy::ZERO);
        assert_eq!(Energy::from_mwh(3.0).positive_part(), Energy::from_mwh(3.0));
    }

    #[test]
    fn energy_min_max_clamp() {
        let a = Energy::from_mwh(2.0);
        let b = Energy::from_mwh(0.5);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
        assert_eq!(
            Energy::from_mwh(9.0).clamp(b, a),
            a,
            "clamps to the upper bound"
        );
        // Degenerate interval collapses to the lower bound.
        assert_eq!(Energy::from_mwh(9.0).clamp(a, b), a);
    }

    #[test]
    fn energy_sum_over_iterators() {
        let xs = [Energy::from_mwh(1.0), Energy::from_mwh(2.5)];
        let owned: Energy = xs.iter().copied().sum();
        let borrowed: Energy = xs.iter().sum();
        assert_eq!(owned.mwh(), 3.5);
        assert_eq!(borrowed.mwh(), 3.5);
    }

    #[test]
    fn energy_accumulates_in_place() {
        let mut acc = Energy::ZERO;
        acc += Energy::from_mwh(1.0);
        acc -= Energy::from_mwh(0.25);
        assert_eq!(acc.mwh(), 0.75);
    }

    #[test]
    fn power_energy_round_trip() {
        let p = Power::from_mw(2.0);
        let e = p.over_hours(0.25);
        assert_eq!(e.mwh(), 0.5);
        assert_eq!(e.over_hours(0.25), p);
    }

    #[test]
    fn power_arithmetic() {
        let p = Power::from_mw(3.0);
        let q = Power::from_mw(1.0);
        assert_eq!((p + q).mw(), 4.0);
        assert_eq!((p - q).mw(), 2.0);
        assert_eq!((p * 2.0).mw(), 6.0);
        assert_eq!((0.5 * p).mw(), 1.5);
        assert_eq!((p / 3.0).mw(), 1.0);
        assert_eq!(p / q, 3.0);
        assert_eq!(p.min(q), q);
        assert_eq!(p.max(q), p);
    }

    #[test]
    fn kwh_conversion() {
        assert_eq!(Energy::from_mwh(1.5).kwh(), 1_500.0);
    }

    #[test]
    fn display_is_nonempty_and_unit_tagged() {
        assert!(Energy::from_mwh(1.0).to_string().contains("MWh"));
        assert!(Power::from_mw(1.0).to_string().contains("MW"));
    }

    #[test]
    fn finiteness_checks() {
        assert!(Energy::from_mwh(1.0).is_finite());
        assert!(!Energy::from_mwh(f64::NAN).is_finite());
        assert!(Power::from_mw(1.0).is_finite());
        assert!(!Power::from_mw(f64::INFINITY).is_finite());
    }
}
