use std::fmt;

use serde::{Deserialize, Serialize};

use crate::UnitsError;

/// The two-timescale calendar of the SmartDPSS model (paper §II, Fig. 2).
///
/// Time is divided into `K` coarse-grained **frames** of `T` fine-grained
/// **slots** each. The long-term-ahead grid market clears once per frame
/// (`t = kT`); real-time purchases, demand management and battery operations
/// happen every slot. Empirically a slot is 15 or 60 minutes and a frame is a
/// day (the paper's evaluation uses `T = 24` hourly slots).
///
/// # Examples
///
/// ```
/// use dpss_units::SlotClock;
///
/// # fn main() -> Result<(), dpss_units::UnitsError> {
/// let clock = SlotClock::new(2, 3, 1.0)?; // 2 frames × 3 hourly slots
/// let ids: Vec<_> = clock.slots().map(|s| (s.frame, s.offset)).collect();
/// assert_eq!(ids, [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]);
/// assert!(clock.is_frame_start(3));
/// assert_eq!(clock.frame_of(4), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotClock {
    frames: usize,
    slots_per_frame: usize,
    // Milli-hours, so the calendar can be Eq/Hash (used as a sweep key).
    slot_hours_milli: u64,
}

impl SlotClock {
    /// Creates a calendar with `frames` coarse frames (the paper's `K`),
    /// `slots_per_frame` fine slots per frame (the paper's `T`), and a fine
    /// slot duration of `slot_hours` hours.
    ///
    /// # Errors
    ///
    /// Returns [`UnitsError::ZeroCount`] if either count is zero, and
    /// [`UnitsError::NotFinite`] / [`UnitsError::Negative`] if `slot_hours`
    /// is not a finite positive number.
    pub fn new(frames: usize, slots_per_frame: usize, slot_hours: f64) -> Result<Self, UnitsError> {
        if frames == 0 {
            return Err(UnitsError::ZeroCount { what: "frames" });
        }
        if slots_per_frame == 0 {
            return Err(UnitsError::ZeroCount {
                what: "slots_per_frame",
            });
        }
        if !slot_hours.is_finite() {
            return Err(UnitsError::NotFinite { what: "slot_hours" });
        }
        if slot_hours <= 0.0 {
            return Err(UnitsError::Negative { what: "slot_hours" });
        }
        Ok(SlotClock {
            frames,
            slots_per_frame,
            slot_hours_milli: (slot_hours * 1_000.0).round() as u64,
        })
    }

    /// The paper's one-month evaluation calendar: 31 daily frames of 24
    /// hourly slots (`K = 31`, `T = 24`).
    #[must_use]
    pub fn icdcs13_month() -> Self {
        // audit:allow(panic-unwrap): constant arguments satisfy every `new` precondition
        SlotClock::new(31, 24, 1.0).expect("static calendar is valid")
    }

    /// Number of coarse frames `K`.
    #[must_use]
    pub const fn frames(&self) -> usize {
        self.frames
    }

    /// Number of fine slots per frame `T`.
    #[must_use]
    pub const fn slots_per_frame(&self) -> usize {
        self.slots_per_frame
    }

    /// Duration of one fine slot, in hours.
    #[must_use]
    pub fn slot_hours(&self) -> f64 {
        self.slot_hours_milli as f64 / 1_000.0
    }

    /// Total number of fine slots `K·T` in the horizon.
    #[must_use]
    pub const fn total_slots(&self) -> usize {
        self.frames * self.slots_per_frame
    }

    /// Total horizon length in hours.
    #[must_use]
    pub fn total_hours(&self) -> f64 {
        self.total_slots() as f64 * self.slot_hours()
    }

    /// Coarse frame containing fine slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= total_slots()`.
    #[must_use]
    pub fn frame_of(&self, slot: usize) -> usize {
        assert!(slot < self.total_slots(), "slot {slot} out of range");
        slot / self.slots_per_frame
    }

    /// Offset of `slot` within its frame (`0..T`).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= total_slots()`.
    #[must_use]
    pub fn slot_in_frame(&self, slot: usize) -> usize {
        assert!(slot < self.total_slots(), "slot {slot} out of range");
        slot % self.slots_per_frame
    }

    /// Whether `slot` is the first fine slot of a coarse frame (`t = kT`),
    /// i.e. a long-term-ahead market decision point.
    #[must_use]
    pub fn is_frame_start(&self, slot: usize) -> bool {
        slot.is_multiple_of(self.slots_per_frame)
    }

    /// First fine slot of coarse frame `frame`.
    ///
    /// # Panics
    ///
    /// Panics if `frame >= frames()`.
    #[must_use]
    pub fn frame_start(&self, frame: usize) -> usize {
        assert!(frame < self.frames, "frame {frame} out of range");
        frame * self.slots_per_frame
    }

    /// Iterates over all fine slots in chronological order.
    pub fn slots(&self) -> Slots {
        Slots {
            clock: *self,
            next: 0,
        }
    }

    /// Fully resolved identifier for fine slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= total_slots()`.
    #[must_use]
    pub fn slot_id(&self, slot: usize) -> SlotId {
        SlotId {
            index: slot,
            frame: self.frame_of(slot),
            offset: self.slot_in_frame(slot),
        }
    }

    /// Returns a calendar identical to this one except for the number of
    /// slots per frame — used by the Fig. 6(c,d) `T` sweep, which keeps the
    /// total horizon fixed while changing the market granularity.
    ///
    /// The number of frames is recomputed so that the total slot count stays
    /// as close as possible to the original (rounded up to cover it).
    ///
    /// # Errors
    ///
    /// Returns an error if `slots_per_frame` is zero.
    pub fn with_slots_per_frame(&self, slots_per_frame: usize) -> Result<Self, UnitsError> {
        if slots_per_frame == 0 {
            return Err(UnitsError::ZeroCount {
                what: "slots_per_frame",
            });
        }
        let total = self.total_slots();
        let frames = total.div_ceil(slots_per_frame).max(1);
        SlotClock::new(frames, slots_per_frame, self.slot_hours())
    }
}

impl fmt::Display for SlotClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} frames x {} slots x {:.2} h",
            self.frames,
            self.slots_per_frame,
            self.slot_hours()
        )
    }
}

/// Identifier of one fine slot: absolute index plus (frame, offset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SlotId {
    /// Absolute fine-slot index `τ ∈ [0, K·T)`.
    pub index: usize,
    /// Coarse frame `k` containing this slot.
    pub frame: usize,
    /// Offset within the frame, `0..T`; `0` means a frame start (`t = kT`).
    pub offset: usize,
}

impl SlotId {
    /// Whether this slot is a long-term-ahead market decision point.
    #[must_use]
    pub const fn is_frame_start(&self) -> bool {
        self.offset == 0
    }
}

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "slot {} (frame {}, offset {})",
            self.index, self.frame, self.offset
        )
    }
}

/// Iterator over the fine slots of a [`SlotClock`], produced by
/// [`SlotClock::slots`].
#[derive(Debug, Clone)]
pub struct Slots {
    clock: SlotClock,
    next: usize,
}

impl Iterator for Slots {
    type Item = SlotId;

    fn next(&mut self) -> Option<SlotId> {
        if self.next >= self.clock.total_slots() {
            return None;
        }
        let id = self.clock.slot_id(self.next);
        self.next += 1;
        Some(id)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.clock.total_slots() - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Slots {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_construction() {
        assert!(SlotClock::new(0, 24, 1.0).is_err());
        assert!(SlotClock::new(31, 0, 1.0).is_err());
        assert!(SlotClock::new(31, 24, 0.0).is_err());
        assert!(SlotClock::new(31, 24, -1.0).is_err());
        assert!(SlotClock::new(31, 24, f64::NAN).is_err());
    }

    #[test]
    fn paper_month_calendar() {
        let c = SlotClock::icdcs13_month();
        assert_eq!(c.frames(), 31);
        assert_eq!(c.slots_per_frame(), 24);
        assert_eq!(c.total_slots(), 744);
        assert_eq!(c.total_hours(), 744.0);
        assert_eq!(c.slot_hours(), 1.0);
    }

    #[test]
    fn frame_and_offset_math() {
        let c = SlotClock::new(3, 4, 0.25).unwrap();
        assert_eq!(c.frame_of(0), 0);
        assert_eq!(c.frame_of(7), 1);
        assert_eq!(c.slot_in_frame(7), 3);
        assert!(c.is_frame_start(8));
        assert!(!c.is_frame_start(9));
        assert_eq!(c.frame_start(2), 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn frame_of_out_of_range_panics() {
        let c = SlotClock::new(2, 2, 1.0).unwrap();
        let _ = c.frame_of(4);
    }

    #[test]
    fn iterator_is_exact_and_chronological() {
        let c = SlotClock::new(2, 3, 1.0).unwrap();
        let slots: Vec<_> = c.slots().collect();
        assert_eq!(slots.len(), 6);
        assert_eq!(c.slots().len(), 6);
        for (i, s) in slots.iter().enumerate() {
            assert_eq!(s.index, i);
            assert_eq!(s.frame, i / 3);
            assert_eq!(s.offset, i % 3);
            assert_eq!(s.is_frame_start(), i % 3 == 0);
        }
    }

    #[test]
    fn slot_id_display_mentions_frame() {
        let c = SlotClock::new(2, 3, 1.0).unwrap();
        let s = c.slot_id(4);
        assert_eq!(s.to_string(), "slot 4 (frame 1, offset 1)");
    }

    #[test]
    fn t_sweep_preserves_horizon() {
        let base = SlotClock::icdcs13_month(); // 744 slots
        for t in [3usize, 6, 12, 24, 48, 144] {
            let c = base.with_slots_per_frame(t).unwrap();
            assert_eq!(c.slots_per_frame(), t);
            assert!(c.total_slots() >= base.total_slots());
            assert!(c.total_slots() < base.total_slots() + t);
        }
        assert!(base.with_slots_per_frame(0).is_err());
    }

    #[test]
    fn fractional_slot_hours_round_trip() {
        let c = SlotClock::new(4, 96, 0.25).unwrap(); // 15-minute slots
        assert_eq!(c.slot_hours(), 0.25);
        assert_eq!(c.total_hours(), 96.0);
    }
}
