use std::error::Error;
use std::fmt;

/// Error returned when constructing a unit value or calendar from invalid
/// numeric input.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum UnitsError {
    /// The value was NaN or infinite where a finite quantity is required.
    NotFinite {
        /// Name of the offending quantity (e.g. `"slot_hours"`).
        what: &'static str,
    },
    /// The value was negative where a non-negative quantity is required.
    Negative {
        /// Name of the offending quantity.
        what: &'static str,
    },
    /// A count (frames, slots per frame) was zero.
    ZeroCount {
        /// Name of the offending count.
        what: &'static str,
    },
}

impl fmt::Display for UnitsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnitsError::NotFinite { what } => {
                write!(f, "{what} must be finite")
            }
            UnitsError::Negative { what } => {
                write!(f, "{what} must be non-negative")
            }
            UnitsError::ZeroCount { what } => {
                write!(f, "{what} must be at least 1")
            }
        }
    }
}

impl Error for UnitsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = UnitsError::NotFinite { what: "slot_hours" };
        assert_eq!(e.to_string(), "slot_hours must be finite");
        let e = UnitsError::Negative { what: "capacity" };
        assert_eq!(e.to_string(), "capacity must be non-negative");
        let e = UnitsError::ZeroCount { what: "frames" };
        assert_eq!(e.to_string(), "frames must be at least 1");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<UnitsError>();
    }
}
