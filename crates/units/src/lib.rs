//! Physical-unit newtypes and the two-timescale slot calendar shared by all
//! SmartDPSS crates.
//!
//! The SmartDPSS model (Deng et al., ICDCS 2013) mixes energies, powers,
//! prices and money in almost every equation. Mixing those up as bare `f64`s
//! is the classic source of silent factor-of-`T` bugs, so this crate provides
//! zero-cost newtypes with only the physically meaningful operations:
//!
//! * [`Energy`] (MWh) — what flows through the system per fine slot;
//! * [`Power`] (MW) — instantaneous rates and interconnect limits;
//! * [`Price`] ($/MWh) — market prices;
//! * [`Money`] ($) — costs; `Energy * Price = Money`, `Power * hours = Energy`.
//!
//! It also provides [`SlotClock`], the two-timescale calendar of the paper's
//! §II: `K` coarse-grained *frames* (the long-term-ahead market granularity,
//! e.g. one day) each divided into `T` fine-grained *slots* (e.g. one hour).
//!
//! # Examples
//!
//! ```
//! use dpss_units::{Energy, Power, Price, SlotClock};
//!
//! # fn main() -> Result<(), dpss_units::UnitsError> {
//! // A 2 MW grid interconnect over a 1-hour slot delivers 2 MWh.
//! let grid = Power::from_mw(2.0);
//! let delivered = grid.over_hours(1.0);
//! assert_eq!(delivered, Energy::from_mwh(2.0));
//!
//! // Buying it at 35 $/MWh costs $70.
//! let bill = delivered * Price::from_dollars_per_mwh(35.0);
//! assert_eq!(bill.dollars(), 70.0);
//!
//! // The paper's one-month setup: 31 daily frames of 24 hourly slots.
//! let clock = SlotClock::new(31, 24, 1.0)?;
//! assert_eq!(clock.total_slots(), 744);
//! assert!(clock.is_frame_start(48)); // midnight of day 3
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

mod clock;
mod energy;
mod error;
mod money;

pub use clock::{SlotClock, SlotId, Slots};
pub use energy::{Energy, Power};
pub use error::UnitsError;
pub use money::{Money, Price};

/// Clamps `x` into `[lo, hi]`, tolerating `lo > hi` by returning `lo`.
///
/// Used throughout the workspace for numerically safe projections onto
/// feasible intervals that may have collapsed to a point (or slightly
/// inverted) due to floating-point noise.
///
/// # Examples
///
/// ```
/// assert_eq!(dpss_units::clamp_interval(5.0, 0.0, 2.0), 2.0);
/// assert_eq!(dpss_units::clamp_interval(1.0, 2.0, 0.5), 2.0); // inverted
/// ```
#[must_use]
pub fn clamp_interval(x: f64, lo: f64, hi: f64) -> f64 {
    if hi < lo {
        return lo;
    }
    x.clamp(lo, hi)
}

/// Returns `true` when two floats agree within `abs` absolute *or* `rel`
/// relative tolerance.
///
/// # Examples
///
/// ```
/// assert!(dpss_units::approx_eq(1.0, 1.0 + 1e-12, 1e-9, 1e-9));
/// assert!(!dpss_units::approx_eq(1.0, 2.0, 1e-9, 1e-9));
/// ```
#[must_use]
pub fn approx_eq(a: f64, b: f64, abs: f64, rel: f64) -> bool {
    let diff = (a - b).abs();
    diff <= abs || diff <= rel * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_interval_ordinary() {
        assert_eq!(clamp_interval(0.5, 0.0, 1.0), 0.5);
        assert_eq!(clamp_interval(-1.0, 0.0, 1.0), 0.0);
        assert_eq!(clamp_interval(2.0, 0.0, 1.0), 1.0);
    }

    #[test]
    fn clamp_interval_degenerate() {
        assert_eq!(clamp_interval(3.0, 1.0, 1.0), 1.0);
        // Inverted interval returns the lower bound.
        assert_eq!(clamp_interval(3.0, 1.0, 0.9), 1.0);
    }

    #[test]
    fn approx_eq_absolute_and_relative() {
        assert!(approx_eq(1e9, 1e9 + 1.0, 0.0, 1e-6));
        assert!(approx_eq(0.0, 1e-12, 1e-9, 0.0));
        assert!(!approx_eq(0.0, 1e-3, 1e-9, 1e-9));
    }
}
